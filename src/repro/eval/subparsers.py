"""Subparser-count measurements: Figure 8.

The number of subparsers per iteration of FMLR's main loop captures
both fork pressure (breadth of conditionals) and merge success
(incidence of partial C constructs in conditionals).  Figure 8a
reports the 99th percentile and maximum across all iterations of all
compilation units, per optimization level; Figure 8b the cumulative
distribution.  MAPR triggers a kill switch (the paper uses 16,000) on
most units.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.corpus import KernelCorpus
from repro.obs.tracer import Tracer
from repro.parser.fmlr import (FMLROptions, OPTIMIZATION_LEVELS,
                               SubparserExplosion)
from repro.superc import SuperC


class SubparserDistribution:
    """Pooled per-iteration subparser counts for one optimization
    level, plus the corpus-total fork and merge event counts."""

    def __init__(self, level: str, counts: List[int],
                 exploded_units: int, total_units: int,
                 kill_switch: int, forks: int = 0, merges: int = 0):
        self.level = level
        self.counts = counts
        self.exploded_units = exploded_units
        self.total_units = total_units
        self.kill_switch = kill_switch
        self.forks = forks
        self.merges = merges

    @property
    def maximum(self) -> int:
        return max(self.counts) if self.counts else 0

    def percentile(self, p: float) -> int:
        if not self.counts:
            return 0
        ordered = sorted(self.counts)
        index = min(len(ordered) - 1,
                    max(0, int(round(p * (len(ordered) - 1)))))
        return ordered[index]

    @property
    def p99(self) -> int:
        return self.percentile(0.99)

    def cdf(self, points: Optional[List[int]] = None) \
            -> List[Tuple[int, float]]:
        """Cumulative distribution: fraction of iterations with count
        <= x (Figure 8b)."""
        if not self.counts:
            return []
        ordered = sorted(self.counts)
        if points is None:
            points = sorted(set(ordered))
        total = len(ordered)
        out: List[Tuple[int, float]] = []
        index = 0
        for point in points:
            while index < total and ordered[index] <= point:
                index += 1
            out.append((point, index / total))
        return out

    def describe(self) -> str:
        if self.exploded_units:
            return (f">{self.kill_switch} on "
                    f"{100 * self.exploded_units // self.total_units}% "
                    "of comp. units")
        return f"99th%={self.p99}  max={self.maximum}"


def measure_level(corpus: KernelCorpus, level: str,
                  options: Optional[FMLROptions] = None,
                  kill_switch: int = 16000) -> SubparserDistribution:
    """Parse every unit at one optimization level, pooling counts."""
    base = options or OPTIMIZATION_LEVELS[level]
    opts = FMLROptions(follow_set=base.follow_set,
                       lazy_shifts=base.lazy_shifts,
                       shared_reduces=base.shared_reduces,
                       early_reduces=base.early_reduces,
                       mapr_largest_first=base.mapr_largest_first,
                       choice_merging=base.choice_merging,
                       kill_switch=kill_switch,
                       # The benchmark reports explosions, so keep the
                       # legacy abort instead of graceful shedding.
                       hard_kill_switch=True)
    # The measurement is driven entirely by repro.obs hooks: the FMLR
    # loop records each iteration's live-subparser count into the
    # ``fmlr.subparsers`` histogram and counts fork/merge events, so
    # this benchmark observes the same stream any traced run produces
    # (and the two can be cross-checked against each other).
    tracer = Tracer()
    superc = SuperC(corpus.filesystem(),
                    include_paths=corpus.include_paths, options=opts,
                    tracer=tracer)
    counts: List[int] = []
    exploded = 0
    for unit in corpus.units:
        mark = tracer.mark()
        try:
            result = superc.parse_file(unit)
            if result.parse.stats.kill_switch_trips:
                exploded += 1
            # Pool this unit's iteration counts from its tracer window
            # (exploded units contribute no counts, as before).
            window = tracer.since(mark)
            counts.extend(
                int(value) for value
                in window["histograms"].get("fmlr.subparsers", ()))
        except SubparserExplosion:
            exploded += 1
    return SubparserDistribution(level, counts, exploded,
                                 len(corpus.units), kill_switch,
                                 forks=tracer.counters.get(
                                     "fmlr.forks", 0),
                                 merges=tracer.counters.get(
                                     "fmlr.merges", 0))


def figure8(corpus: KernelCorpus,
            levels: Optional[List[str]] = None,
            kill_switch: int = 16000) \
        -> Dict[str, SubparserDistribution]:
    """All optimization levels of Figure 8."""
    chosen = levels if levels is not None else list(OPTIMIZATION_LEVELS)
    return {level: measure_level(corpus, level,
                                 kill_switch=kill_switch)
            for level in chosen}
