"""Preprocessor-usage measurements: Table 2 and Table 3.

Table 2 is the *developer's view*: simple line counts over individual
files (the paper used cloc/grep/wc).  Table 3 is the *tool's view*:
per-compilation-unit statistics gathered by instrumenting the
configuration-preserving preprocessor and parser, reported as
50th·90th·100th percentiles across compilation units.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.corpus import KernelCorpus
from repro.parser.ast import Node, StaticChoice
from repro.superc import SuperC

_DIRECTIVE = re.compile(r"^\s*#\s*(\w+)")
_COMMENT_LINE = re.compile(r"^\s*(//.*)?$")


def percentiles(values: List[float]) -> Tuple[float, float, float]:
    """The paper's 50th · 90th · 100th percentile triple."""
    if not values:
        return (0, 0, 0)
    ordered = sorted(values)
    n = len(ordered)

    def pct(p: float) -> float:
        index = min(n - 1, max(0, int(round(p * (n - 1)))))
        return ordered[index]

    return (pct(0.50), pct(0.90), ordered[-1])


# ---------------------------------------------------------------------------
# Table 2: the developer's view
# ---------------------------------------------------------------------------

class DirectiveCounts:
    """One Table 2a row: total plus C-file/header split."""

    def __init__(self, total: int, in_c: int, in_headers: int):
        self.total = total
        self.in_c = in_c
        self.in_headers = in_headers

    @property
    def pct_c(self) -> float:
        return 100.0 * self.in_c / self.total if self.total else 0.0

    @property
    def pct_headers(self) -> float:
        return (100.0 * self.in_headers / self.total
                if self.total else 0.0)


def developers_view(corpus: KernelCorpus) -> Dict[str, DirectiveCounts]:
    """Table 2a: directives vs lines of code, split C files/headers."""
    rows = {key: [0, 0] for key in
            ("loc", "all_directives", "define", "conditional",
             "include")}

    for path, text in corpus.files.items():
        is_header = path.endswith(".h")
        slot = 1 if is_header else 0
        in_block_comment = False
        for line in text.splitlines():
            stripped = line.strip()
            if in_block_comment:
                if "*/" in stripped:
                    in_block_comment = False
                continue
            if stripped.startswith("/*"):
                if "*/" not in stripped:
                    in_block_comment = True
                continue
            if not stripped or _COMMENT_LINE.match(stripped):
                continue
            rows["loc"][slot] += 1
            match = _DIRECTIVE.match(stripped)
            if not match:
                continue
            keyword = match.group(1)
            rows["all_directives"][slot] += 1
            if keyword == "define":
                rows["define"][slot] += 1
            elif keyword in ("if", "ifdef", "ifndef"):
                rows["conditional"][slot] += 1
            elif keyword == "include":
                rows["include"][slot] += 1

    return {key: DirectiveCounts(c + h, c, h)
            for key, (c, h) in rows.items()}


def top_included_headers(corpus: KernelCorpus,
                         count: int = 5) -> List[Tuple[str, int, float]]:
    """Table 2b: headers ranked by how many C files (transitively)
    include them; returns (header, files, percent-of-C-files)."""
    include_re = re.compile(r'^\s*#\s*include\s+[<"]([^>"]+)[>"]',
                            re.MULTILINE)
    direct: Dict[str, List[str]] = {}
    for path, text in corpus.files.items():
        edges = []
        for name in include_re.findall(text):
            target = "include/" + name
            if target in corpus.files:
                edges.append(target)
        direct[path] = edges

    def closure(path: str) -> set:
        seen: set = set()
        stack = list(direct.get(path, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(direct.get(current, ()))
        return seen

    c_files = corpus.c_files()
    counts: Dict[str, int] = {}
    for c_file in c_files:
        for header in closure(c_file):
            counts[header] = counts.get(header, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    total = len(c_files) or 1
    return [(header, hits, 100.0 * hits / total)
            for header, hits in ranked[:count]]


# ---------------------------------------------------------------------------
# Table 3: the tool's view
# ---------------------------------------------------------------------------

# Table 3 rows: (label, attribute of the per-unit stats dict).
TOOLS_VIEW_ROWS = [
    ("Macro Definitions", "macro_definitions"),
    ("  Contained in conditionals", "definitions_in_conditionals"),
    ("  Redefinitions", "redefinitions"),
    ("Macro Invocations", "invocations"),
    ("  Trimmed", "trimmed"),
    ("  Hoisted", "hoisted_invocations"),
    ("  Nested invocations", "nested_invocations"),
    ("  Built-in macros", "builtin_invocations"),
    ("Token-Pasting", "token_pastings"),
    ("  Hoisted", "hoisted_pastings"),
    ("Stringification", "stringifications"),
    ("  Hoisted", "hoisted_stringifications"),
    ("File Includes", "includes"),
    ("  Hoisted", "hoisted_includes"),
    ("  Computed includes", "computed_includes"),
    ("  Reincluded headers", "reincluded_headers"),
    ("Static Conditionals", "conditionals"),
    ("  Hoisted", "hoisted_conditionals"),
    ("  Max. depth", "max_conditional_depth"),
    ("  With non-boolean expressions", "non_boolean_expressions"),
    ("Error Directives", "error_directives"),
    ("C Declarations & Statements", "declarations_and_statements"),
    ("  Containing conditionals", "constructs_with_conditionals"),
    ("Typedef Names", "typedef_names"),
    ("  Ambiguously defined names", "ambiguous_names"),
]


def unit_statistics(superc: SuperC, unit: str) -> Dict[str, int]:
    """All Table 3 statistics for one compilation unit."""
    result = superc.parse_file(unit)
    stats = dict(result.unit.stats.as_dict())
    declarations, with_conditionals = _count_constructs(result.ast)
    stats["declarations_and_statements"] = declarations
    stats["constructs_with_conditionals"] = with_conditionals
    stats["typedef_names"] = result.symbol_stats.typedef_names
    stats["ambiguous_names"] = result.symbol_stats.ambiguous_names
    return stats


def tools_view(superc: SuperC, units: List[str]) \
        -> Dict[str, Tuple[float, float, float]]:
    """Table 3: percentiles across compilation units for every row."""
    per_unit = [unit_statistics(superc, unit) for unit in units]
    table: Dict[str, Tuple[float, float, float]] = {}
    for label, attribute in TOOLS_VIEW_ROWS:
        values = [stats.get(attribute, 0) for stats in per_unit]
        table[label] = percentiles(values)
    return table


_CONSTRUCT_NAMES = frozenset({
    "Declaration", "FunctionDefinition", "ExpressionStatement",
    "IfStatement", "IfElseStatement", "SwitchStatement",
    "WhileStatement", "DoStatement", "ForStatement", "GotoStatement",
    "ContinueStatement", "BreakStatement", "ReturnStatement",
    "CompoundStatement", "LabeledStatement", "CaseStatement",
    "DefaultStatement", "EmptyStatement", "AsmStatement",
})


def _count_constructs(ast: Any) -> Tuple[int, int]:
    """Count C declarations & statements, and how many contain static
    choice nodes (Table 3's final parser rows)."""
    total = 0
    with_conditionals = 0
    stack = [ast]
    while stack:
        value = stack.pop()
        if isinstance(value, Node):
            if value.name in _CONSTRUCT_NAMES:
                total += 1
                if _contains_choice(value):
                    with_conditionals += 1
            stack.extend(value.children)
        elif isinstance(value, StaticChoice):
            stack.extend(branch for _cond, branch in value.branches)
        elif isinstance(value, tuple):
            stack.extend(value)
    return total, with_conditionals


def _contains_choice(node: Node) -> bool:
    stack = list(node.children)
    while stack:
        value = stack.pop()
        if isinstance(value, StaticChoice):
            return True
        if isinstance(value, Node):
            stack.extend(value.children)
        elif isinstance(value, tuple):
            stack.extend(value)
    return False
