"""Scaling sweep: SuperC latency vs corpus size (Figure 10 support).

Figure 10's claim is that SuperC's latency scales roughly linearly
with compilation-unit size.  This bench sweeps the corpus generator's
scale knob and reports total latency per scale, so the growth curve is
visible directly (an extension of the paper's single-scatter plot).

A second bench drives the same corpus through ``repro.engine``'s
worker pool and reports the serial-vs-parallel speedup — the paper's
7,665-unit kernel run is embarrassingly parallel across compilation
units, and this measures how much of that the batch engine recovers.

A third bench bounds the observability layer's cost on the un-traced
path: the pipeline's hot loops must degenerate to local-bool checks
under the default ``NULL_TRACER``, never calls into the tracer.
"""

import os
import time

from benchmarks.conftest import emit
from repro.corpus import KernelSpec, generate_kernel
from repro.engine import BatchEngine, CorpusJob, EngineConfig
from repro.eval import measure_superc, unit_size_bytes
from repro.obs import NullTracer, Tracer
from repro.superc import SuperC

SCALES = [1, 2, 3]

WORKER_COUNTS = [1, 2, 4]


def test_scaling_linearity(benchmark):
    holder = {}

    def run():
        rows = []
        for scale in SCALES:
            spec = KernelSpec(seed=99, subsystems=1,
                              drivers_per_subsystem=1,
                              figure6_entries=6).scaled(scale)
            corpus = generate_kernel(spec)
            dist = measure_superc(corpus)
            total_bytes = sum(unit_size_bytes(corpus, unit)
                              for unit in corpus.units)
            rows.append((scale, len(corpus.units), total_bytes,
                         dist.total))
        holder["rows"] = rows
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]

    lines = ["", "=" * 58,
             "Scaling: SuperC latency vs corpus size",
             f"{'scale':>6}{'units':>7}{'KB':>9}{'seconds':>10}"
             f"{'ms/KB':>8}"]
    for scale, units, total_bytes, seconds in rows:
        per_kb = 1000.0 * seconds / (total_bytes / 1024)
        lines.append(f"{scale:>6}{units:>7}{total_bytes / 1024:>9.0f}"
                     f"{seconds:>10.2f}{per_kb:>8.2f}")
    lines.append("=" * 58)
    emit(lines)
    benchmark.extra_info["rows"] = rows

    # Rough linearity: per-byte cost at the largest scale within a
    # small factor of the smallest.
    first = rows[0][3] / rows[0][2]
    last = rows[-1][3] / rows[-1][2]
    assert last < 8 * first
    assert first < 8 * last


def test_parallel_speedup(benchmark, tmp_path):
    """Serial vs worker-pool wall time through ``repro.engine``."""
    corpus = generate_kernel(KernelSpec(seed=99, subsystems=4,
                                        drivers_per_subsystem=4,
                                        figure6_entries=6))
    job = CorpusJob.from_corpus(corpus)
    holder = {}

    def run():
        rows = []
        baseline = None
        for workers in WORKER_COUNTS:
            config = EngineConfig(workers=workers,
                                  use_result_cache=False,
                                  cache_dir=str(tmp_path / "cache"))
            report = BatchEngine(config).run(job)
            assert report.all_ok, report.by_status
            if baseline is None:
                baseline = report
            else:
                # Parallelism must not change any outcome.
                assert report.statuses() == baseline.statuses()
                assert report.subparser_rollup() == \
                    baseline.subparser_rollup()
            rows.append((workers, report.wall_seconds,
                         report.cpu_seconds))
        holder["rows"] = rows
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    serial_wall = rows[0][1]

    lines = ["", "=" * 58,
             f"Batch engine speedup ({len(job.units)} units, "
             f"{os.cpu_count()} cpus)",
             f"{'workers':>8}{'wall s':>9}{'cpu s':>9}{'speedup':>9}"]
    for workers, wall, cpu in rows:
        lines.append(f"{workers:>8}{wall:>9.2f}{cpu:>9.2f}"
                     f"{serial_wall / wall:>8.2f}x")
    lines.append("=" * 58)
    emit(lines)
    benchmark.extra_info["rows"] = rows


class CountingNullTracer(NullTracer):
    """A disabled tracer that counts how often the pipeline calls into
    it.  The un-traced fast path hoists ``tracer.enabled`` into local
    bools, so call volume must stay a small per-unit constant — it must
    NOT scale with parser iterations or token counts."""

    def __init__(self):
        self.calls = 0

    def span(self, name, /, **args):
        self.calls += 1
        return NullTracer.span(self, name)

    def event(self, name, /, **args):
        self.calls += 1

    def count(self, name, n=1):
        self.calls += 1

    def record(self, name, value):
        self.calls += 1

    def mark(self):
        self.calls += 1
        return ()


def test_null_tracer_overhead(benchmark):
    """Bound the observability tax of an un-traced parse.

    Two measurements, both required:

    1. Structural: the number of tracer method calls per un-traced
       unit is a small constant (span enter/exit at phase boundaries),
       orders of magnitude below the FMLR iteration count — the hot
       loops never call the tracer when it is disabled.
    2. Projected wall-clock: guard checks per parse x the measured
       cost of one ``if trace:`` local-bool check must be a negligible
       fraction (< 3%) of the parse itself.
    """
    spec = KernelSpec(seed=31, subsystems=1, drivers_per_subsystem=2,
                      figure6_entries=6)
    corpus = generate_kernel(spec)
    holder = {}

    def run():
        # Un-traced wall time over the corpus.
        superc = SuperC(corpus.filesystem(),
                        include_paths=corpus.include_paths)
        start = time.perf_counter()
        for unit in corpus.units:
            superc.parse_file(unit)
        untraced_seconds = time.perf_counter() - start

        # Traced run: gives the iteration count (the hot-loop trip
        # count the guards are executed in) and the traced wall time.
        tracer = Tracer()
        traced = SuperC(corpus.filesystem(),
                        include_paths=corpus.include_paths,
                        tracer=tracer)
        start = time.perf_counter()
        for unit in corpus.units:
            traced.parse_file(unit)
        traced_seconds = time.perf_counter() - start
        # One histogram sample is recorded per FMLR iteration, so its
        # length is exactly the hot-loop trip count.
        iterations = len(tracer.histograms["fmlr.subparsers"])

        # Structural: disabled-tracer call volume per unit.
        counting = CountingNullTracer()
        counted = SuperC(corpus.filesystem(),
                         include_paths=corpus.include_paths,
                         tracer=counting)
        for unit in corpus.units:
            counted.parse_file(unit)
        calls_per_unit = counting.calls / len(corpus.units)

        # Cost of one hot-loop guard: `if trace:` on a local bool.
        trace = False
        reps = 200_000
        start = time.perf_counter()
        for _ in range(reps):
            if trace:
                raise AssertionError
        per_guard = (time.perf_counter() - start) / reps
        # ~5 guard sites execute per FMLR iteration (kill switch, BDD
        # budget, merge, histogram, fork), plus the per-unit calls.
        guards = 5 * iterations + counting.calls
        projected = guards * per_guard
        holder.update(untraced=untraced_seconds,
                      traced=traced_seconds, iterations=iterations,
                      calls_per_unit=calls_per_unit,
                      per_guard=per_guard, projected=projected)
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)

    overhead = holder["projected"] / holder["untraced"]
    traced_ratio = holder["traced"] / holder["untraced"]
    lines = ["", "=" * 58,
             "NullTracer overhead (un-traced observability tax)",
             f"  un-traced corpus parse   {holder['untraced']:8.3f}s",
             f"  traced corpus parse      {holder['traced']:8.3f}s "
             f"({traced_ratio:.2f}x)",
             f"  fmlr iterations          {holder['iterations']:>8}",
             f"  tracer calls/unit        "
             f"{holder['calls_per_unit']:8.1f}",
             f"  guard check cost         "
             f"{holder['per_guard'] * 1e9:8.1f}ns",
             f"  projected guard overhead {100 * overhead:7.3f}%",
             "=" * 58]
    emit(lines)
    benchmark.extra_info.update(holder)

    # The hot loops must not call a disabled tracer: per-unit call
    # volume is a phase-boundary constant, not O(iterations).
    assert holder["calls_per_unit"] < 64
    assert holder["calls_per_unit"] * len(corpus.units) < \
        holder["iterations"] / 10
    # And the guards the fast path does execute are projected to cost
    # well under a few percent of the parse.
    assert overhead < 0.03
