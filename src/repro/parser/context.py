"""Parser-context plug-in interface (§5.2).

SuperC recognizes context-sensitive languages (like C, whose names may
be typedef names or object names) without modifying the FMLR engine,
via a plug-in with four callbacks: ``reclassify`` adjusts the token
follow-set, ``fork_context`` duplicates state when subparsers fork, and
``may_merge``/``merge_contexts`` gate and perform merging.

The engines additionally call ``on_reduce`` so language plug-ins can
maintain their state (e.g. the C symbol table) from semantic actions.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.lexer.tokens import Token


class ParserContext:
    """Default do-nothing context: context-free parsing."""

    def reclassify(self, token: Token, terminal: str,
                   condition: Any) -> List[Tuple[Any, str]]:
        """Map one (presence condition, base terminal) classification to
        one or more refined classifications.

        Returning more than one entry makes FMLR fork a subparser on an
        *implicit* conditional (e.g. an ambiguously defined name).
        The returned conditions must partition ``condition``.
        """
        return [(condition, terminal)]

    def fork_context(self) -> "ParserContext":
        """Duplicate this context for a newly forked subparser."""
        return self

    def may_merge(self, other: "ParserContext") -> bool:
        """Whether two subparsers' contexts allow merging."""
        return True

    def merge_contexts(self, other: "ParserContext",
                       self_condition: Any,
                       other_condition: Any) -> "ParserContext":
        """Combine two contexts into the merged subparser's context."""
        return self

    def on_reduce(self, production: Any, value: Any,
                  condition: Any) -> None:
        """Observe a completed reduction (for symbol-table updates)."""
