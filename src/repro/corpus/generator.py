"""Synthetic Linux-like kernel corpus.

The paper evaluates on the x86 Linux kernel 2.6.33.3 (7,665
compilation units, >10,000 configuration variables).  We cannot ship
Linux sources, so this generator deterministically emits a source tree
with the same *kinds* of preprocessor usage, at a knob-controlled
scale, exercising every interaction from Table 1:

* guard-protected headers, deeply chained includes, headers included
  by (nearly) every C file (Table 2b's module.h/init.h/kernel.h);
* multiply-defined macros (Figure 2's BITS_PER_LONG);
* conditional macro chains whose invocations must be hoisted
  (Figure 3's cpu_to_le32);
* token pasting and stringification over multiply-defined macros
  (Figure 5);
* computed includes and reincluded headers;
* non-boolean conditional expressions (NR_CPUS < 256);
* ``#error`` in unsupported configurations;
* conditionally defined typedef names;
* Figure 6's conditional initializer lists (exponential
  configurations);
* conditionals that bracket partial C constructs (Figure 1's
  if/else), conditional struct members, and conditional parameters.

Generation is deterministic given the spec's seed, so benchmarks and
tests are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cpp import DictFileSystem

_SUBSYSTEM_NAMES = ["input", "net", "block", "video", "sound", "char",
                    "usb", "pci", "scsi", "mtd", "rtc", "spi"]

_FEATURE_WORDS = ["DEBUG", "SMP", "PM", "HOTPLUG", "NUMA", "PREEMPT",
                  "TRACE", "STATS", "DMA", "MSI", "LEGACY", "EXT",
                  "VERBOSE", "POLL", "ASYNC", "COMPAT"]


class KernelSpec:
    """Scale and shape knobs for the synthetic kernel."""

    def __init__(self, seed: int = 42, subsystems: int = 4,
                 drivers_per_subsystem: int = 3,
                 functions_per_driver: int = 8,
                 figure6_entries: int = 10,
                 extra_headers_per_subsystem: int = 2,
                 error_configs: bool = True,
                 conditional_typedefs: bool = True,
                 computed_includes: bool = True):
        self.seed = seed
        self.subsystems = min(subsystems, len(_SUBSYSTEM_NAMES))
        self.drivers_per_subsystem = drivers_per_subsystem
        self.functions_per_driver = functions_per_driver
        self.figure6_entries = figure6_entries
        self.extra_headers_per_subsystem = extra_headers_per_subsystem
        self.error_configs = error_configs
        self.conditional_typedefs = conditional_typedefs
        self.computed_includes = computed_includes

    def scaled(self, factor: int) -> "KernelSpec":
        """A proportionally larger spec (for benchmark sweeps)."""
        return KernelSpec(
            seed=self.seed,
            subsystems=min(self.subsystems * factor,
                           len(_SUBSYSTEM_NAMES)),
            drivers_per_subsystem=self.drivers_per_subsystem * factor,
            functions_per_driver=self.functions_per_driver,
            figure6_entries=self.figure6_entries,
            extra_headers_per_subsystem=self.extra_headers_per_subsystem,
            error_configs=self.error_configs,
            conditional_typedefs=self.conditional_typedefs,
            computed_includes=self.computed_includes)


class KernelCorpus:
    """The generated tree plus its manifest."""

    def __init__(self, spec: KernelSpec, files: Dict[str, str],
                 units: List[str], config_variables: List[str]):
        self.spec = spec
        self.files = files
        self.units = units
        self.config_variables = config_variables

    def filesystem(self) -> DictFileSystem:
        return DictFileSystem(self.files)

    def write_to_directory(self, root: str) -> None:
        """Materialize the corpus as real files (for external tools
        and the ``superc-report`` CLI)."""
        import os
        for path, text in self.files.items():
            target = os.path.join(root, *path.split("/"))
            os.makedirs(os.path.dirname(target), exist_ok=True)
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)

    @property
    def include_paths(self) -> List[str]:
        return ["include"]

    def headers(self) -> List[str]:
        return [path for path in self.files if path.endswith(".h")]

    def c_files(self) -> List[str]:
        return [path for path in self.files if path.endswith(".c")]


def generate_kernel(spec: Optional[KernelSpec] = None) -> KernelCorpus:
    """Generate the synthetic kernel tree."""
    spec = spec or KernelSpec()
    rng = random.Random(spec.seed)
    files: Dict[str, str] = {}
    units: List[str] = []
    config_vars: List[str] = ["CONFIG_64BIT", "CONFIG_SMP"]

    _core_headers(files)
    for index in range(spec.subsystems):
        subsystem = _SUBSYSTEM_NAMES[index]
        sub_vars, extra_headers = _subsystem_headers(files, subsystem,
                                                     spec, rng)
        config_vars.extend(sub_vars)
        for drv in range(spec.drivers_per_subsystem):
            path, drv_vars = _driver(files, subsystem, drv, spec, rng,
                                     extra_headers)
            units.append(path)
            config_vars.extend(drv_vars)
    seen = set()
    unique_vars = [v for v in config_vars
                   if not (v in seen or seen.add(v))]
    return KernelCorpus(spec, files, units, unique_vars)


# ---------------------------------------------------------------------------
# core headers (the Table 2b "most included" set)
# ---------------------------------------------------------------------------

def _core_headers(files: Dict[str, str]) -> None:
    files["include/linux/types.h"] = """\
#ifndef _LINUX_TYPES_H
#define _LINUX_TYPES_H
typedef unsigned char u8;
typedef unsigned short u16;
typedef unsigned int u32;
typedef unsigned long long u64;
typedef signed char s8;
typedef int s32;
typedef unsigned long size_t;
typedef long ssize_t;
typedef _Bool bool;
#endif
"""
    # Figure 2: the multiply-defined macro.
    files["include/asm/bitsperlong.h"] = """\
#ifndef _ASM_BITSPERLONG_H
#define _ASM_BITSPERLONG_H
#ifdef CONFIG_64BIT
#define BITS_PER_LONG 64
#else
#define BITS_PER_LONG 32
#endif
#endif
"""
    # Figure 5: pasting over the multiply-defined macro.
    files["include/linux/leXX.h"] = """\
#ifndef _LINUX_LEXX_H
#define _LINUX_LEXX_H
#include <asm/bitsperlong.h>
typedef unsigned int __le32;
typedef unsigned long long __le64;
#define xuint(x) __le ## x
#define uint(x) xuint(x)
#define uintBPL_t uint(BITS_PER_LONG)
#endif
"""
    # Figure 3: the conditional macro chain.
    files["include/linux/byteorder.h"] = """\
#ifndef _LINUX_BYTEORDER_H
#define _LINUX_BYTEORDER_H
#include <linux/types.h>
#define __cpu_to_le32(x) ((u32)(x))
#define __cpu_to_le64(x) ((u64)(x))
#ifdef __KERNEL_BUILD
#define cpu_to_le32 __cpu_to_le32
#define cpu_to_le64 __cpu_to_le64
#endif
#endif
"""
    files["include/linux/kernel.h"] = """\
#ifndef _LINUX_KERNEL_H
#define _LINUX_KERNEL_H
#include <linux/types.h>
#include <asm/bitsperlong.h>
#define __stringify_1(x) #x
#define __stringify(x) __stringify_1(x)
#define __paste_1(a, b) a ## b
#define __paste(a, b) __paste_1(a, b)
#define ARRAY_SIZE(a) (sizeof(a) / sizeof((a)[0]))
#define min(a, b) ((a) < (b) ? (a) : (b))
#define max(a, b) ((a) > (b) ? (a) : (b))
#define clamp(v, lo, hi) min(max(v, lo), hi)
#define clamp_nonneg(v, hi) clamp(v, 0, hi)
int printk(const char *level, const char *fmt, ...);
#define KERN_INFO "<6>"
#define KERN_DEBUG "<7>"
#define pr_fmt(fmt) fmt
#define pr_info(fmt, ...) printk(KERN_INFO, pr_fmt(fmt), __VA_ARGS__)
#ifdef CONFIG_DEBUG_KERNEL
#define pr_debug(fmt, ...) printk(KERN_DEBUG, pr_fmt(fmt), __VA_ARGS__)
#else
#define pr_debug(fmt, ...) ((void)0)
#endif
#define WARN_ON(cond) ((cond) ? panic(__stringify(cond)) : (void)0)
#define BUG_ON(cond) do { if (cond) panic(__stringify(cond)); } while (0)
void panic(const char *msg);
#endif
"""
    files["include/linux/init.h"] = """\
#ifndef _LINUX_INIT_H
#define _LINUX_INIT_H
#include <linux/kernel.h>
#define __init __attribute__((unused))
#define __exit __attribute__((unused))
#define __initdata
typedef int (*initcall_t)(void);
#define __define_initcall(prefix, fn) \\
    static initcall_t __paste(prefix, fn) = fn;
#define module_init(fn) __define_initcall(__initcall_, fn)
#define module_exit(fn) __define_initcall(__exitcall_, fn)
#endif
"""
    files["include/linux/module.h"] = """\
#ifndef _LINUX_MODULE_H
#define _LINUX_MODULE_H
#include <linux/kernel.h>
#include <linux/init.h>
struct module { const char *name; int refcount; };
#define THIS_MODULE (&__this_module)
extern struct module __this_module;
#define MODULE_LICENSE(x) static const char __license[] = x;
#define MODULE_AUTHOR(x) static const char __author[] = x;
#define EXPORT_SYMBOL(sym) extern typeof(sym) sym;
#endif
"""
    files["include/linux/slab.h"] = """\
#ifndef _LINUX_SLAB_H
#define _LINUX_SLAB_H
#include <linux/types.h>
void *kmalloc(size_t size, int flags);
void *kzalloc(size_t size, int flags);
void kfree(void *ptr);
#define GFP_KERNEL 0x10
#define GFP_ATOMIC 0x20
#endif
"""
    files["include/linux/delay.h"] = """\
#ifndef _LINUX_DELAY_H
#define _LINUX_DELAY_H
void udelay(unsigned long usecs);
void mdelay(unsigned long msecs);
#define ndelay(x) udelay((x) / 1000)
#endif
"""
    # A deliberately unguarded header (reinclusion, Table 1).
    files["include/linux/unguarded_ids.h"] = """\
extern int next_device_id;
"""
    # Non-boolean conditional expressions (NR_CPUS < 256).
    files["include/linux/cpumask.h"] = """\
#ifndef _LINUX_CPUMASK_H
#define _LINUX_CPUMASK_H
#include <linux/types.h>
#if NR_CPUS < 256
typedef u8 cpuid_t;
#else
typedef u16 cpuid_t;
#endif
#ifdef CONFIG_SMP
#define for_each_cpu(i) for (i = 0; i < NR_CPUS; i++)
#else
#define for_each_cpu(i) for (i = 0; i < 1; i++)
#endif
#endif
"""


# ---------------------------------------------------------------------------
# per-subsystem headers
# ---------------------------------------------------------------------------

def _subsystem_headers(files: Dict[str, str], subsystem: str,
                       spec: KernelSpec,
                       rng: random.Random) -> List[str]:
    upper = subsystem.upper()
    config_vars = [f"CONFIG_{upper}", f"CONFIG_{upper}_DEBUG"]
    # The subsystem's own API header, with a conditionally defined
    # typedef and conditional struct members.
    files[f"include/linux/{subsystem}.h"] = f"""\
#ifndef _LINUX_{upper}_H
#define _LINUX_{upper}_H
#include <linux/types.h>
#include <linux/kernel.h>

#ifdef CONFIG_64BIT
typedef u64 {subsystem}_cookie_t;
#else
typedef u32 {subsystem}_cookie_t;
#endif

struct {subsystem}_device {{
    int id;
    {subsystem}_cookie_t cookie;
#ifdef CONFIG_{upper}_DEBUG
    const char *debug_name;
    unsigned long debug_hits;
#endif
    struct {subsystem}_device *next;
}};

enum {subsystem}_state {{
    {upper}_STATE_IDLE,
    {upper}_STATE_PROBING,
    {upper}_STATE_RUNNING,
    {upper}_STATE_FAILED,
}};

#define {upper}_REG_CTRL   0x00
#define {upper}_REG_STATUS 0x04
#define {upper}_REG_DATA   0x08
#define {upper}_REG_IRQ    0x0c
#define {upper}_CTRL_ENABLE  (1 << 0)
#define {upper}_CTRL_RESET   (1 << 1)
#define {upper}_STATUS_READY (1 << 0)
#define {upper}_STATUS_ERROR (1 << 7)
#define {upper}_IRQ_MASK(n)  (1 << (n))

int {subsystem}_register(struct {subsystem}_device *dev);
void {subsystem}_unregister(struct {subsystem}_device *dev);
int {subsystem}_reset(struct {subsystem}_device *dev);
#ifdef CONFIG_{upper}_DEBUG
void {subsystem}_dump(const struct {subsystem}_device *dev);
#endif
#endif
"""
    # Arch-flavored header pair selected by a computed include.
    if spec.computed_includes:
        files[f"include/asm/{subsystem}_32.h"] = f"""\
#ifndef _ASM_{upper}_32_H
#define _ASM_{upper}_32_H
#define {upper}_WORD_BITS 32
#endif
"""
        files[f"include/asm/{subsystem}_64.h"] = f"""\
#ifndef _ASM_{upper}_64_H
#define _ASM_{upper}_64_H
#define {upper}_WORD_BITS 64
#endif
"""
        files[f"include/asm/{subsystem}_arch.h"] = f"""\
#ifndef _ASM_{upper}_ARCH_H
#define _ASM_{upper}_ARCH_H
#ifdef CONFIG_64BIT
#define {upper}_ARCH_HEADER <asm/{subsystem}_64.h>
#else
#define {upper}_ARCH_HEADER <asm/{subsystem}_32.h>
#endif
#include {upper}_ARCH_HEADER
#endif
"""
    extra_headers: List[str] = []
    for extra in range(spec.extra_headers_per_subsystem):
        feature = _FEATURE_WORDS[
            (extra + rng.randrange(len(_FEATURE_WORDS)))
            % len(_FEATURE_WORDS)]
        header = f"linux/{subsystem}_{feature.lower()}.h"
        if f"include/{header}" in files:
            continue
        var = f"CONFIG_{upper}_{feature}"
        config_vars.append(var)
        extra_headers.append(header)
        files[f"include/{header}"] = f"""\
#ifndef _LINUX_{upper}_{feature}_H
#define _LINUX_{upper}_{feature}_H
#include <linux/{subsystem}.h>
#ifdef {var}
int {subsystem}_{feature.lower()}_setup(struct {subsystem}_device *dev);
#define {upper}_{feature}_READY 1
#else
#define {upper}_{feature}_READY 0
#endif
#endif
"""
    return config_vars, extra_headers


# ---------------------------------------------------------------------------
# drivers (the compilation units)
# ---------------------------------------------------------------------------

def _driver(files: Dict[str, str], subsystem: str, index: int,
            spec: KernelSpec, rng: random.Random,
            extra_headers: List[str] = ()):
    upper = subsystem.upper()
    name = f"{subsystem}_drv{index}"
    config_vars: List[str] = []
    features = rng.sample(_FEATURE_WORDS, k=3)
    feature_vars = [f"CONFIG_{upper}_{name.upper()}_{feature}"
                    for feature in features]
    config_vars.extend(feature_vars)

    parts: List[str] = []
    parts.append(f'#include <linux/module.h>')
    parts.append(f'#include <linux/init.h>')
    parts.append(f'#include <linux/slab.h>')
    parts.append(f'#include <linux/{subsystem}.h>')
    parts.append(f'#include <linux/byteorder.h>')
    parts.append(f'#include <linux/leXX.h>')
    parts.append(f'#include <linux/cpumask.h>')
    parts.append(f'#include <linux/unguarded_ids.h>')
    if spec.computed_includes:
        parts.append(f'#include <asm/{subsystem}_arch.h>')
    for header in extra_headers:
        parts.append(f'#include <{header}>')
    # Reinclude the unguarded header (Table 1 reinclusion row).
    parts.append(f'#include <linux/unguarded_ids.h>')
    parts.append("")

    base = rng.randrange(16, 64)
    parts.append(f"#define {name.upper()}_MINOR_BASE {base}")
    parts.append(f"#define {name.upper()}_MIX {base - 1}")
    # A multiply-defined driver macro.
    parts.append(f"#ifdef {feature_vars[0]}")
    parts.append(f"#define {name.upper()}_QUEUE_LEN 256")
    parts.append("#else")
    parts.append(f"#define {name.upper()}_QUEUE_LEN 16")
    parts.append("#endif")
    parts.append("")

    # Conditionally defined typedef used below (implicit conditional
    # at every use site).
    if spec.conditional_typedefs:
        parts.append(f"#ifdef {feature_vars[1]}")
        parts.append(f"typedef u64 {name}_stamp_t;")
        parts.append("#else")
        parts.append(f"typedef u32 {name}_stamp_t;")
        parts.append("#endif")
        parts.append("")

    # An unsupported configuration (#error; Table 1 error row).
    if spec.error_configs:
        parts.append(f"#if defined({feature_vars[0]}) && "
                     f"defined({feature_vars[2]})")
        parts.append(f'#error "{name}: {features[0]} and {features[2]} '
                     'are mutually exclusive"')
        parts.append("#endif")
        parts.append("")

    # Driver state with conditional members.
    stamp_type = f"{name}_stamp_t" if spec.conditional_typedefs \
        else "u32"
    parts.append(f"struct {name}_state {{")
    parts.append(f"    struct {subsystem}_device dev;")
    parts.append(f"    {stamp_type} last_stamp;")
    parts.append(f"    u32 queue[{name.upper()}_QUEUE_LEN];")
    parts.append(f"#ifdef {feature_vars[1]}")
    parts.append("    u64 extended_stats[4];")
    parts.append("#endif")
    parts.append("    int open_count;")
    parts.append("};")
    parts.append("")
    parts.append(f"static struct {name}_state {name}_state;")
    parts.append("")

    # Figure 6: conditional initializer list (with forward
    # declarations first, so every configuration compiles).
    entries = spec.figure6_entries
    for entry in range(entries):
        parts.append(f"static int {name}_check_{entry}"
                     f"(struct {subsystem}_device *dev);")
    parts.append("")
    parts.append(f"static int (*{name}_checks[])"
                 f"(struct {subsystem}_device *) = {{")
    check_vars = []
    for entry in range(entries):
        var = f"CONFIG_{upper}_CHECK_{index}_{entry}"
        check_vars.append(var)
        parts.append(f"#ifdef {var}")
        parts.append(f"    {name}_check_{entry},")
        parts.append("#endif")
    parts.append("    ((void *)0)")
    parts.append("};")
    parts.append("")
    config_vars.extend(check_vars)

    for entry in range(entries):
        parts.append(f"static int {name}_check_{entry}"
                     f"(struct {subsystem}_device *dev)")
        parts.append("{")
        parts.append(f"    return dev->id == {entry};")
        parts.append("}")
        parts.append("")

    # Plain data tables and helpers (no preprocessor): they keep the
    # directive/LoC ratio near the paper's ~10%.
    parts.append(f"static const u32 {name}_default_regs[] = {{")
    for row in range(0, 24, 4):
        values = ", ".join(f"0x{rng.randrange(1 << 16):04x}"
                           for _ in range(4))
        parts.append(f"    {values},")
    parts.append("};")
    parts.append("")
    parts.append(f"static u32 {name}_reg_default(int index)")
    parts.append("{")
    parts.append(f"    int count = (int)ARRAY_SIZE("
                 f"{name}_default_regs);")
    parts.append("    if (index < 0 || index >= count)")
    parts.append("        return 0;")
    parts.append(f"    return {name}_default_regs[index];")
    parts.append("}")
    parts.append("")
    parts.append(f"static int {name}_checksum(const u32 *words, "
                 "int count)")
    parts.append("{")
    parts.append("    u32 sum = 0;")
    parts.append("    int i;")
    parts.append("    for (i = 0; i < count; i++) {")
    parts.append("        sum ^= words[i];")
    parts.append("        sum = (sum << 1) | (sum >> 31);")
    parts.append("    }")
    parts.append("    return (int)(sum & 0x7fffffff);")
    parts.append("}")
    parts.append("")
    parts.append(f"static enum {subsystem}_state "
                 f"{name}_next_state(enum {subsystem}_state state, "
                 "int ready)")
    parts.append("{")
    parts.append("    switch (state) {")
    parts.append(f"    case {upper}_STATE_IDLE:")
    parts.append(f"        return ready ? {upper}_STATE_PROBING "
                 f": {upper}_STATE_IDLE;")
    parts.append(f"    case {upper}_STATE_PROBING:")
    parts.append(f"        return ready ? {upper}_STATE_RUNNING "
                 f": {upper}_STATE_FAILED;")
    parts.append(f"    case {upper}_STATE_RUNNING:")
    parts.append(f"        return {upper}_STATE_RUNNING;")
    parts.append("    default:")
    parts.append(f"        return {upper}_STATE_FAILED;")
    parts.append("    }")
    parts.append("}")
    parts.append("")

    # Figure 1: a conditional bracketing a partial if/else.
    parts.append(f"static int {name}_open(struct {subsystem}_device "
                 "*dev)")
    parts.append("{")
    parts.append("    int i;")
    parts.append(f"#ifdef {feature_vars[2]}")
    parts.append(f"    if (dev->id == {name.upper()}_MIX)")
    parts.append(f"        i = {name.upper()}_MIX;")
    parts.append("    else")
    parts.append("#endif")
    parts.append(f"    i = dev->id - {name.upper()}_MINOR_BASE;")
    parts.append(f"    {name}_state.open_count++;")
    parts.append("    return i;")
    parts.append("}")
    parts.append("")

    # Hoisted function-like invocation (Figure 3/4 pattern) plus
    # pasting over BITS_PER_LONG (Figure 5 pattern).
    parts.append(f"static u32 {name}_pack(u32 value)")
    parts.append("{")
    parts.append("    uintBPL_t wide = (uintBPL_t)value;")
    parts.append("    (void)wide;")
    parts.append("    return cpu_to_le32(value + "
                 f"{name.upper()}_QUEUE_LEN);")
    parts.append("}")
    parts.append("")

    # A handful of ordinary functions with conditional bodies.
    for fn in range(spec.functions_per_driver):
        parts.extend(_function(name, subsystem, upper, fn,
                               feature_vars, rng))

    # Conditional parameter (Table 1 "contain conditionals" on
    # function parameters).
    parts.append(f"int {name}_probe(struct {subsystem}_device *dev")
    parts.append(f"#ifdef {feature_vars[1]}")
    parts.append("    , int probe_flags")
    parts.append("#endif")
    parts.append(");")
    parts.append("")

    # init/exit boilerplate using pasting macros from init.h.
    parts.append(f"static int __init {name}_init(void)")
    parts.append("{")
    parts.append(f"    pr_debug(\"loading \" __stringify({name}), 0);")
    parts.append(f"    return {subsystem}_register(&{name}_state.dev);")
    parts.append("}")
    parts.append("")
    parts.append(f"module_init({name}_init)")
    parts.append(f'MODULE_LICENSE("GPL")')
    parts.append("")
    path = f"drivers/{subsystem}/{name}.c"
    files[path] = "\n".join(parts)
    return path, config_vars


def _function(name: str, subsystem: str, upper: str, fn: int,
              feature_vars: List[str], rng: random.Random) -> List[str]:
    kind = rng.randrange(5)
    out: List[str] = []
    if kind >= 3:
        # Plain C, no preprocessor: most kernel code is ordinary code
        # (directives are ~10% of LoC in the paper's Table 2a).
        limit = rng.randrange(3, 9)
        out.append(f"static int {name}_scan_{fn}"
                   f"(const u32 *data, int len)")
        out.append("{")
        out.append("    int i;")
        out.append("    int hits = 0;")
        out.append(f"    for (i = 0; i < len; i++) {{")
        out.append(f"        u32 v = data[i];")
        out.append(f"        switch (v & {2 ** limit - 1}) {{")
        out.append("        case 0:")
        out.append("            hits++;")
        out.append("            break;")
        out.append(f"        case {limit}:")
        out.append("            hits += 2;")
        out.append("            break;")
        out.append("        default:")
        out.append(f"            if (v > {limit * 100})")
        out.append("                hits--;")
        out.append("            break;")
        out.append("        }")
        out.append("    }")
        out.append("    while (hits > 0 && (hits & 1) == 0)")
        out.append("        hits >>= 1;")
        out.append("    return hits;")
        out.append("}")
        out.append("")
        return out
    if kind == 0:
        out.append(f"static int {name}_poll_{fn}(void)")
        out.append("{")
        out.append("    int cpu;")
        out.append("    int total = 0;")
        out.append("    for_each_cpu(cpu)")
        out.append(f"        total += cpu + {fn};")
        out.append(f"#ifdef {rng.choice(feature_vars)}")
        out.append("    total = clamp_nonneg(total, 128);")
        out.append("#endif")
        out.append("    BUG_ON(total < 0);")
        out.append("    return total;")
        out.append("}")
    elif kind == 1:
        out.append(f"static void {name}_log_{fn}"
                   "(const char *why, int code)")
        out.append("{")
        out.append(f"    WARN_ON(code > max(128, {fn + 1}));")
        out.append(f"#ifdef CONFIG_{upper}_DEBUG")
        out.append(f'    pr_info("{name}: %s (%d)", why, code);')
        out.append("#else")
        out.append(f'    pr_debug("{name}: %s (%d)", why, code);')
        out.append("#endif")
        out.append("}")
    else:
        threshold = rng.randrange(2, 10)
        out.append(f"static int {name}_tune_{fn}(int load)")
        out.append("{")
        out.append(f"#if BITS_PER_LONG == 64")
        out.append(f"    return load << {threshold};")
        out.append("#else")
        out.append(f"    return load << {max(threshold - 2, 1)};")
        out.append("#endif")
        out.append("}")
    out.append("")
    return out
