"""Differential per-configuration checking (repro.qa).

Closes the loop between the configuration-preserving pipeline
(:mod:`repro.superc`) and the single-configuration baseline
(:mod:`repro.baselines.gcc_like`): sample concrete configurations,
project, compare token streams and ASTs, minimize any disagreement,
and drive the whole thing at corpus scale through
:mod:`repro.engine`'s scheduler (``superc-fuzz``).
"""

from repro.qa.configs import (ConfigSampler, assignment_for,
                              bdd_guided_configs, config_value,
                              lexical_config_variables, realize_model,
                              variable_base_names)
from repro.qa.differential import (CheckOutcome, DifferentialChecker,
                                   Disagreement, check_lexer_invariant,
                                   unterminated_literal)
from repro.qa.harness import (Counterexample, FuzzReport, check_unit,
                              run_fuzz, run_fuzz_unit,
                              shrink_disagreement)
from repro.qa.projector import (ast_signature, diff_tokens, project_ast,
                                project_tokens, token_texts,
                                tokens_match)
from repro.qa.shrinker import ShrinkBudget, shrink

__all__ = [
    "CheckOutcome", "ConfigSampler", "Counterexample",
    "DifferentialChecker", "Disagreement", "FuzzReport",
    "ShrinkBudget", "assignment_for", "ast_signature",
    "bdd_guided_configs", "check_lexer_invariant", "check_unit",
    "config_value", "diff_tokens", "lexical_config_variables",
    "project_ast", "project_tokens", "realize_model", "run_fuzz",
    "run_fuzz_unit", "shrink", "shrink_disagreement", "token_texts",
    "tokens_match", "unterminated_literal", "variable_base_names",
]
