"""The conditional symbol table: SuperC's C context plug-in (§5.2).

The context is a scoped symbol table tracking which names denote types
(typedef names) or objects under which presence conditions.  Its four
callbacks plug into the FMLR engine:

* ``reclassify`` turns IDENTIFIER heads into TYPEDEF_NAME where the
  symbol table says so; a name that is *ambiguously* defined under the
  current presence condition yields two classifications, which makes
  the engine fork a subparser on an implicit conditional;
* ``fork_context`` duplicates the scope chain copy-on-write;
* ``may_merge`` permits merging only at the same scope nesting level;
* ``merge_contexts`` unions scopes not already shared.

Declarations update the table from ``on_reduce``: a completed
``Declaration`` whose specifiers include ``typedef`` registers its
declarator names as typedef names under the reducing subparser's
presence condition (the specifiers or declarators may contain static
choice nodes, in which case registration is per-branch).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.cgrammar.classify import IDENTIFIER, TYPEDEF_NAME
from repro.lexer.tokens import Token, TokenKind
from repro.parser.ast import Node, StaticChoice
from repro.parser.context import ParserContext

# A scope maps name -> [(condition, is_typedef)]; later entries shadow
# earlier ones for overlapping conditions.
Scope = Dict[str, List[Tuple[Any, bool]]]


class SymbolStats:
    """Shared across forked contexts (Table 3's typedef rows)."""

    def __init__(self) -> None:
        self.typedef_names = 0
        self.ambiguous_names = 0


class CContext(ParserContext):
    """Conditional, scoped symbol table for C."""

    def __init__(self, manager: Any,
                 stats: Optional[SymbolStats] = None,
                 _scopes: Optional[List[Scope]] = None,
                 _owned: Optional[List[bool]] = None):
        self.manager = manager
        self.stats = stats or SymbolStats()
        self.scopes: List[Scope] = _scopes if _scopes is not None \
            else [{}]
        self._owned: List[bool] = _owned if _owned is not None \
            else [True]

    # -- reclassify -------------------------------------------------------

    def reclassify(self, token: Token, terminal: str,
                   condition: Any) -> List[Tuple[Any, str]]:
        if terminal != IDENTIFIER:
            return [(condition, terminal)]
        name = token.text
        remaining = condition
        buckets: Dict[str, Any] = {}
        for scope in reversed(self.scopes):
            entries = scope.get(name)
            if not entries:
                continue
            # Later entries in a scope shadow earlier ones.
            for entry_cond, is_typedef in reversed(entries):
                claimed = remaining & entry_cond
                if claimed.is_false():
                    continue
                key = TYPEDEF_NAME if is_typedef else IDENTIFIER
                buckets[key] = (buckets[key] | claimed) \
                    if key in buckets else claimed
                remaining = remaining & ~entry_cond
                if remaining.is_false():
                    break
            if remaining.is_false():
                break
        if not remaining.is_false():
            buckets[IDENTIFIER] = (buckets[IDENTIFIER] | remaining) \
                if IDENTIFIER in buckets else remaining
        if len(buckets) > 1:
            self.stats.ambiguous_names += 1
        return [(cond, terminal_name)
                for terminal_name, cond in buckets.items()]

    # -- forking and merging ------------------------------------------------

    def fork_context(self) -> "CContext":
        self._owned[:] = [False] * len(self._owned)
        return CContext(self.manager, self.stats, list(self.scopes),
                        [False] * len(self.scopes))

    def may_merge(self, other: "ParserContext") -> bool:
        return (isinstance(other, CContext)
                and len(self.scopes) == len(other.scopes))

    def merge_contexts(self, other: "CContext", self_condition: Any,
                       other_condition: Any) -> "CContext":
        merged_scopes: List[Scope] = []
        for mine, theirs in zip(self.scopes, other.scopes):
            if mine is theirs:
                merged_scopes.append(mine)
                continue
            combined: Scope = {key: list(value)
                               for key, value in mine.items()}
            for name, entries in theirs.items():
                existing = combined.setdefault(name, [])
                for entry in entries:
                    if entry not in existing:
                        existing.append(entry)
            merged_scopes.append(combined)
        return CContext(self.manager, self.stats, merged_scopes,
                        [False] * len(merged_scopes))

    # -- reductions ------------------------------------------------------------

    def on_reduce(self, production: Any, value: Any,
                  condition: Any) -> None:
        lhs = production.lhs
        if lhs == "ScopePush":
            self.scopes.append({})
            self._owned.append(True)
        elif lhs == "ScopePop":
            self.scopes.pop()
            self._owned.pop()
        elif lhs == "Declaration" and isinstance(value, Node):
            self._register_declaration(value, condition)

    def _register_declaration(self, node: Node, condition: Any) -> None:
        children = node.children
        if len(children) < 2:
            return  # `specifiers ;` declares no names
        specifiers, declarators = children[0], children[1]
        typedef_cond = self._typedef_condition(specifiers, condition)
        for name_cond, name in self._declarator_names(declarators,
                                                      condition):
            as_typedef = name_cond & typedef_cond
            as_object = name_cond & ~typedef_cond
            if not as_typedef.is_false():
                self._register(name, as_typedef, True)
                self.stats.typedef_names += 1
            if not as_object.is_false():
                self._register(name, as_object, False)

    def _typedef_condition(self, value: Any, condition: Any) -> Any:
        """Sub-condition of ``condition`` under which the declaration
        specifiers include the ``typedef`` storage class."""
        if isinstance(value, Token):
            return condition if value.text == "typedef" \
                else self.manager.false
        if isinstance(value, StaticChoice):
            result = self.manager.false
            for branch_cond, branch in value.branches:
                result = result | self._typedef_condition(
                    branch, condition & branch_cond)
            return result
        if isinstance(value, tuple):
            result = self.manager.false
            for element in value:
                result = result | self._typedef_condition(element,
                                                          condition)
            return result
        if isinstance(value, Node):
            result = self.manager.false
            for child in value.children:
                result = result | self._typedef_condition(child,
                                                          condition)
            return result
        return self.manager.false

    def _declarator_names(self, value: Any, condition: Any) \
            -> List[Tuple[Any, str]]:
        """Names declared by an init-declarator list (or fragment)."""
        names: List[Tuple[Any, str]] = []
        if isinstance(value, Token):
            if value.kind is TokenKind.IDENTIFIER:
                names.append((condition, value.text))
            return names
        if isinstance(value, tuple):
            for element in value:
                names.extend(self._declarator_names(element, condition))
            return names
        if isinstance(value, StaticChoice):
            for branch_cond, branch in value.branches:
                names.extend(self._declarator_names(
                    branch, condition & branch_cond))
            return names
        if isinstance(value, Node):
            target = _declarator_child(value)
            if target is not None:
                names.extend(self._declarator_names(target, condition))
            return names
        return names

    def _register(self, name: str, condition: Any,
                  is_typedef: bool) -> None:
        if not self._owned[-1]:
            self.scopes[-1] = {key: list(entries) for key, entries
                               in self.scopes[-1].items()}
            self._owned[-1] = True
        self.scopes[-1].setdefault(name, []).append(
            (condition, is_typedef))

    # -- queries (for analyses and tests) ------------------------------------

    def is_typedef(self, name: str, condition: Any) -> bool:
        """Is the name a typedef everywhere under ``condition``?"""
        pairs = self.reclassify(
            Token(TokenKind.IDENTIFIER, name), IDENTIFIER, condition)
        return all(t == TYPEDEF_NAME for _c, t in pairs)


def _declarator_child(node: Node) -> Any:
    """The sub-declarator holding the declared name, per node kind."""
    name = node.name
    children = node.children
    if not children:
        return None
    if name == "PointerDeclarator":
        return children[-1]
    if name in ("ArrayDeclarator", "FunctionDeclarator",
                "InitializedDeclarator", "AsmDeclarator", "BitField"):
        return children[0]
    if name == "AttributedDeclarator":
        return children[-1]
    return None


def make_context_factory(manager: Any,
                         stats: Optional[SymbolStats] = None):
    """A fresh-context factory bound to one BDD manager (engines call
    it once per parse)."""
    shared_stats = stats or SymbolStats()

    def factory() -> CContext:
        return CContext(manager, shared_stats)

    return factory
