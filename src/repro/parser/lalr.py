"""LALR(1) parser-table generation.

SuperC relies on Bison's LALR tables (§5); this module is the Bison
replacement.  It builds the LR(0) automaton and computes LALR(1)
lookahead sets with the DeRemer–Pennello relational algorithm
("Efficient computation of LALR(1) look-ahead sets", TOPLAS 1982),
which the paper cites as [13]:

* ``DR`` (directly reads), the ``reads`` and ``includes`` relations,
  and the SCC-based digraph closure give ``Follow`` sets for
  nonterminal transitions;
* ``lookback`` maps each (state, reducible production) to the
  nonterminal transitions whose Follow sets form its lookahead.

Conflicts are resolved Bison-style: precedence/associativity when
declared, otherwise shift wins a shift/reduce conflict and the earlier
production wins a reduce/reduce conflict; every resolution is recorded
in ``Tables.conflicts``.
"""

from __future__ import annotations

import pickle
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.parser.grammar import AUGMENTED, END, Assoc, Grammar, Production

# On-disk table-blob format (``to_blob``/``from_blob``).  Bump whenever
# the pickled shape of Tables/Grammar/Production changes so stale cache
# files are regenerated instead of deserialized wrongly.
TABLE_BLOB_MAGIC = b"repro-lalr-tables"
TABLE_BLOB_VERSION = 1

# An LR(0) item is (production index, dot position).
Item = Tuple[int, int]

# Parse actions.  ('s', state) shift, ('r', prod) reduce, ('a',) accept.
SHIFT = "s"
REDUCE = "r"
ACCEPT = "a"
Action = Tuple


class Conflict:
    """A recorded table conflict and how it was resolved."""

    __slots__ = ("state", "terminal", "kind", "chosen", "rejected")

    def __init__(self, state: int, terminal: str, kind: str,
                 chosen: Action, rejected: Action):
        self.state = state
        self.terminal = terminal
        self.kind = kind  # "shift/reduce" or "reduce/reduce"
        self.chosen = chosen
        self.rejected = rejected

    def __repr__(self) -> str:
        return (f"Conflict({self.kind} in state {self.state} on "
                f"{self.terminal!r}: chose {self.chosen}, "
                f"rejected {self.rejected})")


class Tables:
    """Generated ACTION/GOTO tables plus the grammar they came from."""

    def __init__(self, grammar: Grammar,
                 action: List[Dict[str, Action]],
                 goto: List[Dict[str, int]],
                 conflicts: List[Conflict]):
        self.grammar = grammar
        self.action = action
        self.goto = goto
        self.conflicts = conflicts

    @property
    def num_states(self) -> int:
        return len(self.action)

    def expected_terminals(self, state: int) -> List[str]:
        """Terminals with any action in ``state`` (for error messages)."""
        return sorted(self.action[state])


class TableBlobError(Exception):
    """A table blob is corrupt, foreign, or from another format version."""


def to_blob(tables: Tables) -> bytes:
    """Serialize generated tables to a versioned byte blob.

    The blob embeds a magic marker and ``TABLE_BLOB_VERSION`` so caches
    written by an incompatible build are rejected (and regenerated) by
    :func:`from_blob` instead of being loaded as garbage.  Production
    ACTION callables are pickled by reference, so the deserializing
    process must import the same grammar module — which it always does,
    since only our own grammars produce these tables.
    """
    return pickle.dumps({
        "magic": TABLE_BLOB_MAGIC,
        "version": TABLE_BLOB_VERSION,
        "tables": tables,
    }, protocol=pickle.HIGHEST_PROTOCOL)


def from_blob(blob: bytes) -> Tables:
    """Deserialize tables written by :func:`to_blob`.

    Raises :class:`TableBlobError` on anything that is not a blob of
    the current format version; callers treat that as a cache miss.
    """
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise TableBlobError(f"undecodable table blob: {exc!r}")
    if not isinstance(payload, dict) \
            or payload.get("magic") != TABLE_BLOB_MAGIC:
        raise TableBlobError("not a repro LALR table blob")
    version = payload.get("version")
    if version != TABLE_BLOB_VERSION:
        raise TableBlobError(
            f"table blob version {version!r} != {TABLE_BLOB_VERSION}")
    tables = payload.get("tables")
    if not isinstance(tables, Tables):
        raise TableBlobError("table blob payload is not a Tables")
    return tables


class _LR0:
    """The LR(0) automaton: item-set states and transitions."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.states: List[FrozenSet[Item]] = []       # kernel items only
        self.closures: List[List[Item]] = []
        self.transitions: List[Dict[str, int]] = []   # state -> sym -> state
        self._build()

    def _closure(self, kernel: FrozenSet[Item]) -> List[Item]:
        grammar = self.grammar
        items = list(kernel)
        seen: Set[Item] = set(kernel)
        added_lhs: Set[str] = set()
        queue = list(kernel)
        while queue:
            prod_idx, dot = queue.pop()
            rhs = grammar.productions[prod_idx].rhs
            if dot >= len(rhs):
                continue
            symbol = rhs[dot]
            if symbol in grammar.terminals or symbol in added_lhs:
                continue
            added_lhs.add(symbol)
            for production in grammar.by_lhs.get(symbol, ()):
                item = (production.index, 0)
                if item not in seen:
                    seen.add(item)
                    items.append(item)
                    queue.append(item)
        return items

    def _build(self) -> None:
        grammar = self.grammar
        initial: FrozenSet[Item] = frozenset({(0, 0)})
        index: Dict[FrozenSet[Item], int] = {initial: 0}
        self.states.append(initial)
        worklist = [0]
        while worklist:
            state = worklist.pop(0)
            closure = self._closure(self.states[state])
            if len(self.closures) <= state:
                self.closures.extend(
                    [None] * (state + 1 - len(self.closures)))
            self.closures[state] = closure
            moves: Dict[str, List[Item]] = {}
            for prod_idx, dot in closure:
                rhs = grammar.productions[prod_idx].rhs
                if dot < len(rhs):
                    moves.setdefault(rhs[dot], []).append(
                        (prod_idx, dot + 1))
            transitions: Dict[str, int] = {}
            for symbol, kernel_items in moves.items():
                kernel = frozenset(kernel_items)
                target = index.get(kernel)
                if target is None:
                    target = len(self.states)
                    index[kernel] = target
                    self.states.append(kernel)
                    worklist.append(target)
                transitions[symbol] = target
            if len(self.transitions) <= state:
                self.transitions.extend(
                    [None] * (state + 1 - len(self.transitions)))
            self.transitions[state] = transitions


def _nullable_set(grammar: Grammar) -> Set[str]:
    nullable: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for production in grammar.productions:
            if production.lhs in nullable:
                continue
            if all(symbol in nullable for symbol in production.rhs):
                nullable.add(production.lhs)
                changed = True
    return nullable


def _digraph(nodes: Sequence[Tuple[int, str]],
             relation: Dict[Tuple[int, str], List[Tuple[int, str]]],
             base: Dict[Tuple[int, str], Set[str]]) \
        -> Dict[Tuple[int, str], Set[str]]:
    """DeRemer–Pennello's Digraph: least sets F with
    F(x) = base(x) ∪ ⋃ { F(y) | x relation y }, SCCs handled by union."""
    result: Dict[Tuple[int, str], Set[str]] = {}
    n: Dict[Tuple[int, str], int] = {node: 0 for node in nodes}
    stack: List[Tuple[int, str]] = []
    INF = float("inf")

    def traverse(x: Tuple[int, str]) -> None:
        # Iterative Tarjan-style traversal to avoid recursion limits.
        call_stack = [(x, iter(relation.get(x, ())))]
        stack.append(x)
        n[x] = len(stack)
        result[x] = set(base.get(x, ()))
        while call_stack:
            node, it = call_stack[-1]
            advanced = False
            for succ in it:
                if n[succ] == 0:
                    stack.append(succ)
                    n[succ] = len(stack)
                    result[succ] = set(base.get(succ, ()))
                    call_stack.append((succ, iter(relation.get(succ, ()))))
                    advanced = True
                    break
                n[node] = min(n[node], n[succ])
                result[node] |= result[succ]
            if advanced:
                continue
            call_stack.pop()
            if call_stack:
                parent = call_stack[-1][0]
                n[parent] = min(n[parent], n[node])
                result[parent] |= result[node]
            if n[node] == stack.index(node) + 1:
                # node is an SCC root: pop the component, sharing sets.
                while True:
                    top = stack.pop()
                    n[top] = INF
                    if top == node:
                        break
                    result[top] = result[node]

    for node in nodes:
        if n[node] == 0:
            traverse(node)
    return result


def generate(grammar: Grammar) -> Tables:
    """Generate LALR(1) tables for a finished grammar."""
    grammar.finish()
    automaton = _LR0(grammar)
    nullable = _nullable_set(grammar)
    productions = grammar.productions

    # Nonterminal transitions (p, A).
    nt_transitions: List[Tuple[int, str]] = []
    for state, transitions in enumerate(automaton.transitions):
        for symbol in transitions:
            if symbol in grammar.nonterminals:
                nt_transitions.append((state, symbol))
    nt_set = set(nt_transitions)

    # DR(p, A): terminals t with goto(p, A) -t->.
    dr: Dict[Tuple[int, str], Set[str]] = {}
    for p, a in nt_transitions:
        r = automaton.transitions[p][a]
        dr[(p, a)] = {symbol for symbol in automaton.transitions[r]
                      if symbol in grammar.terminals}
        # The augmented production ($accept -> start $end) makes END a
        # real terminal transition, so no special-casing is needed here.

    # reads: (p, A) reads (r, C) iff goto(p,A)=r, r -C-> and C nullable.
    reads: Dict[Tuple[int, str], List[Tuple[int, str]]] = {}
    for p, a in nt_transitions:
        r = automaton.transitions[p][a]
        targets = [(r, c) for c in automaton.transitions[r]
                   if c in nullable and (r, c) in nt_set]
        if targets:
            reads[(p, a)] = targets

    read_sets = _digraph(nt_transitions, reads, dr)

    # includes and lookback, computed by walking each production's RHS
    # from each state with a transition on its LHS.
    includes: Dict[Tuple[int, str], List[Tuple[int, str]]] = {}
    lookback: Dict[Tuple[int, int], List[Tuple[int, str]]] = {}
    for p, a in nt_transitions:
        for production in grammar.by_lhs[a]:
            state = p
            rhs = production.rhs
            for i, symbol in enumerate(rhs):
                if symbol in grammar.nonterminals:
                    rest_nullable = all(s in nullable for s in rhs[i + 1:])
                    if rest_nullable and (state, symbol) in nt_set:
                        includes.setdefault((state, symbol), []) \
                            .append((p, a))
                state = automaton.transitions[state][symbol]
            lookback.setdefault((state, production.index), []) \
                .append((p, a))

    follow_sets = _digraph(nt_transitions, includes, read_sets)

    # LA(q, production) = union of Follow over lookback.
    lookahead: Dict[Tuple[int, int], Set[str]] = {}
    for key, sources in lookback.items():
        la: Set[str] = set()
        for source in sources:
            la |= follow_sets.get(source, set())
        lookahead[key] = la

    # Assemble ACTION and GOTO with conflict resolution.
    conflicts: List[Conflict] = []
    action: List[Dict[str, Action]] = []
    goto: List[Dict[str, int]] = []
    for state in range(len(automaton.states)):
        row: Dict[str, Action] = {}
        goto_row: Dict[str, int] = {}
        for symbol, target in automaton.transitions[state].items():
            if symbol in grammar.terminals:
                row[symbol] = (SHIFT, target)
            else:
                goto_row[symbol] = target
        for prod_idx, dot in automaton.closures[state]:
            production = productions[prod_idx]
            if dot != len(production.rhs):
                if production.index == 0 and dot == 1:
                    # $accept -> start . $end : accept on END.
                    row[END] = (ACCEPT,)
                continue
            if production.index == 0:
                continue
            for terminal in lookahead.get((state, prod_idx), ()):
                new: Action = (REDUCE, prod_idx)
                existing = row.get(terminal)
                if existing is None:
                    row[terminal] = new
                    continue
                resolved = _resolve(grammar, state, terminal, existing,
                                    new, conflicts)
                if resolved is None:
                    row.pop(terminal, None)  # nonassoc: error entry
                else:
                    row[terminal] = resolved
        action.append(row)
        goto.append(goto_row)

    return Tables(grammar, action, goto, conflicts)


def _resolve(grammar: Grammar, state: int, terminal: str,
             existing: Action, new: Action,
             conflicts: List[Conflict]) -> Optional[Action]:
    """Bison-style conflict resolution; records what happened."""
    if existing[0] == SHIFT and new[0] == REDUCE:
        shift_action, reduce_action = existing, new
    elif existing[0] == REDUCE and new[0] == SHIFT:
        shift_action, reduce_action = new, existing
    elif existing[0] == REDUCE and new[0] == REDUCE:
        # reduce/reduce: earlier production wins.
        first = min(existing[1], new[1])
        chosen: Action = (REDUCE, first)
        rejected = existing if existing[1] != first else new
        conflicts.append(Conflict(state, terminal, "reduce/reduce",
                                  chosen, rejected))
        return chosen
    else:
        # ACCEPT vs something: keep accept.
        return existing if existing[0] == ACCEPT else new

    production = grammar.productions[reduce_action[1]]
    term_prec = grammar.prec_of(terminal)
    prod_prec = grammar.production_prec(production)
    if term_prec is not None and prod_prec is not None:
        if prod_prec[0] > term_prec[0]:
            return reduce_action
        if prod_prec[0] < term_prec[0]:
            return shift_action
        assoc = term_prec[1]
        if assoc is Assoc.LEFT:
            return reduce_action
        if assoc is Assoc.RIGHT:
            return shift_action
        return None  # NONASSOC: error
    chosen = shift_action
    conflicts.append(Conflict(state, terminal, "shift/reduce",
                              chosen, reduce_action))
    return chosen
