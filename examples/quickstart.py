#!/usr/bin/env python3
"""Quickstart: parse all configurations of a C file at once.

Runs the paper's Figure 1 example (drivers/input/mousedev.c, edited
down) through the full SuperC pipeline and shows:

* the configuration-preserving preprocessor output (macros expanded,
  static conditionals intact),
* the AST with its static choice node, and
* projections onto both configurations.

Run:  python examples/quickstart.py
"""

from repro import DictFileSystem, SuperC
from repro.cpp import render
from repro.parser.ast import dump, iter_tokens, project
from repro.superc import parse_c

SOURCE = '''\
#include "major.h"   /* defines MISC_MAJOR to be 10 */

#define MOUSEDEV_MIX        31
#define MOUSEDEV_MINOR_BASE 32

static int mousedev_open(struct inode *inode, struct file *file)
{
  int i;

#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX
  if (imajor(inode) == MISC_MAJOR)
    i = MOUSEDEV_MIX;
  else
#endif
  i = iminor(inode) - MOUSEDEV_MINOR_BASE;

  return 0;
}
'''

FILES = {"include/major.h": "#define MISC_MAJOR 10\n"}


def main() -> None:
    superc = SuperC(DictFileSystem(FILES), include_paths=["include"])

    print("=== 1. configuration-preserving preprocessing ===")
    unit = superc.preprocess_source(SOURCE, "mousedev.c")
    print(render(unit.tree))

    print("\n=== 2. Fork-Merge LR parsing ===")
    result = superc.parse_source(SOURCE, "mousedev.c")
    print(f"parsed every configuration: {result.ok}")
    stats = result.parse.stats
    print(f"subparsers (max): {stats.max_subparsers}, "
          f"forks: {stats.forks}, merges: {stats.merges}")

    print("\n=== 3. the AST (static choice node marks the "
          "conditional) ===")
    tree_text = dump(result.ast)
    # The full tree is long; show the region around the choice node.
    lines = tree_text.splitlines()
    for index, line in enumerate(lines):
        if "StaticChoice" in line:
            print("\n".join(lines[max(0, index - 3):index + 12]))
            print("  ...")
            break

    print("\n=== 4. projection onto each configuration ===")
    for label, assignment in [
            ("PSAUX enabled",
             {"defined:CONFIG_INPUT_MOUSEDEV_PSAUX": True}),
            ("PSAUX disabled", {})]:
        projected = project(result.ast, assignment)
        tokens = [t.text for t in iter_tokens(projected)]
        body = " ".join(tokens)
        print(f"{label}:\n  {body[:160]}...")


if __name__ == "__main__":
    main()
