"""Table 2: a developer's view of preprocessor usage.

Regenerates both halves of the paper's Table 2 on the synthetic
kernel: (a) directive counts vs lines of code, split between C files
and headers, and (b) the five most frequently included headers.

Expected shape (paper values for x86 Linux 2.6.33.3): directives are
~10% of LoC; most #defines (84%) live in headers; most #includes (85%)
are in C files; module.h reaches ~49% of all C files.
"""

from benchmarks.conftest import emit
from repro.eval import developers_view, top_included_headers

_LABELS = {
    "loc": "LoC",
    "all_directives": "All Directives",
    "define": "#define",
    "conditional": "#if, #ifdef, #ifndef",
    "include": "#include",
}


def test_table2_developers_view(benchmark, kernel_corpus):
    table = {}

    def run():
        table["dev"] = developers_view(kernel_corpus)
        table["top"] = top_included_headers(kernel_corpus)
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)
    dev, top = table["dev"], table["top"]

    lines = ["", "=" * 64,
             "Table 2a: directives vs lines of code",
             f"{'Construct':<24}{'Total':>8}{'C Files':>10}"
             f"{'Headers':>10}"]
    for key in ("loc", "all_directives", "define", "conditional",
                "include"):
        row = dev[key]
        lines.append(f"{_LABELS[key]:<24}{row.total:>8}"
                     f"{row.pct_c:>9.0f}%{row.pct_headers:>9.0f}%")
    directive_share = (100.0 * dev["all_directives"].total /
                       dev["loc"].total)
    lines.append(f"(directives are {directive_share:.1f}% of LoC; "
                 "paper: ~10%)")
    lines.append("")
    lines.append("Table 2b: most frequently included headers")
    lines.append(f"{'Header':<40}{'C Files':>10}{'Share':>8}")
    for header, count, pct in top:
        lines.append(f"{header:<40}{count:>10}{pct:>7.0f}%")
    lines.append("=" * 64)
    emit(lines)

    benchmark.extra_info["directive_share_pct"] = directive_share
    benchmark.extra_info["define_pct_headers"] = dev["define"].pct_headers
    assert dev["define"].pct_headers > 50     # paper: 84% in headers
    assert dev["include"].pct_c > 50          # paper: 85% in C files
