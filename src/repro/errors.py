"""Structured, configuration-scoped error taxonomy.

SuperC's core robustness promise (§2.1, §3.1) is that breakage in
*some* configurations must not destroy the analysis of the others.
This module is the vocabulary for that promise: every diagnostic the
pipeline records carries

* a **presence condition** — the BDD over configuration variables
  under which the problem occurs;
* a **severity** — ``fatal`` (the whole unit is unusable),
  ``config-error`` (the condition's configurations are pruned, like
  ``#error`` branches), or ``warning``;
* a **phase** — which pipeline stage produced it (lex, preprocess,
  include, condition, expansion, parse, resource);
* a **source origin** — ``file:line:col`` when a token is known.

Hard exceptions (:class:`repro.cpp.errors.PreprocessorError`,
``LexerError``) are reserved for TRUE-condition failures; everything
occurring under a narrower presence condition is recorded as a
:class:`Diagnostic` and pruned, and processing continues.

:class:`ResourceBudget` bounds per-unit resource use (include depth,
BDD nodes, token count); tripping a budget takes the same degradation
path as a confined error instead of crashing the unit.
"""

from __future__ import annotations

from typing import Any, List, Optional

SEVERITY_FATAL = "fatal"
SEVERITY_CONFIG = "config-error"
SEVERITY_WARNING = "warning"

PHASE_LEX = "lex"
PHASE_PREPROCESS = "preprocess"
PHASE_INCLUDE = "include"
PHASE_CONDITION = "condition"
PHASE_EXPANSION = "expansion"
PHASE_PARSE = "parse"
PHASE_RESOURCE = "resource"

SEVERITIES = (SEVERITY_FATAL, SEVERITY_CONFIG, SEVERITY_WARNING)
PHASES = (PHASE_LEX, PHASE_PREPROCESS, PHASE_INCLUDE, PHASE_CONDITION,
          PHASE_EXPANSION, PHASE_PARSE, PHASE_RESOURCE)


def origin_of(token: Any) -> Optional[str]:
    """``file:line:col`` for a token-like object, or None."""
    if token is None:
        return None
    try:
        return f"{token.file}:{token.line}:{token.col}"
    except AttributeError:
        return None


class Diagnostic:
    """One condition-scoped problem found anywhere in the pipeline."""

    __slots__ = ("condition", "severity", "phase", "message", "origin")

    def __init__(self, condition: Any, severity: str, phase: str,
                 message: str, origin: Optional[str] = None):
        self.condition = condition  # a BDD node
        self.severity = severity
        self.phase = phase
        self.message = message
        self.origin = origin

    def to_record(self) -> dict:
        """Flat JSON-serializable form (engine records, ``--json``)."""
        return {
            "condition": self.condition.to_expr_string(),
            "severity": self.severity,
            "phase": self.phase,
            "message": self.message,
            "origin": self.origin,
        }

    def __repr__(self) -> str:
        return (f"Diagnostic({self.severity}, {self.phase}, "
                f"[{self.condition.to_expr_string()}], "
                f"{self.message!r})")


class ResourceBudget:
    """Per-unit resource limits; 0 disables a limit (except include
    depth, which always needs a bound to turn include cycles into
    condition-scoped diagnostics instead of ``RecursionError``)."""

    __slots__ = ("max_include_depth", "max_bdd_nodes", "max_tokens")

    DEFAULT_INCLUDE_DEPTH = 200

    def __init__(self, max_include_depth: int = DEFAULT_INCLUDE_DEPTH,
                 max_bdd_nodes: int = 0, max_tokens: int = 0):
        self.max_include_depth = max(1, max_include_depth)
        self.max_bdd_nodes = max(0, max_bdd_nodes)
        self.max_tokens = max(0, max_tokens)

    def __repr__(self) -> str:
        return (f"ResourceBudget(include_depth="
                f"{self.max_include_depth}, bdd_nodes="
                f"{self.max_bdd_nodes}, tokens={self.max_tokens})")


def serialize_diagnostics(diagnostics: List[Diagnostic],
                          limit: int = 20) -> List[dict]:
    """Records for the first ``limit`` diagnostics (engine/metrics)."""
    return [diag.to_record() for diag in diagnostics[:limit]]


__all__ = [
    "Diagnostic", "PHASES", "PHASE_CONDITION", "PHASE_EXPANSION",
    "PHASE_INCLUDE", "PHASE_LEX", "PHASE_PARSE", "PHASE_PREPROCESS",
    "PHASE_RESOURCE", "ResourceBudget", "SEVERITIES", "SEVERITY_CONFIG",
    "SEVERITY_FATAL", "SEVERITY_WARNING", "origin_of",
    "serialize_diagnostics",
]
