"""Include-dependency graph analytics.

Table 2's developer-view observation: "15% of include directives are
in header files, resulting in long chains of dependencies", and "some
headers are directly included in thousands of C files (and
preprocessed for each one)".  This module builds the include graph of
a source tree and answers the associated questions: transitive
inclusion counts, longest dependency chains, redundant direct
includes, and cycle detection (which guard macros usually mask).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+[<"]([^>"]+)[>"]',
                         re.MULTILINE)
_INCLUDE_DELIM_RE = re.compile(
    r'^[ \t]*#[ \t]*include\w*[ \t]+([<"])([^>"\n]+)[>"]', re.MULTILINE)


def build_include_graph(files: Dict[str, str],
                        include_prefix: str = "include/") -> nx.DiGraph:
    """Directed graph: edge A -> B when A includes B.

    Nodes are file paths; include operands are resolved against the
    ``include_prefix`` and against the including file's directory.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(files)
    for path, text in files.items():
        directory = path.rsplit("/", 1)[0] + "/" if "/" in path else ""
        for name in _INCLUDE_RE.findall(text):
            for candidate in (include_prefix + name, directory + name,
                              name):
                if candidate in files:
                    graph.add_edge(path, candidate)
                    break
    return graph


def build_resolved_include_graph(files: Dict[str, str],
                                 include_paths: Sequence[str] = ()) \
        -> nx.DiGraph:
    """Directed include graph using the preprocessor's search rules.

    Unlike :func:`build_include_graph` (a heuristic prefix-based
    resolver for source-tree analytics), this resolves every
    ``#include`` operand with :class:`repro.cpp.IncludeResolver` over
    the given ``include_paths`` — the same resolution the parse
    pipeline and the engine's include-closure digests perform — so the
    graph agrees exactly with what a parse of each unit would read.
    The serve layer's reverse-invalidation walk is built on it.
    """
    from repro.cpp import DictFileSystem, IncludeResolver
    resolver = IncludeResolver(DictFileSystem(files), include_paths)
    graph = nx.DiGraph()
    graph.add_nodes_from(files)
    for path, text in files.items():
        for delim, name in _INCLUDE_DELIM_RE.findall(text):
            resolved = resolver.resolve(name, delim == '"', path)
            if resolved is not None and resolved in files:
                graph.add_edge(path, resolved)
    return graph


def dependent_files(graph: nx.DiGraph, path: str) -> Set[str]:
    """Every file whose parse could change when ``path`` changes: the
    reverse transitive closure (all ancestors), plus ``path`` itself
    when present.  Files outside the graph have no dependents."""
    if path not in graph:
        return set()
    dependents = set(nx.ancestors(graph, path))
    dependents.add(path)
    return dependents


def transitive_inclusion_counts(graph: nx.DiGraph) -> Dict[str, int]:
    """For each header: how many C files reach it (Table 2b)."""
    c_files = [node for node in graph if node.endswith(".c")]
    counts: Dict[str, int] = {}
    for c_file in c_files:
        for reached in nx.descendants(graph, c_file):
            if reached.endswith(".h"):
                counts[reached] = counts.get(reached, 0) + 1
    return counts


def longest_chain(graph: nx.DiGraph) -> List[str]:
    """The longest acyclic include chain ("long chains of
    dependencies")."""
    acyclic = graph
    if not nx.is_directed_acyclic_graph(graph):
        acyclic = nx.condensation(graph)
        path = nx.dag_longest_path(acyclic)
        # Expand condensation members arbitrarily (one per component).
        members = acyclic.nodes(data="members")
        return [sorted(dict(members)[node])[0] for node in path]
    return nx.dag_longest_path(acyclic)


def include_cycles(graph: nx.DiGraph) -> List[List[str]]:
    """Header inclusion cycles (guard macros usually break them at
    preprocessing time, but they still indicate layering problems)."""
    return [sorted(component)
            for component in nx.strongly_connected_components(graph)
            if len(component) > 1]


def redundant_direct_includes(graph: nx.DiGraph) \
        -> List[Tuple[str, str, str]]:
    """Direct includes already implied transitively: (file, header,
    via) triples where file -> via -> ... -> header exists without the
    direct edge."""
    redundant: List[Tuple[str, str, str]] = []
    for source, target in list(graph.edges):
        others = [succ for succ in graph.successors(source)
                  if succ != target]
        for via in others:
            if target == via:
                continue
            if nx.has_path(graph, via, target):
                redundant.append((source, target, via))
                break
    return redundant


def preprocessing_fanout(graph: nx.DiGraph) -> int:
    """Total number of (C file, reachable header) pairs: how many
    header preprocessings a non-caching tool performs for the tree
    (the paper: module.h alone is preprocessed for nearly half of all
    C files)."""
    return sum(transitive_inclusion_counts(graph).values())
