"""Setuptools shim.

Metadata lives in pyproject.toml; this file keeps legacy
``pip install -e .`` working on environments without the ``wheel``
package (PEP 517 editable installs need it, ``setup.py develop`` does
not).
"""

from setuptools import setup

setup()
