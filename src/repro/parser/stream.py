"""Navigable token stream for FMLR parsing.

The preprocessor's token tree is turned into a DAG of stream nodes:

* a :class:`TokenNode` holds one ordinary token, its document-order
  position, and a ``succ`` link to the next element *in its branch* —
  when the branch ends, ``succ`` points past the enclosing conditional
  (recursively), so stepping a subparser never needs parent pointers;
* a :class:`BranchNode` is a static-conditional branch point whose
  alternatives are ``(relative condition, first element)`` pairs; an
  empty or implicit else-branch points directly at the element after
  the conditional, materialized explicitly at build time.

Positions are assigned in *document order* (branch bodies before the
shared continuation), which is what the FMLR priority queue orders by:
"no subparser can outrun the other subparsers" (§4.1).  A sentinel EOF
token node terminates the stream.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.cpp.tree import Conditional, TokenTree
from repro.lexer.tokens import Token, TokenKind

StreamElement = Union["TokenNode", "BranchNode"]


class TokenNode:
    """One ordinary token in the stream DAG."""

    __slots__ = ("token", "position", "succ")

    def __init__(self, token: Token, position: int = -1,
                 succ: Optional[StreamElement] = None):
        self.token = token
        self.position = position
        self.succ = succ

    @property
    def is_eof(self) -> bool:
        return self.token.kind is TokenKind.EOF

    def __repr__(self) -> str:
        return f"TokenNode(#{self.position}, {self.token.text!r})"


class BranchNode:
    """A static-conditional branch point."""

    __slots__ = ("alternatives", "position")

    def __init__(self, alternatives: List[Tuple[Any, StreamElement]],
                 position: int = -1):
        # (relative presence condition, first element of the branch)
        self.alternatives = alternatives
        self.position = position

    def __repr__(self) -> str:
        return (f"BranchNode(#{self.position}, "
                f"{len(self.alternatives)} alternatives)")


def build_stream(tree: TokenTree, manager: Any,
                 filename: str = "<input>") -> StreamElement:
    """Build the stream DAG from a token tree.

    Returns the first element (the EOF sentinel for an empty tree).
    """
    eof_node = TokenNode(Token(TokenKind.EOF, "", filename))
    token_nodes: Dict[int, TokenNode] = {}
    branch_nodes: Dict[int, BranchNode] = {}

    def build(items: TokenTree, following: StreamElement) -> StreamElement:
        result: StreamElement = following
        for item in reversed(items):
            if isinstance(item, Conditional):
                alternatives: List[Tuple[Any, StreamElement]] = []
                remainder = manager.true
                for condition, subtree in item.branches:
                    remainder = remainder & ~condition
                    alternatives.append((condition, build(subtree, result)))
                if not remainder.is_false():
                    alternatives.append((remainder, result))
                node = BranchNode(alternatives)
                branch_nodes[id(item)] = node
                result = node
            else:
                node = TokenNode(item, succ=result)
                token_nodes[id(item)] = node
                result = node
        return result

    first = build(tree, eof_node)

    # Document-order positions via a forward walk over the *tree*.
    counter = [0]

    def assign(items: TokenTree) -> None:
        for item in items:
            if isinstance(item, Conditional):
                branch_nodes[id(item)].position = counter[0]
                for _condition, subtree in item.branches:
                    assign(subtree)
            else:
                token_nodes[id(item)].position = counter[0]
                counter[0] += 1

    assign(tree)
    eof_node.position = counter[0]
    return first


def stream_tokens(first: StreamElement) -> List[TokenNode]:
    """All token nodes reachable from ``first``, in position order."""
    seen = set()
    out: List[TokenNode] = []
    stack: List[Optional[StreamElement]] = [first]
    while stack:
        element = stack.pop()
        if element is None or id(element) in seen:
            continue
        seen.add(id(element))
        if isinstance(element, TokenNode):
            out.append(element)
            stack.append(element.succ)
        else:
            for _cond, sub in element.alternatives:
                stack.append(sub)
    return sorted(out, key=lambda node: node.position)
