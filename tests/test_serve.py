"""Tests for the persistent parse service (``repro.serve``)."""

import json
import os
import threading
import time

import pytest

from repro import chaos
from repro.api import Config, is_result
from repro.cpp import DictFileSystem
from repro.engine import (BatchEngine, CorpusJob, EngineConfig,
                          attempt_deadline, DeadlineExceeded)
from repro.serve import (AdmissionQueue, Deadline, FileStore,
                         InvalidationIndex, ParseServer, ParseService,
                         PoolConfig, QueueClosed, STATUS_SHED,
                         STATUS_UNAVAILABLE, ServeClient, ServeError,
                         ServerState, TIER_DISK, TIER_MEMORY,
                         TIER_TOKEN, file_token_digest,
                         token_fingerprint)
from repro.serve.incremental import build_resolved_include_graph

# A corpus with a header shared by exactly two of three units, plus a
# second-level header reached only through only_a.h — the shape the
# reverse-invalidation walk must get exactly right.
FILES = {
    "include/shared.h": "#define SHARED 1\n",
    "include/only_a.h": "#include <shared.h>\n#define ONLY_A 2\n",
    "a.c": "#include <only_a.h>\nint a = SHARED + ONLY_A;\n",
    "b.c": "#include <shared.h>\nint b = SHARED;\n",
    "c.c": "int c = 3;\n",
}
INCLUDE_PATHS = ("include",)
UNITS = ("a.c", "b.c", "c.c")


def make_state(tmp_path, files=None, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return ServerState(
        Config(files=dict(files or FILES),
               include_paths=INCLUDE_PATHS),
        **kwargs)


def parse_unit(state, unit):
    text = state.files.read(unit)
    key, _digest, members = state.unit_key(unit, text)
    record, tier = state.lookup(unit, key, members)
    if record is None:
        record = state.parse(unit, text, key, members)
    return record, tier


class TestFileStore:
    def test_reads_are_cached_and_fingerprinted(self):
        store = FileStore(DictFileSystem(dict(FILES)))
        assert store.read("a.c") == FILES["a.c"]
        digest = store.digest("a.c")
        assert digest and len(digest) == 64
        # The base is not consulted again: mutate it and re-read.
        store.base.files["a.c"] = "int changed;\n"
        assert store.read("a.c") == FILES["a.c"]

    def test_invalidate_rereads_base(self):
        store = FileStore(DictFileSystem(dict(FILES)))
        store.read("a.c")
        store.base.files["a.c"] = "int changed;\n"
        assert store.invalidate("a.c")
        assert store.read("a.c") == "int changed;\n"
        assert not store.invalidate("nope.c")

    def test_put_overlays_without_touching_base(self):
        base = DictFileSystem(dict(FILES))
        store = FileStore(base)
        store.put("a.c", "int overlay;\n")
        assert store.read("a.c") == "int overlay;\n"
        assert base.read("a.c") == FILES["a.c"]

    def test_known_files_excludes_missing(self):
        store = FileStore(DictFileSystem(dict(FILES)))
        store.read("a.c")
        assert store.read("missing.h") is None
        known = store.known_files()
        assert "a.c" in known and "missing.h" not in known


class TestTokenFingerprint:
    def test_layout_edits_do_not_change_it(self):
        base = file_token_digest("int  x = 1;\n")
        assert base == file_token_digest("int x/*c*/ = 1;  // t\n")
        assert base == file_token_digest("\n\nint x\n  = 1;\n")

    def test_real_edits_change_it(self):
        assert file_token_digest("int x = 1;") \
            != file_token_digest("int x = 2;")

    def test_closure_membership_is_part_of_it(self):
        store = FileStore(DictFileSystem(dict(FILES)))
        one = token_fingerprint(store.read, "a.c",
                                ["include/only_a.h"])
        both = token_fingerprint(store.read, "a.c",
                                 ["include/only_a.h",
                                  "include/shared.h"])
        assert one != both

    def test_missing_member_is_stable(self):
        store = FileStore(DictFileSystem(dict(FILES)))
        first = token_fingerprint(store.read, "a.c", ["gone.h"])
        second = token_fingerprint(store.read, "a.c", ["gone.h"])
        assert first == second


class TestInvalidationIndex:
    def test_resolved_graph_edges(self):
        graph = build_resolved_include_graph(FILES, INCLUDE_PATHS)
        assert graph.has_edge("a.c", "include/only_a.h")
        assert graph.has_edge("include/only_a.h", "include/shared.h")
        assert graph.has_edge("b.c", "include/shared.h")
        assert not list(graph.successors("c.c"))

    def test_affected_units_is_exact(self):
        index = InvalidationIndex(INCLUDE_PATHS)
        affected = index.affected_units(FILES, "include/shared.h",
                                        UNITS)
        assert affected == {"a.c", "b.c"}
        affected = index.affected_units(FILES, "include/only_a.h",
                                        UNITS)
        assert affected == {"a.c"}
        assert index.affected_units(FILES, "c.c", UNITS) == {"c.c"}

    def test_unknown_path_affects_nothing(self):
        index = InvalidationIndex(INCLUDE_PATHS)
        assert index.affected_units(FILES, "include/none.h",
                                    UNITS) == set()


class TestAdmission:
    def test_fifo_and_depth_limit(self):
        queue = AdmissionQueue(max_depth=2)
        assert queue.submit("a") and queue.submit("b")
        assert not queue.submit("c")
        assert queue.shed == 1
        assert queue.pop(0.01) == "a"
        assert queue.submit("c")  # a slot freed up
        assert queue.pop(0.01) == "b"

    def test_priority_bypasses_depth(self):
        queue = AdmissionQueue(max_depth=0)
        assert not queue.submit("work")
        assert queue.submit("control", priority=True)

    def test_drain_refuses_then_closes(self):
        queue = AdmissionQueue(max_depth=8)
        queue.submit("a")
        queue.begin_drain()
        assert not queue.submit("b")
        assert queue.pop(0.01) == "a"
        with pytest.raises(QueueClosed):
            queue.pop(0.01)

    def test_close_with_lands_sentinel_behind_backlog(self):
        queue = AdmissionQueue(max_depth=8)
        queue.submit("a")
        queue.close_with("sentinel")
        assert queue.pop(0.01) == "a"
        assert queue.pop(0.01) == "sentinel"
        with pytest.raises(QueueClosed):
            queue.pop(0.01)

    def test_deadline(self):
        assert not Deadline(0.0).enabled
        assert Deadline(0.0).remaining() == float("inf")
        expired = Deadline(0.001, start=time.monotonic() - 1.0)
        assert expired.expired()

    def test_attempt_deadline_off_main_thread_is_soft(self):
        flags = {}

        def run():
            with attempt_deadline(0.001) as armed:
                flags["armed"] = armed
                time.sleep(0.01)
                flags["survived"] = True

        thread = threading.Thread(target=run)
        thread.start()
        thread.join()
        assert flags == {"armed": False, "survived": True}

    def test_attempt_deadline_fires_on_main_thread(self):
        import signal
        if not hasattr(signal, "setitimer"):
            pytest.skip("no setitimer")
        with pytest.raises(DeadlineExceeded):
            with attempt_deadline(0.02):
                time.sleep(1.0)


class TestServerState:
    def test_miss_then_memory_hit(self, tmp_path):
        state = make_state(tmp_path)
        record, tier = parse_unit(state, "a.c")
        assert tier is None and record["status"] == "ok"
        record, tier = parse_unit(state, "a.c")
        assert tier == TIER_MEMORY
        assert state.parses == 1

    def test_disk_hit_across_restart(self, tmp_path):
        state = make_state(tmp_path)
        parse_unit(state, "a.c")
        reborn = make_state(tmp_path)
        record, tier = parse_unit(reborn, "a.c")
        assert tier == TIER_DISK
        assert reborn.parses == 0

    def test_layout_only_edit_token_short_circuits(self, tmp_path):
        state = make_state(tmp_path)
        first, _tier = parse_unit(state, "a.c")
        state.invalidate("include/shared.h",
                         text="#define SHARED 1  /* new comment */\n")
        record, tier = parse_unit(state, "a.c")
        assert tier == TIER_TOKEN
        assert state.parses == 1
        assert record["status"] == first["status"]
        # The re-published key now answers from memory directly.
        _record, tier = parse_unit(state, "a.c")
        assert tier == TIER_MEMORY

    def test_semantic_edit_reparses(self, tmp_path):
        state = make_state(tmp_path)
        parse_unit(state, "a.c")
        state.invalidate("include/shared.h",
                         text="#define SHARED 42\n")
        _record, tier = parse_unit(state, "a.c")
        assert tier is None
        assert state.parses == 2

    def test_invalidate_drops_exactly_the_dependents(self, tmp_path):
        state = make_state(tmp_path)
        for unit in UNITS:
            parse_unit(state, unit)
        assert state.parses == 3
        dropped = state.invalidate("include/shared.h",
                                   text="#define SHARED 9\n")
        assert dropped == ["a.c", "b.c"]
        # c.c never left the memory tier; a.c and b.c re-parse.
        _record, tier = parse_unit(state, "c.c")
        assert tier == TIER_MEMORY
        for unit in ("a.c", "b.c"):
            _record, tier = parse_unit(state, unit)
            assert tier is None, unit
        assert state.parses == 5

    def test_second_level_header_only_hits_its_chain(self, tmp_path):
        state = make_state(tmp_path)
        for unit in UNITS:
            parse_unit(state, unit)
        dropped = state.invalidate("include/only_a.h",
                                   text="#define ONLY_A 7\n")
        assert dropped == ["a.c"]

    def test_serve_warms_the_batch_engine(self, tmp_path):
        """Daemon and superc-batch share one on-disk result cache."""
        state = make_state(tmp_path)
        for unit in UNITS:
            parse_unit(state, unit)
        job = CorpusJob(list(UNITS), include_paths=list(INCLUDE_PATHS),
                        files=dict(FILES))
        config = EngineConfig(cache_dir=str(tmp_path / "cache"))
        report = BatchEngine(config).run(job)
        assert report.cache_hits == len(UNITS)

    def test_batch_warms_the_server(self, tmp_path):
        job = CorpusJob(list(UNITS), include_paths=list(INCLUDE_PATHS),
                        files=dict(FILES))
        config = EngineConfig(cache_dir=str(tmp_path / "cache"))
        BatchEngine(config).run(job)
        state = make_state(tmp_path)
        for unit in UNITS:
            _record, tier = parse_unit(state, unit)
            assert tier == TIER_DISK, unit
        assert state.parses == 0

    def test_unknown_optimization_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_state(tmp_path, optimization="nope")

    def test_stats_shape(self, tmp_path):
        state = make_state(tmp_path)
        parse_unit(state, "a.c")
        stats = state.stats()
        assert stats["units_warm"] == 1
        assert stats["parses"] == 1
        assert stats["result_cache"]["misses"] >= 1
        json.dumps(stats)  # JSON-serializable


class TestParseService:
    def service(self, tmp_path):
        return ParseService(make_state(tmp_path))

    def test_parse_response_is_a_result_record(self, tmp_path):
        service = self.service(tmp_path)
        response = service.handle({"id": 7, "op": "parse",
                                   "path": "a.c"})
        assert response["id"] == 7
        assert response["status"] == "ok"
        assert response["cache"] == "miss"
        for key in ("timing", "diagnostics", "profile", "unit"):
            assert key in response
        from repro.engine import UnitResult
        assert is_result(UnitResult(response))

    def test_second_parse_hits(self, tmp_path):
        service = self.service(tmp_path)
        service.handle({"op": "parse", "path": "a.c"})
        response = service.handle({"op": "parse", "path": "a.c"})
        assert response["cache"] == "hit"
        assert response["tier"] == TIER_MEMORY
        assert service.hits == 1

    def test_fresh_bypasses_the_caches(self, tmp_path):
        service = self.service(tmp_path)
        service.handle({"op": "parse", "path": "a.c"})
        response = service.handle({"op": "parse", "path": "a.c",
                                   "fresh": True})
        assert response["cache"] == "miss"

    def test_parse_text_buffer(self, tmp_path):
        service = self.service(tmp_path)
        response = service.handle({"op": "parse", "text": "int x;",
                                   "filename": "<buffer>"})
        assert response["status"] == "ok"
        assert response["unit"] == "<buffer>"

    def test_bad_requests_are_confined(self, tmp_path):
        service = self.service(tmp_path)
        assert service.handle({"op": "nope"})["status"] == "error"
        assert service.handle({"op": "parse"})["status"] == "error"
        assert service.handle({"op": "parse", "path": "gone.c"
                               })["status"] == "error"
        assert service.handle({"op": "invalidate"})["status"] == "error"

    def test_invalidate_reports_dropped_units(self, tmp_path):
        service = self.service(tmp_path)
        for unit in UNITS:
            service.handle({"op": "parse", "path": unit})
        response = service.handle({"op": "invalidate",
                                   "path": "include/shared.h",
                                   "text": "#define SHARED 5\n"})
        assert response["status"] == "ok"
        assert response["invalidated"] == ["a.c", "b.c"]
        assert response["count"] == 2

    def test_stats_op(self, tmp_path):
        service = self.service(tmp_path)
        service.handle({"op": "parse", "path": "a.c"})
        response = service.handle({"op": "stats"})
        assert response["status"] == "ok"
        assert response["stats"]["requests"] == 2

    def test_tracer_counters(self, tmp_path):
        from repro.obs import Tracer
        tracer = Tracer()
        service = ParseService(make_state(tmp_path), tracer=tracer)
        service.handle({"op": "parse", "path": "a.c"})
        service.handle({"op": "parse", "path": "a.c"})
        assert tracer.counters["serve.requests"] == 2
        assert tracer.counters["serve.cache.miss"] == 1
        assert tracer.counters["serve.cache.hit"] == 1
        roots = [span.name for span in tracer.roots]
        assert roots == ["serve.request", "serve.request"]


@pytest.fixture
def running_server(tmp_path):
    """A ParseServer on a real Unix socket, torn down after the test."""
    sock = str(tmp_path / "serve.sock")
    server = ParseServer(
        config=Config(files=dict(FILES), include_paths=INCLUDE_PATHS),
        socket_path=sock, max_queue=2,
        cache_dir=str(tmp_path / "cache")).start()
    try:
        yield server, sock
    finally:
        server.close()


class TestParseServerEndToEnd:
    def test_parse_hit_invalidate_shutdown(self, running_server):
        server, sock = running_server
        with ServeClient(socket_path=sock) as client:
            assert client.ping()["status"] == "ok"
            first = client.parse("a.c")
            assert first.ok and first.record["cache"] == "miss"
            assert is_result(first)
            second = client.parse("a.c")
            assert second.record["cache"] == "hit"
            response = client.invalidate("include/shared.h",
                                         text="#define SHARED 4\n")
            assert response["invalidated"] == ["a.c"]
            third = client.parse("a.c")
            assert third.record["cache"] == "miss"
            stats = client.stats()
            assert stats["cache_hits"] == 1
            assert stats["requests"] >= 4
            result = client.shutdown()
            assert result["status"] == "ok"
            assert result["drained"] >= 4
        assert server.wait(10.0)

    def test_burst_sheds_beyond_queue_depth(self, running_server):
        server, sock = running_server
        with ServeClient(socket_path=sock) as client:
            client.parse("a.c")  # warm tables before timing matters
            ids = [client.submit("parse", path="a.c", delay=0.4,
                                 fresh=True)]
            ids += [client.submit("parse", path="a.c", fresh=True)
                    for _ in range(6)]
            responses = client.drain(ids)
        statuses = [response["status"] for response in responses]
        assert statuses.count(STATUS_SHED) >= 1
        assert all(status in ("ok", "degraded", STATUS_SHED)
                   for status in statuses)
        shed = [response for response in responses
                if response["status"] == STATUS_SHED]
        assert all("queue depth" in response["error"]
                   for response in shed)
        assert server.queue.shed >= 1

    def test_queue_expired_deadline_times_out(self, running_server):
        server, sock = running_server
        with ServeClient(socket_path=sock) as client:
            slow = client.submit("parse", path="a.c", delay=0.4)
            doomed = client.submit("parse", path="b.c", deadline=0.05)
            responses = client.drain([slow, doomed])
        assert responses[0]["status"] in ("ok", "degraded")
        assert responses[1]["status"] == "timeout"
        assert "deadline" in responses[1]["error"]

    def test_shutdown_drains_pipelined_requests(self, tmp_path):
        sock = str(tmp_path / "drain.sock")
        server = ParseServer(
            config=Config(files=dict(FILES),
                          include_paths=INCLUDE_PATHS),
            socket_path=sock, max_queue=16,
            cache_dir=str(tmp_path / "cache")).start()
        try:
            with ServeClient(socket_path=sock) as client:
                ids = [client.submit("parse", path=unit)
                       for unit in UNITS]
                shutdown_id = client.submit("shutdown")
                responses = client.drain(ids + [shutdown_id])
            for response in responses[:-1]:
                assert response["status"] in ("ok", "degraded")
            assert responses[-1]["status"] == "ok"
            assert responses[-1]["drained"] == len(UNITS)
            assert server.wait(10.0)
        finally:
            server.close()

    def test_requests_after_shutdown_are_shed(self, running_server):
        server, sock = running_server
        with ServeClient(socket_path=sock) as client:
            slow = client.submit("parse", path="a.c", delay=0.3)
            shutdown_id = client.submit("shutdown")
            late = client.submit("parse", path="b.c")
            late_response = client.wait_for(late)
            assert late_response["status"] == STATUS_SHED
            assert late_response["error"] == "draining"
            assert client.wait_for(slow)["status"] in ("ok", "degraded")
            assert client.wait_for(shutdown_id)["status"] == "ok"

    def test_tcp_transport(self, tmp_path):
        server = ParseServer(
            config=Config(files=dict(FILES),
                          include_paths=INCLUDE_PATHS),
            port=0, cache_dir=str(tmp_path / "cache")).start()
        try:
            host, port = server.address
            with ServeClient(host=host, port=port) as client:
                assert client.parse("c.c").ok
                assert client.shutdown()["status"] == "ok"
            assert server.wait(10.0)
        finally:
            server.close()

    def test_connect_failure_raises_serve_error(self, tmp_path):
        client = ServeClient(socket_path=str(tmp_path / "nope.sock"))
        with pytest.raises(ServeError):
            client.connect()


class TestAdmissionRaces:
    """Concurrency contracts of the admission queue: nothing admitted
    is ever lost, nothing shed is ever served, and the shutdown
    sentinel always lands last — under racing producers."""

    PRODUCERS = 8
    PER_PRODUCER = 50

    def _run_race(self, queue, submit_barrier=None):
        accepted = [[] for _ in range(self.PRODUCERS)]
        shed = [0] * self.PRODUCERS

        def produce(index):
            if submit_barrier is not None:
                submit_barrier.wait()
            for sequence in range(self.PER_PRODUCER):
                item = (index, sequence)
                if queue.submit(item):
                    accepted[index].append(item)
                else:
                    shed[index] += 1
        threads = [threading.Thread(target=produce, args=(index,))
                   for index in range(self.PRODUCERS)]
        for thread in threads:
            thread.start()
        return threads, accepted, shed

    def test_concurrent_producers_during_drain(self):
        """Producers race ``close_with``: every accepted item is popped
        exactly once before QueueClosed, and the sentinel is last."""
        queue = AdmissionQueue(max_depth=10_000)
        barrier = threading.Barrier(self.PRODUCERS + 1)
        threads, accepted, shed = self._run_race(queue, barrier)
        barrier.wait()          # all producers mid-flight…
        queue.close_with("SENTINEL")
        for thread in threads:
            thread.join()
        popped = []
        with pytest.raises(QueueClosed):
            while True:
                popped.append(queue.pop(timeout=0.5))
        assert popped[-1] == "SENTINEL", \
            "the shutdown sentinel must drain last"
        served = popped[:-1]
        flat_accepted = [item for items in accepted for item in items]
        # Conservation: accepted == served (exactly once), and
        # accepted + shed == every submit attempted.
        assert sorted(served) == sorted(flat_accepted)
        assert len(served) == len(set(served))
        assert len(flat_accepted) + sum(shed) \
            == self.PRODUCERS * self.PER_PRODUCER

    def test_shed_vs_pop_ordering_and_conservation(self):
        """With a consumer racing a tiny queue, every item is either
        served in per-producer FIFO order or shed — never both, never
        lost."""
        queue = AdmissionQueue(max_depth=4)
        popped = []
        done = threading.Event()

        def consume():
            while True:
                try:
                    item = queue.pop(timeout=0.2)
                except QueueClosed:
                    return
                if item is None:
                    if done.is_set():
                        # Producers finished; drain the tail.
                        queue.begin_drain()
                    continue
                popped.append(item)
        consumer = threading.Thread(target=consume)
        consumer.start()
        threads, accepted, shed = self._run_race(queue)
        for thread in threads:
            thread.join()
        done.set()
        consumer.join(timeout=10.0)
        assert not consumer.is_alive()
        flat_accepted = [item for items in accepted for item in items]
        assert sorted(popped) == sorted(flat_accepted), \
            "served set must be exactly the accepted set"
        assert queue.shed == sum(shed)
        assert queue.submitted == len(flat_accepted)
        # FIFO per producer: each producer's surviving sequence
        # numbers come out in submission order.
        for index in range(self.PRODUCERS):
            sequences = [sequence for (producer, sequence) in popped
                         if producer == index]
            assert sequences == sorted(sequences)

    def test_queue_wait_counts_against_deadline(self, running_server):
        """A request whose whole budget is eaten by queue wait is
        answered ``timeout`` without being parsed (the Deadline starts
        at admission, not at pop)."""
        server, sock = running_server
        with ServeClient(socket_path=sock) as client:
            client.parse("a.c")  # warm up so delay dominates
            baseline = server.state.parses
            slow = client.submit("parse", path="a.c", delay=0.4,
                                 fresh=True)
            doomed = client.submit("parse", path="b.c", deadline=0.05)
            responses = client.drain([slow, doomed])
        assert responses[0]["status"] in ("ok", "degraded")
        assert responses[1]["status"] == "timeout"
        assert "in queue" in responses[1]["error"], \
            "the timeout must be attributed to queue wait"
        assert server.state.parses == baseline + 1, \
            "the expired request must not have been parsed"


class TestClientRetry:
    def test_unavailable_after_retry_budget(self, tmp_path):
        client = ServeClient(socket_path=str(tmp_path / "nope.sock"),
                             retries=2, backoff_base=0.001)
        response = client.request("stats")
        assert response["status"] == STATUS_UNAVAILABLE
        assert response["attempts"] == 3
        assert "cannot connect" in response["error"]

    def test_zero_retries_still_structured(self, tmp_path):
        client = ServeClient(socket_path=str(tmp_path / "nope.sock"),
                             retries=0)
        response = client.request("ping")
        assert response["status"] == STATUS_UNAVAILABLE
        assert response["attempts"] == 1

    def test_backoff_is_deterministic_and_bounded(self, tmp_path):
        kwargs = dict(socket_path=str(tmp_path / "sock"),
                      backoff_base=0.05, backoff_max=0.4,
                      backoff_jitter=0.5, backoff_seed=3)
        one = ServeClient(**kwargs)
        two = ServeClient(**kwargs)
        delays = [one._backoff_delay(n) for n in range(1, 6)]
        assert delays == [two._backoff_delay(n) for n in range(1, 6)]
        assert all(delay <= 0.4 * 1.5 for delay in delays), \
            "bounded by backoff_max plus jitter"
        assert delays[1] > delays[0], "exponential ramp"

    def test_reconnects_through_dropped_socket(self, running_server):
        """chaos drop-conn severs the connection mid-response; the
        client must reconnect, resend, and still get the answer."""
        server, sock = running_server
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            with ServeClient(socket_path=sock,
                             backoff_base=0.01) as client:
                assert client.parse("c.c").ok
                plan.arm("conn.send", "drop-conn")
                result = client.parse("c.c")
                assert result.ok, \
                    "retry through the dropped socket must succeed"
        assert plan.fired("drop-conn") == 1

    def test_protocol_garbage_still_raises(self, tmp_path):
        """Only transport failures retry: a garbage response line is a
        bug, not a restart, and must surface immediately."""
        error = ServeError("bad response line", retryable=False)
        assert not error.retryable
        retryable = ServeError("receive failed", retryable=True)
        assert retryable.retryable


class TestPooledServer:
    """End-to-end over the supervised multi-process worker pool."""

    @pytest.fixture
    def pooled_server(self, tmp_path):
        sock = str(tmp_path / "pool.sock")
        server = ParseServer(
            config=Config(files=dict(FILES),
                          include_paths=INCLUDE_PATHS),
            socket_path=sock, max_queue=16, workers=2,
            pool_config=PoolConfig(size=2, heartbeat_seconds=0.2),
            cache_dir=str(tmp_path / "cache")).start()
        try:
            yield server, sock
        finally:
            server.close()

    def test_parse_over_pool(self, pooled_server):
        server, sock = pooled_server
        with ServeClient(socket_path=sock) as client:
            first = client.parse("a.c")
            assert first.ok and first.record["cache"] == "miss"
            assert is_result(first)
            second = client.parse("a.c")
            assert second.record["cache"] == "hit"
            stats = client.stats()
            assert stats["pool"]["alive"] >= 1
            assert stats["pool"]["spawns"] >= 2
            assert client.shutdown()["status"] == "ok"
        assert server.wait(10.0)

    def test_worker_crash_is_invisible_to_client(self, pooled_server):
        server, sock = pooled_server
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            with ServeClient(socket_path=sock) as client:
                plan.arm("pool.request", "worker-crash")
                result = client.parse("b.c", fresh=True)
                assert result.ok
                stats = client.stats()
                assert stats["pool"]["crashes"] >= 1
                assert stats["pool"]["restarts"] >= 1
                client.shutdown()
        assert server.wait(10.0)

    def test_deadline_enforced_off_main_thread(self, pooled_server):
        """The pool supervisor enforces deadlines with select+SIGKILL,
        so they work on dispatcher threads where SIGALRM cannot."""
        server, sock = pooled_server
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            with ServeClient(socket_path=sock) as client:
                plan.arm("pool.request", "worker-hang", seconds=30.0)
                hung = client.parse("c.c", fresh=True, deadline=0.8)
                assert hung.record["status"] == "timeout"
                clean = client.parse("c.c", fresh=True)
                assert clean.ok
                client.shutdown()
        assert server.wait(10.0)


class TestServeCli:
    def test_usage_error_without_endpoint(self, capsys):
        from repro.tools.serve_cli import main
        assert main([]) == 2
        assert "--socket" in capsys.readouterr().err

    def test_client_mode_connect_failure(self, tmp_path, capsys):
        from repro.tools.serve_cli import main
        code = main(["--socket", str(tmp_path / "nope.sock"),
                     "--stats"])
        assert code == 1
        assert "cannot connect" in capsys.readouterr().err

    def test_client_against_running_server(self, tmp_path, capsys):
        sock = str(tmp_path / "cli.sock")
        server = ParseServer(
            config=Config(files=dict(FILES),
                          include_paths=INCLUDE_PATHS),
            socket_path=sock,
            cache_dir=str(tmp_path / "cache")).start()
        try:
            from repro.tools.serve_cli import main
            code = main(["--socket", sock, "--parse", "a.c",
                         "--parse", "a.c", "--json", "--shutdown"])
            out = capsys.readouterr().out
            assert code == 0
            lines = [json.loads(line) for line in out.splitlines()
                     if line.startswith("{")]
            parses = [line for line in lines if line.get("op") == "parse"]
            assert [p["cache"] for p in parses] == ["miss", "hit"]
            assert server.wait(10.0)
        finally:
            server.close()


class TestServeTraceExport:
    def test_lane_per_request_chrome_trace(self, tmp_path):
        from repro.obs import Tracer, to_chrome_trace, \
            validate_chrome_trace
        tracer = Tracer()
        service = ParseService(make_state(tmp_path), tracer=tracer)
        service.handle({"op": "parse", "path": "a.c"})
        service.handle({"op": "parse", "path": "b.c"})
        trace = to_chrome_trace(tracer, lane_per_root=True)
        assert validate_chrome_trace(trace) == []
        lanes = {event["tid"] for event in trace["traceEvents"]
                 if event.get("ph") == "X"
                 and event["name"] == "serve.request"}
        assert len(lanes) == 2
        names = [event["args"]["name"]
                 for event in trace["traceEvents"]
                 if event.get("name") == "thread_name"]
        assert any("a.c" in name for name in names)
        assert any("b.c" in name for name in names)
