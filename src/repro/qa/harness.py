"""The fuzzing harness: generation, checking, shrinking, reporting.

Rides on :mod:`repro.engine`'s batch scheduler — each "unit" is a
virtual name ``fuzz:<seed>``; a custom :class:`CorpusJob` runner
(:func:`run_fuzz_unit`, resolved by dotted path inside each worker)
generates the unit deterministically from its seed, differentially
checks it, and returns a standard engine record, so fuzz runs get the
engine's worker pool, per-unit SIGALRM deadlines, retry waves, and
JSON-lines metrics for free.

Disagreements are minimized in the parent with the ddmin shrinker and
emitted as ``counterexample`` metrics events.
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional

from repro.corpus.fuzz import FuzzSpec, FuzzUnit, generate_fuzz_unit
from repro.engine.metrics import MetricsStream
from repro.engine.results import (STATUS_CRASHED, STATUS_DEGRADED,
                                  STATUS_DISAGREE, STATUS_ERROR,
                                  STATUS_OK, STATUS_TIMEOUT,
                                  CorpusReport)
from repro.engine.scheduler import BatchEngine, CorpusJob, EngineConfig
from repro.qa.differential import DifferentialChecker
from repro.qa.shrinker import ShrinkBudget, shrink

UNIT_PREFIX = "fuzz:"
RUNNER_PATH = "repro.qa.harness:run_fuzz_unit"


def unit_name(seed: int) -> str:
    return f"{UNIT_PREFIX}{seed}"


def unit_seed(unit: str) -> int:
    if not unit.startswith(UNIT_PREFIX):
        raise ValueError(f"not a fuzz unit: {unit!r}")
    return int(unit[len(UNIT_PREFIX):])


def _spec_from_args(args: Dict[str, object]) -> FuzzSpec:
    return FuzzSpec(variables=int(args.get("variables", 3)),
                    items=int(args.get("items", 8)),
                    weights=args.get("weights"))


def _checker_from_state(state: dict) -> DifferentialChecker:
    """One checker per worker process, sharing the worker's tables."""
    checker = state["runner_cache"].get("checker")
    if checker is None:
        args = state.get("runner_args", {})
        checker = DifferentialChecker(
            files={}, include_paths=(),
            max_configs=int(args.get("max_configs", 12)),
            parse=bool(args.get("parse", True)),
            tables=state["superc"].tables)
        state["runner_cache"]["checker"] = checker
    return checker


def check_unit(checker: DifferentialChecker, unit: FuzzUnit):
    """Differentially check one generated unit (valid by
    construction, hence ``expect_parseable``)."""
    return checker.check_source(unit.text, unit.filename,
                                seed=unit.seed, expect_parseable=True)


def run_fuzz_unit(state: dict, unit: str) -> dict:
    """Engine runner: one fuzz unit inside a worker process."""
    args = state.get("runner_args", {})
    seed = unit_seed(unit)
    fuzz_unit = generate_fuzz_unit(seed, _spec_from_args(args))
    checker = _checker_from_state(state)
    start = time.perf_counter()
    outcome = check_unit(checker, fuzz_unit)
    seconds = time.perf_counter() - start
    disagreements = [d.to_record() for d in outcome.disagreements]
    if disagreements:
        status = STATUS_DISAGREE
    elif outcome.superc_status == STATUS_DEGRADED:
        # Both pipelines agree, but the config-preserving result is
        # partial (confined errors / shed configurations).
        status = STATUS_DEGRADED
    else:
        status = STATUS_OK
    record = {
        "unit": unit,
        "status": status,
        "cache": "miss",
        "seconds": round(seconds, 6),
        "timing": {"lex": 0.0, "preprocess": 0.0,
                   "parse": round(seconds, 6),
                   "total": round(seconds, 6)},
        "subparsers": {"max": 0, "forks": 0, "merges": 0},
        "preprocessor": {},
        "profile": None,
        "failures": [f"{d['kind']}: {d['detail']}"
                     for d in disagreements[:3]],
        "error": None,
        "qa": {"seed": seed,
               "configs_checked": outcome.configs_checked,
               "disagreements": disagreements,
               # Text rides along only when needed for shrinking.
               "text": fuzz_unit.text if disagreements else None},
    }
    return record


class Counterexample:
    """A shrunk disagreeing input."""

    def __init__(self, seed: int, kind: str, config: Dict[str, str],
                 detail: str, original: str, shrunk: str,
                 predicate_calls: int):
        self.seed = seed
        self.kind = kind
        self.config = config
        self.detail = detail
        self.original = original
        self.shrunk = shrunk
        self.predicate_calls = predicate_calls

    def to_record(self) -> dict:
        return {"seed": self.seed, "kind": self.kind,
                "config": self.config, "detail": self.detail,
                "original_lines": len(self.original.splitlines()),
                "shrunk_lines": len(self.shrunk.splitlines()),
                "shrunk": self.shrunk,
                "predicate_calls": self.predicate_calls}


class FuzzReport:
    """Everything one fuzz run produced."""

    def __init__(self, report: CorpusReport,
                 counterexamples: List[Counterexample]):
        self.report = report
        self.counterexamples = counterexamples

    @property
    def clean(self) -> bool:
        """No counterexamples and no unit that disagreed, crashed,
        errored, or timed out.  Degraded units (error agreement held,
        configurations were confined) do not break cleanliness."""
        bad = (STATUS_DISAGREE, STATUS_ERROR, STATUS_TIMEOUT,
               STATUS_CRASHED)
        return not self.counterexamples and \
            not any(s in self.report.by_status for s in bad)


def _error_fingerprint(detail: str) -> str:
    """Error identity modulo locations and numbers, so a shrink
    candidate must keep failing for the *same* reason rather than
    wandering to any other error of the same kind."""
    detail = re.sub(r"\S+:\d+:\d+:", "<loc>", detail)
    return re.sub(r"\d+", "N", detail)[:120]


def shrink_disagreement(checker: DifferentialChecker, text: str,
                        kind: str, seed: int,
                        budget: Optional[ShrinkBudget] = None,
                        detail: Optional[str] = None) -> tuple:
    """Minimize ``text`` while it still produces a ``kind``
    disagreement.  Returns (shrunk_text, predicate_calls)."""
    expect = kind == "unparseable"
    # Error-carrying kinds must preserve the error's fingerprint;
    # token/AST diffs legitimately change shape while shrinking.
    want = _error_fingerprint(detail) \
        if detail and kind in ("error-agreement", "invariant") else None

    def still_disagrees(candidate: str) -> bool:
        outcome = checker.check_source(candidate, f"shrink_{seed}.c",
                                       seed=seed,
                                       expect_parseable=expect)
        for d in outcome.disagreements:
            if d.kind != kind:
                continue
            if want is None or _error_fingerprint(d.detail) == want:
                return True
        return False

    budget = budget or ShrinkBudget(200)
    result = shrink(text, still_disagrees, budget)
    return result, budget.used


def run_fuzz(units: int = 50, seed: int = 0,
             spec: Optional[FuzzSpec] = None,
             workers: int = 1, timeout_seconds: float = 10.0,
             max_configs: int = 12, parse: bool = True,
             do_shrink: bool = True,
             shrink_budget: int = 200,
             metrics: Optional[MetricsStream] = None,
             tracer=None) -> FuzzReport:
    """Fuzz ``units`` generated units starting at ``seed``.

    ``tracer`` (a :class:`repro.obs.Tracer`) observes the parent-side
    engine: cache-probe/wave spans and scheduling counters.
    """
    spec = spec or FuzzSpec()
    metrics = metrics or MetricsStream()
    runner_args = {"variables": spec.variables, "items": spec.items,
                   "weights": spec.weights, "max_configs": max_configs,
                   "parse": parse}
    job = CorpusJob([unit_name(seed + i) for i in range(units)],
                    files={}, runner=RUNNER_PATH,
                    runner_args=runner_args)
    engine = BatchEngine(EngineConfig(workers=workers,
                                      timeout_seconds=timeout_seconds,
                                      use_result_cache=False))
    report = engine.run(job, metrics, tracer=tracer)

    counterexamples: List[Counterexample] = []
    if do_shrink:
        checker: Optional[DifferentialChecker] = None
        for record in report.records:
            qa = record.get("qa") or {}
            disagreements = qa.get("disagreements") or []
            text = qa.get("text")
            if not disagreements or not text:
                continue
            if checker is None:
                checker = DifferentialChecker(
                    files={}, include_paths=(),
                    max_configs=max_configs, parse=parse)
            first = disagreements[0]
            shrunk, calls = shrink_disagreement(
                checker, text, first["kind"], qa.get("seed", 0),
                ShrinkBudget(shrink_budget),
                detail=first.get("detail"))
            example = Counterexample(
                qa.get("seed", 0), first["kind"],
                first.get("config", {}), first.get("detail", ""),
                text, shrunk, calls)
            counterexamples.append(example)
            metrics.emit({"event": "counterexample",
                          **example.to_record()})
    return FuzzReport(report, counterexamples)
