"""Variability-aware rename refactoring.

The paper motivates configuration-preserving parsing with automated
refactorings (§1, §8): a rename must reach *every* configuration —
occurrences inside disabled conditional branches included — or it
silently breaks other configurations' builds.  This module provides a
small library for planning and applying such renames on original
source text, using the all-configuration AST's tokens (which carry
positions and layout).

Limits: the rename is lexical over the parsed unit — it does not chase
the identifier into other compilation units, and it refuses (by
default) to rename when the new name collides with an existing
identifier in any configuration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.lexer.tokens import Token, TokenKind
from repro.parser.ast import iter_tokens


class RenameConflict(Exception):
    """The new name already occurs in some configuration."""


class Edit:
    """One text replacement at a source position."""

    __slots__ = ("file", "line", "col", "old", "new")

    def __init__(self, file: str, line: int, col: int, old: str,
                 new: str):
        self.file = file
        self.line = line
        self.col = col
        self.old = old
        self.new = new

    def __repr__(self) -> str:
        return (f"Edit({self.file}:{self.line}:{self.col} "
                f"{self.old!r} -> {self.new!r})")


class RenamePlan:
    """All edits needed to rename one identifier everywhere."""

    def __init__(self, old_name: str, new_name: str, edits: List[Edit]):
        self.old_name = old_name
        self.new_name = new_name
        self.edits = edits

    @property
    def files(self) -> List[str]:
        return sorted({edit.file for edit in self.edits})

    def edits_for(self, path: str) -> List[Edit]:
        return [edit for edit in self.edits if edit.file == path]

    def __len__(self) -> int:
        return len(self.edits)


def occurrences(ast: Any, name: str) -> List[Token]:
    """Every token spelling ``name`` across all configurations,
    deduplicated by source position (shared tokens may be parsed in
    several configurations but must be edited once)."""
    seen: set = set()
    out: List[Token] = []
    for token in iter_tokens(ast):
        if token.kind is not TokenKind.IDENTIFIER or \
                token.text != name:
            continue
        key = (token.file, token.line, token.col)
        if key in seen:
            continue
        seen.add(key)
        out.append(token)
    return out


def plan_rename(ast: Any, old_name: str, new_name: str,
                allow_conflicts: bool = False) -> RenamePlan:
    """Plan a rename of every occurrence in every configuration."""
    if not _is_identifier(new_name):
        raise ValueError(f"{new_name!r} is not a valid C identifier")
    if not allow_conflicts:
        clashes = occurrences(ast, new_name)
        if clashes:
            where = clashes[0]
            raise RenameConflict(
                f"{new_name!r} already occurs at "
                f"{where.file}:{where.line}:{where.col}")
    edits = [Edit(token.file, token.line, token.col, old_name,
                  new_name)
             for token in occurrences(ast, old_name)]
    return RenamePlan(old_name, new_name, edits)


def apply_edits(source: str, edits: List[Edit]) -> str:
    """Apply edits (for one file) to its original text.

    Edits are applied right-to-left per line so columns stay valid;
    every edit is position-checked against the text first.
    """
    lines = source.splitlines(keepends=True)
    ordered = sorted(edits, key=lambda e: (e.line, e.col), reverse=True)
    for edit in ordered:
        if edit.line - 1 >= len(lines):
            raise ValueError(f"edit beyond end of file: {edit}")
        line = lines[edit.line - 1]
        start = edit.col - 1
        end = start + len(edit.old)
        if line[start:end] != edit.old:
            raise ValueError(
                f"position drift at {edit.file}:{edit.line}:{edit.col}:"
                f" expected {edit.old!r}, found {line[start:end]!r}")
        lines[edit.line - 1] = line[:start] + edit.new + line[end:]
    return "".join(lines)


def rename_in_files(plan: RenamePlan,
                    files: Dict[str, str]) -> Dict[str, str]:
    """Apply a plan to a mapping of path -> source text; returns the
    changed files only."""
    changed: Dict[str, str] = {}
    for path in plan.files:
        if path not in files:
            continue  # e.g. tokens from <builtin> pseudo-files
        changed[path] = apply_edits(files[path], plan.edits_for(path))
    return changed


def _is_identifier(name: str) -> bool:
    if not name:
        return False
    first = name[0]
    if not (first.isalpha() or first == "_"):
        return False
    return all(ch.isalnum() or ch == "_" for ch in name[1:])
