"""Persistent parse service: warm caches, incremental re-parsing.

Every batch entry point (``superc-parse``, ``superc-batch``) is a
cold process: it re-pays grammar-table loading, include-closure reads,
and macro-table construction per invocation.  This subsystem is the
long-lived alternative — a daemon that parses over warm state with
sub-second repeat latency, built for interactive variability tooling:

* :class:`ServerState` (``state.py``) — warm LALR tables in one
  reusable session, a content-fingerprinted file store, and per-unit
  parse entries keyed ``(source digest, include-closure digest,
  config digest)``, layered over the batch engine's on-disk
  :class:`repro.engine.ResultCache` so daemon and batch runs share one
  result cache;
* :mod:`repro.serve.incremental` — reverse include-graph invalidation
  (edit a header, drop exactly its dependents) and token-level
  fingerprints that short-circuit re-parses after layout-only edits;
* :class:`AdmissionQueue` (``admission.py``) — bounded queueing with
  ``status=shed`` load shedding, per-request deadlines reusing the
  engine's SIGALRM machinery, and graceful drain on shutdown;
* :class:`ParseServer` / :class:`ParseService` (``server.py``) — the
  newline-delimited JSON protocol (``parse`` / ``invalidate`` /
  ``stats`` / ``shutdown``) over Unix-domain or TCP sockets;
* :class:`WorkerPool` (``pool.py``) — a supervised pre-forked worker
  pool: each parse runs in a child process under supervisor-enforced
  deadlines (no SIGALRM), crashed workers restart under seeded
  backoff, and a crash-loop breaker degrades the daemon to inline
  parsing instead of letting it die;
* :class:`ParseJournal` (``journal.py``) — crash-surviving warm-state
  metadata beside the result cache, so a restarted daemon resumes
  disk/token-tier short-circuiting immediately;
* :mod:`repro.serve.protocol` — the transport-agnostic protocol core:
  typed requests (:class:`ParseRequest` …), one validate/serialize
  codec, one status taxonomy, one response envelope — shared by every
  transport so their semantics cannot drift;
* :class:`HttpFrontend` (``http.py``) — the HTTP/1.1 surface
  (``POST /v1/parse``, ``GET /v1/stats``, ``GET /healthz`` …) over the
  same admission queue and dispatchers as the socket listener;
* :func:`connect` / :class:`RemoteSession` (``client.py``) — the
  client library behind the ``superc-serve`` CLI: one session facade
  over :class:`SocketTransport` (``unix:``/``tcp:`` endpoints) and
  :class:`HttpTransport` (``http://`` endpoints); served parses
  satisfy the same structural Result protocol as local ones, and
  transport failures retry under bounded seeded backoff before
  answering ``status="unavailable"``.  (:class:`ServeClient` remains
  as a deprecated alias of the socket transport.)

Typical use::

    from repro.serve import ParseServer, connect

    server = ParseServer(socket_path="/tmp/superc.sock",
                         include_paths=("include",)).start()
    with connect("unix:/tmp/superc.sock") as session:
        result = session.parse("drivers/mousedev.c")  # miss: parses
        result = session.parse("drivers/mousedev.c")  # hit: warm
        session.invalidate("include/major.h")         # drops dependents
        session.shutdown()                            # graceful drain
"""

from repro.serve.admission import AdmissionQueue, Deadline, QueueClosed
from repro.serve.client import (HttpTransport, RemoteSession,
                                ServeClient, ServeError,
                                SocketTransport, Transport, connect,
                                make_transport, parse_endpoint)
from repro.serve.http import HttpFrontend
from repro.serve.incremental import (InvalidationIndex,
                                     file_token_digest,
                                     token_fingerprint)
from repro.serve.journal import ParseJournal
from repro.serve.pool import PoolConfig, Worker, WorkerPool
from repro.serve.protocol import (OPS, PROTOCOL_VERSION, STATUS_SHED,
                                  STATUS_UNAVAILABLE, InvalidateRequest,
                                  ParseRequest, PingRequest,
                                  ProtocolError, Request,
                                  ShutdownRequest, StatsRequest,
                                  decode_request)
from repro.serve.server import ParseServer, ParseService
from repro.serve.state import (TIER_DISK, TIER_MEMORY, TIER_TOKEN,
                               FileStore, ParseEntry, ServerState)

__all__ = [
    "AdmissionQueue", "Deadline", "FileStore", "HttpFrontend",
    "HttpTransport", "InvalidateRequest", "InvalidationIndex", "OPS",
    "PROTOCOL_VERSION", "ParseEntry", "ParseJournal", "ParseRequest",
    "ParseServer", "ParseService", "PingRequest", "PoolConfig",
    "ProtocolError", "QueueClosed", "Request", "RemoteSession",
    "STATUS_SHED", "STATUS_UNAVAILABLE", "ServeClient", "ServeError",
    "ServerState", "ShutdownRequest", "SocketTransport", "StatsRequest",
    "TIER_DISK", "TIER_MEMORY", "TIER_TOKEN", "Transport", "Worker",
    "WorkerPool", "connect", "decode_request", "file_token_digest",
    "make_transport", "parse_endpoint", "token_fingerprint",
]
