"""Tests for the observability layer (``repro.obs``) and the unified
public API (``repro.api``)."""

import json
import warnings

import pytest

import repro
from repro.api import Config, Session, is_result, result_summary
from repro.corpus import KernelSpec, generate_kernel
from repro.engine import (BatchEngine, CorpusJob, EngineConfig,
                          UnitResult)
from repro.eval.subparsers import measure_level
from repro.obs import (NULL_TRACER, NullTracer, Profile, Span,
                       TraceEvent, Tracer, format_flamegraph,
                       records_to_chrome_trace, to_chrome_trace,
                       validate_chrome_trace, write_chrome_trace)
from repro.obs.profile import merge_profile_summaries
from repro.superc import SuperC, parse_c
from repro.tools import parse_cli

CONDITIONAL_SOURCE = """\
#define BASE 32
#ifdef CONFIG_A
int a = BASE;
#else
int a = 1;
#endif
int b;
"""

FIG8_SPEC = KernelSpec(seed=7, subsystems=1, drivers_per_subsystem=2,
                       functions_per_driver=2, figure6_entries=3,
                       extra_headers_per_subsystem=1)


def fake_clock():
    """Deterministic monotonic clock: 1.0, 2.0, 3.0, ..."""
    state = {"t": 0.0}

    def tick():
        state["t"] += 1.0
        return state["t"]

    return tick


class TestTracer:
    def test_span_tree_is_deterministic(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("unit", file="a.c"):
            with tracer.span("preprocess"):
                with tracer.span("lex"):
                    pass
            with tracer.span("parse"):
                pass
        assert tracer.span_trees() == (
            ("unit", (("preprocess", (("lex", ()),)), ("parse", ()))),)
        root = tracer.roots[0]
        assert root.seconds > 0
        assert root.args == {"file": "a.c"}

    def test_spans_tolerate_exceptions(self):
        tracer = Tracer(clock=fake_clock())
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.span_trees() == (("outer", (("inner", ()),)),)
        assert not tracer._stack

    def test_counters_events_histograms(self):
        tracer = Tracer(clock=fake_clock())
        tracer.count("fmlr.forks")
        tracer.count("fmlr.forks", 2)
        tracer.event("fork", n=2)
        tracer.record("fmlr.subparsers", 3)
        tracer.record("fmlr.subparsers", 5)
        assert tracer.counters == {"fmlr.forks": 3}
        assert [e.name for e in tracer.events] == ["fork"]
        assert tracer.histograms == {"fmlr.subparsers": [3, 5]}

    def test_mark_since_windows(self):
        tracer = Tracer(clock=fake_clock())
        tracer.count("fmlr.forks", 5)
        tracer.record("hoist.expansion", 2)
        mark = tracer.mark()
        tracer.count("fmlr.forks", 2)
        tracer.record("hoist.expansion", 7)
        tracer.event("merge")
        window = tracer.since(mark)
        assert window["counters"] == {"fmlr.forks": 2}
        assert window["histograms"] == {"hoist.expansion": [7]}
        assert [e.name for e in window["events"]] == ["merge"]

    def test_reset_clears_everything(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("unit"):
            tracer.count("x")
            tracer.record("h", 1)
            tracer.event("e")
        tracer.reset()
        assert not tracer.roots and not tracer.events
        assert not tracer.counters and not tracer.histograms


class TestNullTracer:
    def test_singleton_is_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.roots == ()
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.counters == {}
        assert NULL_TRACER.histograms == {}

    def test_hooks_are_no_ops(self):
        with NULL_TRACER.span("anything", arg=1):
            NULL_TRACER.count("c", 5)
            NULL_TRACER.record("h", 1.0)
            NULL_TRACER.event("e", x=2)
        NULL_TRACER.reset()
        assert NULL_TRACER.counters == {}
        assert NULL_TRACER.mark() == ()

    def test_untraced_parse_allocates_no_trace_objects(self, monkeypatch):
        """The allocation-free guarantee: an un-traced parse must never
        construct a Span or TraceEvent."""

        def explode(self, *args, **kwargs):
            raise AssertionError(
                "trace object allocated on the un-traced path")

        monkeypatch.setattr(Span, "__init__", explode)
        monkeypatch.setattr(TraceEvent, "__init__", explode)
        result = parse_c(CONDITIONAL_SOURCE)
        assert result.ok
        assert result.profile is None


class TestProfile:
    def test_parse_attaches_profile(self):
        tracer = Tracer()
        result = repro.parse(CONDITIONAL_SOURCE, tracer=tracer)
        assert result.ok
        profile = result.profile
        assert profile is not None
        assert set(profile.phases) == {"lex", "preprocess", "parse",
                                       "total"}
        assert profile.phases["total"] >= profile.phases["parse"]
        # Pipeline counters from all three layers are merged in.
        assert profile.counters["fmlr.iterations"] > 0
        assert profile.counters["fmlr.action_lookups"] > 0
        assert profile.counters["bdd.nodes"] >= 1
        assert profile.counters["cpp.macro_definitions"] > 0
        assert "fmlr.subparsers" in profile.histograms
        text = profile.format_summary()
        assert "parse" in text and "fmlr:" in text

    def test_summary_dict_round_trips_as_json(self):
        result = repro.parse(CONDITIONAL_SOURCE, tracer=Tracer())
        summary = result.profile.summary_dict()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["spans"] >= 3  # unit, preprocess, parse at least

    def test_per_unit_windows_on_shared_tracer(self):
        tracer = Tracer()
        session = Session(tracer=tracer)
        first = session.parse(CONDITIONAL_SOURCE)
        second = session.parse("int only_one;\n")
        # Windows isolate units: the second profile must not include
        # the first unit's iterations.
        assert second.profile.counters["fmlr.iterations"] < \
            first.profile.counters["fmlr.iterations"] + \
            second.profile.counters["fmlr.iterations"]
        assert first.profile.counters["cpp.conditionals"] == 1
        assert second.profile.counters.get("cpp.conditionals", 0) == 0

    def test_merge_profile_summaries(self):
        tracer = Tracer()
        summaries = [repro.parse(CONDITIONAL_SOURCE,
                                 tracer=tracer).profile.summary_dict()
                     for _ in range(3)]
        merged = merge_profile_summaries(summaries)
        assert merged["units"] == 3
        single = summaries[0]["counters"]["fmlr.iterations"]
        assert merged["counters"]["fmlr.iterations"] == 3 * single
        hist = merged["histograms"]["fmlr.subparsers"]
        assert hist["count"] == \
            3 * summaries[0]["histograms"]["fmlr.subparsers"]["count"]


class TestChromeTrace:
    def test_traced_parse_exports_valid_chrome_trace(self, tmp_path):
        tracer = Tracer()
        repro.parse(CONDITIONAL_SOURCE, tracer=tracer)
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"unit", "preprocess", "parse"} <= names
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in phases and "C" in phases
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), trace)
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_fork_merge_events_in_trace(self):
        tracer = Tracer()
        repro.parse(CONDITIONAL_SOURCE, tracer=tracer)
        counts = {}
        for event in tracer.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        assert counts.get("fork", 0) >= 1
        assert counts.get("merge", 0) >= 1
        # Instant events survive export.
        trace = to_chrome_trace(tracer)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(tracer.events)

    def test_records_to_chrome_trace(self):
        corpus = generate_kernel(FIG8_SPEC)
        job = CorpusJob.from_corpus(corpus)
        report = BatchEngine(EngineConfig(
            use_result_cache=False)).run(job)
        trace = records_to_chrome_trace(report.records)
        assert validate_chrome_trace(trace) == []
        lanes = {e["tid"] for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        assert len(lanes) == len(report.records)

    def test_validator_rejects_malformed_traces(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                                "pid": 1, "tid": 1}]}  # X without dur
        assert any("dur" in p for p in validate_chrome_trace(bad))
        unbalanced = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 1}]}
        assert any("unclosed" in p
                   for p in validate_chrome_trace(unbalanced))

    def test_flamegraph_text(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("unit"):
            with tracer.span("parse"):
                pass
        text = format_flamegraph(tracer)
        assert "unit" in text and "parse" in text and "#" in text


class TestSubparserAgreement:
    def test_fmlr_counters_agree_with_eval_subparsers(self):
        """The Figure 8 benchmark is reimplemented over tracer hooks;
        an independently traced run over the same corpus must observe
        the identical fork/merge totals and iteration counts."""
        corpus = generate_kernel(FIG8_SPEC)
        dist = measure_level(corpus, "Shared, Lazy, & Early")
        assert dist.forks > 0 and dist.merges > 0
        assert dist.counts

        tracer = Tracer()
        superc = SuperC(corpus.filesystem(),
                        include_paths=corpus.include_paths,
                        tracer=tracer)
        for unit in corpus.units:
            superc.parse_file(unit)
        assert tracer.counters["fmlr.forks"] == dist.forks
        assert tracer.counters["fmlr.merges"] == dist.merges
        assert len(tracer.histograms["fmlr.subparsers"]) == \
            len(dist.counts)
        assert max(tracer.histograms["fmlr.subparsers"]) == dist.maximum


class TestEngineProfiling:
    def test_profiled_run_attaches_profiles_and_rollup(self, tmp_path):
        corpus = generate_kernel(FIG8_SPEC)
        job = CorpusJob.from_corpus(corpus)
        config = EngineConfig(cache_dir=str(tmp_path / "cache"),
                              use_result_cache=False, profile=True)
        tracer = Tracer()
        report = BatchEngine(config).run(job, tracer=tracer)
        assert report.units == len(corpus.units)
        for record in report.records:
            profile = record["profile"]
            assert profile is not None
            assert profile["counters"]["fmlr.iterations"] > 0
            assert json.loads(json.dumps(profile)) == profile
        rollup = report.profile_rollup()
        assert rollup["units"] == report.units
        assert rollup["counters"]["fmlr.forks"] == \
            sum(r["profile"]["counters"].get("fmlr.forks", 0)
                for r in report.records)
        assert "profile" in report.summary()
        # Parent-side spans: one cache-probe (skipped: cache off) and
        # at least one wave.
        names = [root.name for root in tracer.roots]
        assert "wave" in names

    def test_unprofiled_run_has_no_profiles(self, tmp_path):
        corpus = generate_kernel(FIG8_SPEC)
        job = CorpusJob.from_corpus(corpus)
        report = BatchEngine(EngineConfig(
            cache_dir=str(tmp_path / "cache"),
            use_result_cache=False)).run(job)
        assert all(r["profile"] is None for r in report.records)
        assert report.profile_rollup() is None
        assert "profile" not in report.summary()


class TestUnifiedApi:
    def test_parse_and_session(self):
        result = repro.parse(CONDITIONAL_SOURCE)
        assert result.ok and result.status == "ok"
        session = Session(files={"a.c": "int x;\n"})
        assert session.parse_file("a.c").ok
        assert session.parse("int y;\n").ok

    def test_config_resolves_options(self):
        config = Config(kill_switch=7, hard_kill_switch=True)
        options = config.resolved_options()
        assert options.kill_switch == 7
        assert options.hard_kill_switch is True
        # Overrides copy instead of mutating a shared options object.
        base = repro.FMLROptions()
        config = Config(options=base, kill_switch=9)
        assert config.resolved_options().kill_switch == 9
        assert base.kill_switch != 9

    def test_config_replace_and_build(self):
        config = Config(files={"a.c": "int x;\n"})
        richer = config.replace(include_paths=("include",))
        assert richer.include_paths == ("include",)
        assert config.include_paths == ()
        superc = richer.build()
        assert superc.include_paths == ["include"]
        assert superc.config is richer

    def test_superc_accepts_config_object(self):
        superc = SuperC(config=Config(files={"a.c": "int x;\n"}))
        assert superc.parse_file("a.c").ok

    def test_result_protocol_conformance(self, tmp_path):
        assert is_result(repro.parse("int x;\n"))
        corpus = generate_kernel(FIG8_SPEC)
        report = BatchEngine(EngineConfig(
            cache_dir=str(tmp_path / "cache"),
            use_result_cache=False)).run(
                CorpusJob.from_corpus(corpus))
        unit_result = report.unit_results()[0]
        assert isinstance(unit_result, UnitResult)
        assert is_result(unit_result)
        assert unit_result.timing.total >= unit_result.timing.parse
        from repro.baselines.gcc_like import GccLike
        from repro.cpp import DictFileSystem
        gcc = GccLike(DictFileSystem({}))
        assert is_result(gcc.compile_source("int x;\n"))

    def test_result_summary_uniform(self):
        summary = result_summary(repro.parse("int x;\n"))
        assert summary["status"] == "ok"
        assert set(summary["timing"]) == {"lex", "preprocess", "parse",
                                          "total"}
        assert summary["profile"] is None

    def test_deprecated_timing_shims_warn(self):
        from repro.baselines.gcc_like import GccLike
        from repro.cpp import DictFileSystem
        result = GccLike(DictFileSystem({})).compile_source("int x;\n")
        with pytest.warns(DeprecationWarning, match="timing.parse"):
            assert result.parse_seconds == result.timing.parse
        with pytest.warns(DeprecationWarning, match="timing.total"):
            assert result.total_seconds == result.timing.total
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _ = result.timing.total  # the new name is warning-free


class TestCliIntegration:
    @pytest.fixture()
    def source_tree(self, tmp_path):
        (tmp_path / "include").mkdir()
        (tmp_path / "include" / "major.h").write_text(
            "#define MISC_MAJOR 10\n")
        (tmp_path / "main.c").write_text(
            '#include "major.h"\n'
            "#ifdef CONFIG_A\n"
            "int a = MISC_MAJOR;\n"
            "#endif\n"
            "int b;\n")
        return tmp_path

    def test_trace_flag_writes_valid_trace(self, source_tree, capsys):
        trace_path = source_tree / "trace.json"
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--trace", str(trace_path)])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []

    def test_profile_flag_prints_summary(self, source_tree, capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile:" in out
        assert "fmlr:" in out and "bdd:" in out

    def test_json_includes_profile_when_tracing(self, source_tree,
                                                capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--profile", "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["timing"]["total"] > 0
        assert record["profile"] is not None
        assert record["profile"]["counters"]["fmlr.iterations"] > 0

    def test_json_profile_null_without_tracing(self, source_tree,
                                               capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["profile"] is None
