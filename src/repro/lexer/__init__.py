"""C lexer with layout-preserving tokens."""

from repro.lexer.lexer import Lexer, LexerError, lex, lex_logical_lines
from repro.lexer.tokens import Token, TokenKind, render_tokens

__all__ = [
    "Lexer",
    "LexerError",
    "Token",
    "TokenKind",
    "lex",
    "lex_logical_lines",
    "render_tokens",
]
