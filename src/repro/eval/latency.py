"""Latency measurements: Figures 9 and 10.

Figure 9: the cumulative latency distribution per compilation unit for
SuperC vs TypeChef, plus each tool's maximum and the kernel total.
The TypeChef proxy runs the identical pipeline over the CNF+DPLL
formula algebra (the paper blames TypeChef's knee on exactly that
conversion).

Figure 10: SuperC's latency breakdown — lexing, preprocessing, and
parsing each scale roughly linearly with compilation-unit size — plus
the gcc single-configuration percentiles as the performance floor.
"""

from __future__ import annotations

import re
import time
from typing import Dict, List, Optional, Tuple

from repro.baselines import FormulaManager, GccLike, allyesconfig
from repro.cgrammar import c_tables, classify, make_context_factory
from repro.corpus import KernelCorpus
from repro.cpp import Preprocessor
from repro.parser.fmlr import FMLRParser
from repro.superc import SuperC


class LatencySample:
    """One compilation unit's timings."""

    def __init__(self, unit: str, seconds: float, size_bytes: int,
                 lex: float = 0.0, preprocess: float = 0.0,
                 parse: float = 0.0):
        self.unit = unit
        self.seconds = seconds
        self.size_bytes = size_bytes
        self.lex = lex
        self.preprocess = preprocess
        self.parse = parse


class LatencyDistribution:
    """Figure 9 series for one tool."""

    def __init__(self, tool: str, samples: List[LatencySample]):
        self.tool = tool
        self.samples = samples

    @property
    def total(self) -> float:
        return sum(sample.seconds for sample in self.samples)

    @property
    def maximum(self) -> float:
        return max((s.seconds for s in self.samples), default=0.0)

    def percentile(self, p: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(s.seconds for s in self.samples)
        index = min(len(ordered) - 1,
                    max(0, int(round(p * (len(ordered) - 1)))))
        return ordered[index]

    def cdf(self) -> List[Tuple[float, float]]:
        ordered = sorted(s.seconds for s in self.samples)
        total = len(ordered)
        return [(seconds, (i + 1) / total)
                for i, seconds in enumerate(ordered)]


def unit_size_bytes(corpus: KernelCorpus, unit: str) -> int:
    """Compilation-unit size: the C file plus the closure of its
    includes (Figure 10's x axis)."""
    include_re = re.compile(r'^\s*#\s*include\s+[<"]([^>"]+)[>"]',
                            re.MULTILINE)
    seen = set()
    stack = [unit]
    total = 0
    while stack:
        path = stack.pop()
        if path in seen or path not in corpus.files:
            continue
        seen.add(path)
        text = corpus.files[path]
        total += len(text)
        for name in include_re.findall(text):
            stack.append("include/" + name)
    return total


def measure_superc(corpus: KernelCorpus) -> LatencyDistribution:
    """Figure 9/10: SuperC per-unit latency with breakdown."""
    superc = SuperC(corpus.filesystem(),
                    include_paths=corpus.include_paths)
    samples = []
    for unit in corpus.units:
        result = superc.parse_file(unit)
        timing = result.timing
        samples.append(LatencySample(
            unit, timing.total, unit_size_bytes(corpus, unit),
            lex=timing.lex, preprocess=timing.preprocess,
            parse=timing.parse))
    return LatencyDistribution("SuperC", samples)


def measure_typechef_proxy(corpus: KernelCorpus) -> LatencyDistribution:
    """Figure 9: the same pipeline over CNF+DPLL presence conditions."""
    fs = corpus.filesystem()
    tables = c_tables()
    samples = []
    for unit in corpus.units:
        manager = FormulaManager()
        preprocessor = Preprocessor(
            fs, include_paths=corpus.include_paths, manager=manager)
        text = fs.read(unit)
        start = time.perf_counter()
        compilation_unit = preprocessor.preprocess(text, unit)
        parser = FMLRParser(tables, classify,
                            make_context_factory(manager))
        parser.parse(compilation_unit.tree, manager,
                     compilation_unit.feasible_condition)
        seconds = time.perf_counter() - start
        samples.append(LatencySample(unit, seconds,
                                     unit_size_bytes(corpus, unit)))
    return LatencyDistribution("TypeChef-proxy", samples)


def measure_gcc_like(corpus: KernelCorpus,
                     config: Optional[Dict[str, str]] = None) \
        -> LatencyDistribution:
    """Figure 10's baseline: single-configuration latency under an
    allyesconfig-style configuration."""
    chosen = config if config is not None else \
        allyesconfig(_compatible_allyes(corpus))
    gcc = GccLike(corpus.filesystem(),
                  include_paths=corpus.include_paths, config=chosen)
    samples = []
    for unit in corpus.units:
        start = time.perf_counter()
        result = gcc.compile_file(unit)
        seconds = time.perf_counter() - start
        samples.append(LatencySample(
            unit, seconds, unit_size_bytes(corpus, unit),
            preprocess=result.timing.preprocess,
            parse=result.timing.parse))
    return LatencyDistribution("gcc-like", samples)


def _compatible_allyes(corpus: KernelCorpus) -> List[str]:
    """allyesconfig minus #error-triggering combinations: the corpus
    makes FEATURE pairs mutually exclusive per driver, so drop the
    second member of each documented pair (like real allyesconfig,
    which cannot enable everything either — it covers <80% of blocks)."""
    banned = set()
    error_re = re.compile(
        r"#if defined\((\w+)\) && defined\((\w+)\)\s*\n#error")
    for text in corpus.files.values():
        for _first, second in error_re.findall(text):
            banned.add(second)
    return [name for name in corpus.config_variables
            if name not in banned]
