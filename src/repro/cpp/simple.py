"""A plain single-configuration C preprocessor.

This is the differential oracle: for any total configuration, the
configuration-preserving preprocessor's output *projected* onto that
configuration must equal this preprocessor's output token-for-token.
It mirrors the paper's validation of SuperC against ``gcc -E`` under
``allyesconfig`` (§6.3).

It is implemented independently of the configuration-preserving
machinery (no BDDs, no hoisting, no conditional macro table) so that a
bug in the shared code cannot hide in both sides of the comparison.
Only the lexer, the expression parser, and the include resolver are
shared — they are configuration-agnostic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.cpp.errors import PreprocessorError
from repro.cpp.expression import evaluate_int, parse_expression
from repro.cpp.includes import FileSystem, IncludeResolver
from repro.lexer import Lexer, lex_logical_lines
from repro.lexer.tokens import Token, TokenKind


class SimpleMacro:
    """One live definition in the single-configuration table."""

    __slots__ = ("name", "params", "variadic", "body", "va_name")

    def __init__(self, name: str, body: Sequence[Token],
                 params: Optional[Sequence[str]] = None,
                 variadic: bool = False, va_name: Optional[str] = None):
        self.name = name
        self.body = list(body)
        self.params = list(params) if params is not None else None
        self.variadic = variadic
        self.va_name = va_name

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


class SimplePreprocessor:
    """Preprocesses one configuration (a concrete set of -D defines)."""

    def __init__(self, fs: Optional[FileSystem] = None,
                 include_paths: Sequence[str] = (),
                 defines: Optional[Dict[str, str]] = None,
                 config: Optional[Dict[str, str]] = None,
                 builtins: Optional[Dict[str, str]] = None):
        from repro.cpp.preprocessor import DEFAULT_BUILTINS
        self.fs = fs
        self.resolver = IncludeResolver(fs, include_paths) if fs else None
        # Versioned events per name: (version, SimpleMacro or None).
        self._events: Dict[str, List[Tuple[int, Optional[SimpleMacro]]]] = {}
        self._version = 0
        builtin_map = DEFAULT_BUILTINS if builtins is None else builtins
        for name, body in builtin_map.items():
            self._define_text(name, body)
        for name, body in (defines or {}).items():
            self._define_text(name, body)
        # Configuration variables: *free* macros in SuperC's model.
        # They answer defined()/#if with the given values but are never
        # expanded in program text (the paper's config macros come from
        # autoconf.h inclusion, not -D command lines; a free macro's
        # occurrence stays an identifier in every configuration).
        self._config = dict(config or {})
        self._collected: List[Token] = []
        self._skip_stack: List[Tuple[bool, bool, bool]] = []
        self._file_stack: List[str] = []

    # -- public --------------------------------------------------------------

    def preprocess(self, text: str,
                   filename: str = "<input>") -> List[Token]:
        """Preprocess to the flat token list of this configuration."""
        self._process_file(filename, text)
        if self._skip_stack:
            raise PreprocessorError("unterminated conditional")
        return self._expand(self._collected)

    def preprocess_file(self, path: str) -> List[Token]:
        text = self.fs.read(path)
        if text is None:
            raise PreprocessorError(f"cannot read {path!r}")
        return self.preprocess(text, path)

    # -- table ----------------------------------------------------------------

    def _define_text(self, name: str, body_text: str) -> None:
        body = [t for t in Lexer(body_text, f"<define:{name}>").tokens()
                if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
        self._version += 1
        self._events.setdefault(name, []).append(
            (self._version, SimpleMacro(name, body)))

    def _lookup(self, name: str,
                version: Optional[int] = None) -> Optional[SimpleMacro]:
        events = self._events.get(name)
        if not events:
            return None
        if version is None:
            version = self._version
        for event_version, macro in reversed(events):
            if event_version <= version:
                return macro
        return None

    def is_defined(self, name: str) -> bool:
        events = self._events.get(name)
        if events:
            # Source-level defines/undefs shadow the configuration.
            return self._lookup(name) is not None
        return name in self._config

    def config_value(self, name: str) -> int:
        """The #if value of a surviving identifier: its configuration
        value when set, else 0 (plain C semantics)."""
        body = self._config.get(name, "").strip()
        if not body:
            return 0
        from repro.cpp.expression import ExprError, parse_int
        try:
            return parse_int(body)
        except ExprError:
            return 0

    # -- processing ---------------------------------------------------------------

    def _active(self) -> bool:
        return all(active for active, _, _ in self._skip_stack)

    def _process_file(self, filename: str, text: str) -> None:
        if len(self._file_stack) > 200:
            raise PreprocessorError(f"include depth exceeded at {filename}")
        self._file_stack.append(filename)
        entry_depth = len(self._skip_stack)
        for line in lex_logical_lines(text, filename):
            if not line:
                continue
            if line[0].kind is TokenKind.HASH:
                self._directive(line, filename)
            elif self._active():
                for token in line:
                    token.version = self._version
                    self._collected.append(token)
        if len(self._skip_stack) != entry_depth:
            raise PreprocessorError(
                f"conditional opened in {filename} is not closed there")
        self._file_stack.pop()

    def _directive(self, line: List[Token], filename: str) -> None:
        if len(line) < 2:
            return
        keyword = line[1].text
        rest = line[2:]
        # Conditional structure is always tracked, even when skipping.
        if keyword == "if":
            value = self._eval(rest) if self._active() else False
            self._skip_stack.append((bool(value), bool(value), False))
            return
        if keyword in ("ifdef", "ifndef"):
            # Like #if/#elif nesting, the name is validated even in
            # skipped groups (gcc: "no macro name given in #ifdef").
            if not rest or rest[0].kind is not TokenKind.IDENTIFIER:
                raise PreprocessorError(
                    "#ifdef/#ifndef requires a name", line[1])
            defined = self.is_defined(rest[0].text)
            value = self._active() and \
                (defined if keyword == "ifdef" else not defined)
            self._skip_stack.append((bool(value), bool(value), False))
            return
        if keyword == "elif":
            if not self._skip_stack:
                raise PreprocessorError("#elif without #if")
            active, taken, seen_else = self._skip_stack.pop()
            if seen_else:
                raise PreprocessorError("#elif after #else")
            if taken or not self._active():
                self._skip_stack.append((False, taken, False))
            else:
                value = bool(self._eval(rest))
                self._skip_stack.append((value, value, False))
            return
        if keyword == "else":
            if not self._skip_stack:
                raise PreprocessorError("#else without #if")
            active, taken, seen_else = self._skip_stack.pop()
            if seen_else:
                raise PreprocessorError("duplicate #else")
            value = not taken and self._active()
            self._skip_stack.append((value, taken or value, True))
            return
        if keyword == "endif":
            if not self._skip_stack:
                raise PreprocessorError("#endif without #if")
            self._skip_stack.pop()
            return
        if not self._active():
            return
        if keyword == "define":
            self._do_define(rest)
        elif keyword == "undef":
            if not rest or rest[0].kind is not TokenKind.IDENTIFIER:
                raise PreprocessorError("#undef requires a name")
            self._version += 1
            self._events.setdefault(rest[0].text, []).append(
                (self._version, None))
        elif keyword == "include":
            self._do_include(line[1], rest, filename)
        elif keyword == "error":
            message = " ".join(t.text for t in rest)
            raise PreprocessorError(f"#error {message}", line[0])
        # warning/pragma/line are ignored in the oracle.

    def _do_define(self, rest: List[Token]) -> None:
        if not rest or rest[0].kind is not TokenKind.IDENTIFIER:
            raise PreprocessorError("#define requires a name")
        name = rest[0].text
        if len(rest) > 1 and rest[1].is_punctuator("(") and \
                not rest[1].has_space_before:
            params: List[str] = []
            variadic = False
            va_name: Optional[str] = None
            index = 2
            while index < len(rest) and not rest[index].is_punctuator(")"):
                token = rest[index]
                if token.is_punctuator("..."):
                    variadic = True
                elif token.kind is TokenKind.IDENTIFIER:
                    if index + 1 < len(rest) and \
                            rest[index + 1].is_punctuator("..."):
                        variadic = True
                        va_name = token.text
                        index += 1
                    else:
                        params.append(token.text)
                index += 1
            macro = SimpleMacro(name, rest[index + 1:], params, variadic,
                                va_name=va_name)
        else:
            macro = SimpleMacro(name, rest[1:])
        self._version += 1
        self._events.setdefault(name, []).append((self._version, macro))

    def _do_include(self, origin: Token, rest: List[Token],
                    filename: str) -> None:
        if self.resolver is None:
            raise PreprocessorError("no file system for #include", origin)
        name, quoted = self._header_name(rest, origin)
        path = self.resolver.resolve(name, quoted, filename)
        if path is None:
            raise PreprocessorError(f"cannot find include file {name!r}",
                                    origin)
        self._process_file(path, self.fs.read(path))

    def _header_name(self, rest: List[Token],
                     origin: Token) -> Tuple[str, bool]:
        if rest and rest[0].kind is TokenKind.STRING and len(rest) == 1:
            return rest[0].text[1:-1], True
        if rest and rest[0].is_punctuator("<"):
            parts = []
            for token in rest[1:]:
                if token.is_punctuator(">"):
                    return "".join(parts), False
                parts.append(token.text)
        # Computed include: expand then retry.
        for token in rest:
            token.version = self._version
        expanded = self._expand(list(rest), protect_defined=False)
        if expanded and (expanded[0].kind is TokenKind.STRING
                         or expanded[0].is_punctuator("<")):
            return self._header_name(expanded, origin)
        raise PreprocessorError("malformed #include", origin)

    # -- expression evaluation ------------------------------------------------------

    def _eval(self, tokens: List[Token]) -> int:
        for token in tokens:
            token.version = self._version
        expanded = self._expand(list(tokens), protect_defined=True)
        expr = parse_expression(expanded)
        return evaluate_int(expr, self.is_defined, self.config_value)

    # -- expansion -------------------------------------------------------------------

    def _expand(self, tokens: List[Token],
                protect_defined: bool = False) -> List[Token]:
        work: Deque[Token] = deque(tokens)
        out: List[Token] = []
        while work:
            token = work.popleft()
            if token.kind is not TokenKind.IDENTIFIER:
                out.append(token)
                continue
            if protect_defined and token.text == "defined":
                out.append(token)
                self._pass_operand(work, out)
                continue
            if token.text in token.no_expand:
                out.append(token)
                continue
            macro = self._lookup(token.text, token.version)
            if macro is None:
                out.append(token)
                continue
            if not macro.is_function_like:
                work.extendleft(reversed(self._subst_object(macro, token)))
                continue
            consumed = self._scan_invocation(work)
            if consumed is None:
                out.append(token)
                continue
            flat = [work.popleft() for _ in range(consumed)]
            args = self._parse_args(macro, token, flat)
            body = self._subst_function(macro, token, args)
            work.extendleft(reversed(body))
        return out

    @staticmethod
    def _pass_operand(work: Deque[Token], out: List[Token]) -> None:
        if work and work[0].is_punctuator("("):
            out.append(work.popleft())
            if work:
                out.append(work.popleft())
            if work and work[0].is_punctuator(")"):
                out.append(work.popleft())
        elif work and work[0].kind is TokenKind.IDENTIFIER:
            out.append(work.popleft())

    @staticmethod
    def _scan_invocation(work: Deque[Token]) -> Optional[int]:
        if not work or not work[0].is_punctuator("("):
            return None
        depth = 0
        for index, token in enumerate(work):
            if token.is_punctuator("("):
                depth += 1
            elif token.is_punctuator(")"):
                depth -= 1
                if depth == 0:
                    return index + 1
        return None

    def _parse_args(self, macro: SimpleMacro, head: Token,
                    flat: List[Token]) -> List[List[Token]]:
        args: List[List[Token]] = []
        current: List[Token] = []
        depth = 0
        for token in flat:
            if token.is_punctuator("("):
                depth += 1
                if depth == 1:
                    continue
            elif token.is_punctuator(")"):
                depth -= 1
                if depth == 0:
                    break
            elif token.is_punctuator(",") and depth == 1:
                args.append(current)
                current = []
                continue
            current.append(token)
        args.append(current)
        params = macro.params or []
        if len(args) == 1 and not args[0] and not params and \
                not macro.variadic:
            args = []
        if macro.variadic:
            if len(args) < len(params):
                args = args + [[] for _ in range(len(params) - len(args))]
        elif len(args) != len(params):
            if len(params) == 0 and len(args) == 1 and not args[0]:
                args = []
            else:
                raise PreprocessorError(
                    f"macro {macro.name!r} expects {len(params)} "
                    f"argument(s), got {len(args)}", head)
        return args

    def _subst_object(self, macro: SimpleMacro,
                      head: Token) -> List[Token]:
        hide = head.no_expand | {macro.name}
        body = []
        for index, token in enumerate(macro.body):
            clone = token.copy()
            clone.no_expand = clone.no_expand | hide
            clone.version = head.version
            if index == 0:
                clone.layout = head.layout
            body.append(clone)
        return self._resolve_pastes(macro, body, {}, head, hide)

    def _subst_function(self, macro: SimpleMacro, head: Token,
                        args: List[List[Token]]) -> List[Token]:
        params = macro.params or []
        raw = {name: args[i] for i, name in enumerate(params)}
        if macro.variadic:
            va: List[Token] = []
            for index in range(len(params), len(args)):
                if index > len(params):
                    va.append(Token(TokenKind.PUNCTUATOR, ",", head.file,
                                    head.line, head.col))
                va.extend(args[index])
            raw[macro.va_name or "__VA_ARGS__"] = va
        hide = head.no_expand | {macro.name}
        body = []
        for token in macro.body:
            clone = token.copy()
            clone.version = head.version
            if token.kind is not TokenKind.IDENTIFIER or \
                    token.text not in raw:
                clone.no_expand = clone.no_expand | hide
            body.append(clone)
        return self._resolve_pastes(macro, body, raw, head, hide)

    def _resolve_pastes(self, macro: SimpleMacro, body: List[Token],
                        raw: Dict[str, List[Token]], head: Token,
                        hide: frozenset) -> List[Token]:
        va_param = (macro.va_name or "__VA_ARGS__") if macro.variadic \
            else None
        fragments: List[List[Token]] = []
        index = 0
        while index < len(body):
            token = body[index]
            nxt = body[index + 1] if index + 1 < len(body) else None
            # GNU comma deletion: `, ## __VA_ARGS__` drops the comma
            # when the variadic argument is empty and pastes nothing
            # (tokens are placed verbatim) when it is not.
            if va_param is not None and token.is_punctuator(",") and \
                    nxt is not None and nxt.kind is TokenKind.HASHHASH \
                    and index + 2 < len(body) \
                    and body[index + 2].kind is TokenKind.IDENTIFIER \
                    and body[index + 2].text == va_param \
                    and va_param in raw:
                va_tokens = raw[va_param]
                if va_tokens:
                    fragments.append([token])
                    clones = []
                    for arg_token in va_tokens:
                        clone = arg_token.copy()
                        clone.version = head.version
                        clones.append(clone)
                    fragments.append(clones)
                index += 3
                continue
            if token.kind is TokenKind.HASH and nxt is not None and \
                    nxt.kind is TokenKind.IDENTIFIER and nxt.text in raw:
                fragments.append([_stringify(raw[nxt.text], head)])
                index += 2
                continue
            if token.kind is TokenKind.HASHHASH:
                fragments.append([token])
                index += 1
                continue
            if token.kind is TokenKind.IDENTIFIER and token.text in raw:
                prev_hash = index > 0 and \
                    body[index - 1].kind is TokenKind.HASHHASH
                next_hash = nxt is not None and \
                    nxt.kind is TokenKind.HASHHASH
                if prev_hash or next_hash:
                    clones = []
                    for arg_token in raw[token.text]:
                        clone = arg_token.copy()
                        clone.version = head.version
                        clones.append(clone)
                    fragments.append(clones)
                else:
                    fragments.append(self._expand(
                        [t.copy() for t in raw[token.text]]))
                index += 1
                continue
            fragments.append([token])
            index += 1
        result: List[Token] = []
        i = 0
        while i < len(fragments):
            fragment = fragments[i]
            if (len(fragment) == 1
                    and fragment[0].kind is TokenKind.HASHHASH
                    and result and i + 1 < len(fragments)):
                right_fragment = list(fragments[i + 1])
                left = result.pop() if result else None
                right = right_fragment.pop(0) if right_fragment else None
                pasted = self._paste(left, right, head, hide)
                if pasted is not None:
                    result.append(pasted)
                result.extend(right_fragment)
                i += 2
                continue
            result.extend(fragment)
            i += 1
        return result

    @staticmethod
    def _paste(left: Optional[Token], right: Optional[Token],
               head: Token, hide: frozenset) -> Optional[Token]:
        if left is None or left.text == "":
            return right
        if right is None or right.text == "":
            return left
        text = left.text + right.text
        lexed = [t for t in Lexer(text, head.file).tokens()
                 if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
        if len(lexed) != 1:
            raise PreprocessorError(
                f"pasting {left.text!r} and {right.text!r} does not form "
                "a valid token", head)
        token = lexed[0]
        token.no_expand = left.no_expand | right.no_expand | hide
        token.version = head.version
        token.layout = left.layout
        return token


def _stringify(tokens: List[Token], head: Token) -> Token:
    parts: List[str] = []
    for index, token in enumerate(tokens):
        if index > 0 and token.has_space_before:
            parts.append(" ")
        text = token.text
        if token.kind in (TokenKind.STRING, TokenKind.CHARACTER):
            text = text.replace("\\", "\\\\").replace('"', '\\"')
        parts.append(text)
    literal = '"' + "".join(parts) + '"'
    return Token(TokenKind.STRING, literal, head.file, head.line,
                 head.col, head.layout)
