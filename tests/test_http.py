"""Tests for the protocol core, the HTTP frontend, and the unified
remote-session client (``repro.serve.protocol`` / ``.http`` /
``.client``)."""

import http.client
import json
import types

import pytest

from repro import chaos
from repro.api import Config, Session, is_result
from repro.engine.scheduler import CrashLoopBreaker
from repro.serve import (HttpTransport, ParseServer, ProtocolError,
                         RemoteSession, ServeClient, SocketTransport,
                         connect, parse_endpoint)
from repro.serve import protocol
from repro.serve.http import ROUTES
from repro.tools import serve_cli

FILES = {
    "include/shared.h": "#define SHARED 1\n",
    "a.c": "#include <shared.h>\nint a = SHARED;\n",
    "b.c": "int b = 2;\n",
}
INCLUDE_PATHS = ("include",)


@pytest.fixture
def server(tmp_path):
    server = ParseServer(
        config=Config(files=dict(FILES),
                      include_paths=INCLUDE_PATHS),
        socket_path=str(tmp_path / "serve.sock"), http_port=0,
        max_queue=8, cache_dir=str(tmp_path / "cache")).start()
    yield server
    server.close()


def http_conn(server, timeout=30.0):
    host, port = server.http_address
    return http.client.HTTPConnection(host, port, timeout=timeout)


def roundtrip(conn, method, route, body=None):
    payload = (json.dumps(body).encode("utf-8")
               if body is not None else None)
    conn.request(method, route, body=payload,
                 headers={"Content-Type": "application/json"}
                 if payload is not None else {})
    response = conn.getresponse()
    return response.status, json.loads(response.read().decode("utf-8"))


class TestProtocolCodec:
    def test_parse_request_roundtrip(self):
        wire = {"id": 7, "op": "parse", "path": "a.c", "fresh": True,
                "deadline": 2.5}
        request = protocol.decode_request(wire)
        assert isinstance(request, protocol.ParseRequest)
        assert request.id == 7 and request.path == "a.c"
        assert request.fresh and request.deadline == 2.5
        assert request.unit == "a.c"
        assert protocol.decode_request(request.to_wire()).to_wire() \
            == request.to_wire()

    def test_every_op_has_a_type_and_a_route(self):
        assert set(protocol.OPS) == set(protocol.REQUEST_TYPES)
        assert set(protocol.HTTP_ROUTES) == set(protocol.OPS)
        # The frontend's routing table is the same table, inverted.
        assert ROUTES == {(method, route): op
                          for op, (method, route)
                          in protocol.HTTP_ROUTES.items()}

    def test_unknown_op_raises_with_id(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_request({"id": 3, "op": "nope"})
        assert err.value.request_id == 3

    def test_parse_needs_path_or_text(self):
        with pytest.raises(ProtocolError):
            protocol.decode_request({"op": "parse"})

    def test_invalidate_needs_path(self):
        with pytest.raises(ProtocolError):
            protocol.decode_request({"op": "invalidate"})

    def test_mistyped_fields_raise(self):
        with pytest.raises(ProtocolError):
            protocol.decode_request({"op": "parse", "path": 7})
        with pytest.raises(ProtocolError):
            protocol.decode_request({"op": "parse", "text": "x",
                                     "deadline": "soon"})

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError):
            protocol.decode_request(["op", "parse"])

    def test_http_status_mapping(self):
        codes = {status: protocol.http_status(status)
                 for status in protocol.STATUSES}
        assert codes == {"ok": 200, "degraded": 200,
                         "parse-failed": 422, "error": 422,
                         "shed": 429, "timeout": 504, "crashed": 503,
                         "unavailable": 503}
        assert protocol.http_status("???") == 500
        assert protocol.http_status(None) == 500

    def test_unavailable_reply_shape(self):
        reply = protocol.unavailable_reply("parse", 3, "boom")
        assert reply["status"] == "unavailable"
        assert reply["attempts"] == 3
        assert "after 3 attempts" in reply["error"]


class TestHttpFrontend:
    def test_framing_and_keepalive(self, server):
        conn = http_conn(server)
        code, first = roundtrip(conn, "POST", "/v1/parse",
                                {"id": 1, "path": "a.c"})
        assert code == 200 and first["cache"] == "miss"
        # Same connection, second request: keep-alive framing held.
        code, second = roundtrip(conn, "POST", "/v1/parse",
                                 {"id": 2, "path": "a.c"})
        assert code == 200 and second["cache"] == "hit"
        assert second["id"] == 2 and second["op"] == "parse"
        conn.close()

    def test_status_code_mapping_end_to_end(self, server):
        conn = http_conn(server)
        # An unreadable path is the request's fault: 422.
        code, body = roundtrip(conn, "POST", "/v1/parse",
                               {"path": "gone.c"})
        assert code == 422 and body["status"] == "error"
        # A request failing protocol validation: 400.
        code, body = roundtrip(conn, "POST", "/v1/parse", {})
        assert code == 400 and body["status"] == "error"
        # Routing problems: 404 unknown, 405 wrong method.
        code, _body = roundtrip(conn, "GET", "/v1/nope")
        assert code == 404
        code, _body = roundtrip(conn, "POST", "/v1/stats", {})
        assert code == 405
        conn.close()

    def test_post_without_body_is_411(self, server):
        # http.client adds Content-Length: 0 through request(); build
        # the headerless POST by hand to hit the framing check.
        conn = http_conn(server)
        conn.putrequest("POST", "/v1/parse")
        conn.endheaders()
        response = conn.getresponse()
        response.read()
        assert response.status == 411
        conn.close()

    def test_shed_maps_to_429(self, tmp_path):
        # Depth-0 admission sheds every parse — deterministically, and
        # without tearing the daemon down the way a drain would.
        server = ParseServer(
            config=Config(files=dict(FILES),
                          include_paths=INCLUDE_PATHS),
            socket_path=str(tmp_path / "shed.sock"), http_port=0,
            max_queue=0, cache_dir=str(tmp_path / "cache")).start()
        try:
            conn = http_conn(server)
            code, body = roundtrip(conn, "POST", "/v1/parse",
                                   {"path": "a.c"})
            assert code == 429 and body["status"] == "shed"
            assert "queue depth" in body["error"]
            conn.close()
        finally:
            server.close()

    def test_stats_and_ping_over_http(self, server):
        conn = http_conn(server)
        code, body = roundtrip(conn, "GET", "/v1/ping")
        assert code == 200 and body["protocol"] == \
            protocol.PROTOCOL_VERSION
        code, body = roundtrip(conn, "GET", "/v1/stats")
        assert code == 200 and "requests" in body["stats"]
        conn.close()

    def test_healthz_flips_with_breaker(self, server):
        conn = http_conn(server)
        code, body = roundtrip(conn, "GET", "/healthz")
        assert code == 200 and body["status"] == "ok"
        # Trip a crash-loop breaker: the daemon still answers (inline
        # degraded mode) but advertises itself unhealthy to balancers.
        breaker = CrashLoopBreaker(1)
        breaker.failure()
        server.service.pool = types.SimpleNamespace(breaker=breaker)
        code, body = roundtrip(conn, "GET", "/healthz")
        assert code == 503 and body["breaker_open"]
        assert body["status"] == "unavailable"
        breaker.reset()
        code, body = roundtrip(conn, "GET", "/healthz")
        assert code == 200 and body["status"] == "ok"
        conn.close()


class TestSharedWarmCache:
    def test_second_transport_first_request_hits(self, server):
        with connect(f"unix:{server.socket_path}") as via_socket, \
                connect(server.http.url) as via_http:
            cold = via_socket.parse("a.c").record
            assert cold["cache"] == "miss"
            # The HTTP transport's *first* request rides the warm
            # cache the socket client just filled — one state, two
            # frontends.
            warm = via_http.parse("a.c").record
            assert warm["cache"] == "hit"
            # And back the other way on a different unit.
            assert via_http.parse("b.c").record["cache"] == "miss"
            assert via_socket.parse("b.c").record["cache"] == "hit"

    def test_transports_answer_identical_records(self, server):
        with connect(f"unix:{server.socket_path}") as via_socket, \
                connect(server.http.url) as via_http:
            via_socket.parse("a.c")
            one = via_socket.parse("a.c").record
            two = via_http.parse("a.c").record
            volatile = ("id", "serve")
            assert {k: v for k, v in one.items()
                    if k not in volatile} \
                == {k: v for k, v in two.items() if k not in volatile}


class TestEndpointUrls:
    def test_unix_forms(self):
        assert parse_endpoint("unix:/tmp/s.sock") \
            == ("unix", "/tmp/s.sock")
        assert parse_endpoint("unix:///tmp/s.sock") \
            == ("unix", "/tmp/s.sock")
        assert parse_endpoint("/tmp/s.sock") == ("unix", "/tmp/s.sock")

    def test_tcp_forms(self):
        assert parse_endpoint("tcp:127.0.0.1:7433") \
            == ("tcp", "127.0.0.1", 7433)
        assert parse_endpoint("tcp://127.0.0.1:7433") \
            == ("tcp", "127.0.0.1", 7433)
        assert parse_endpoint("tcp::7433") == ("tcp", "127.0.0.1", 7433)

    def test_http_forms(self):
        assert parse_endpoint("http://127.0.0.1:8080") \
            == ("http", "127.0.0.1", 8080)
        assert parse_endpoint("http://localhost") \
            == ("http", "localhost", 80)
        assert parse_endpoint("http://127.0.0.1:0") \
            == ("http", "127.0.0.1", 0)

    def test_rejects_garbage(self):
        for bad in ("", "unix:", "tcp:nohost", "https://x:1",
                    "ftp://x", "http://"):
            with pytest.raises(ValueError):
                parse_endpoint(bad)

    def test_connect_picks_the_transport(self):
        assert isinstance(connect("unix:/tmp/s.sock"), RemoteSession)
        assert isinstance(connect("unix:/tmp/s.sock").transport,
                          SocketTransport)
        assert isinstance(connect("tcp:127.0.0.1:1").transport,
                          SocketTransport)
        assert isinstance(connect("http://127.0.0.1:1").transport,
                          HttpTransport)

    def test_connect_options_reach_the_transport(self):
        session = connect("http://127.0.0.1:1", timeout=3.5, retries=0)
        assert session.transport.timeout == 3.5
        assert session.transport.retries == 0


class TestRemoteSessionParity:
    def test_result_protocol_matches_local_session(self, server):
        local = Session(files=dict(FILES),
                        include_paths=INCLUDE_PATHS).parse_file("a.c")
        with connect(server.http.url) as session:
            remote = session.parse_file("a.c")
        assert is_result(local) and is_result(remote)
        assert remote.status == local.status == "ok"
        assert remote.ok and not remote.degraded
        assert remote.timing is not None
        assert remote.diagnostics == []

    def test_parse_text_over_http(self, server):
        with connect(server.http.url) as session:
            result = session.parse(text="int q = 1;\n",
                                   filename="buf.c")
        assert result.ok and result.record["unit"] == "buf.c"

    def test_unavailable_is_structured_not_raised(self, tmp_path):
        session = connect(f"unix:{tmp_path}/nope.sock", retries=1,
                          backoff_base=0.0)
        result = session.parse("a.c")
        assert result.status == "unavailable"
        assert result.record["attempts"] == 2

    def test_http_unavailable_is_structured(self):
        # Nothing listens on a fresh ephemeral port the OS just freed.
        import socket as socketlib
        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        session = connect(f"http://127.0.0.1:{port}", retries=1,
                          backoff_base=0.0)
        result = session.parse("a.c")
        assert result.status == "unavailable"


class TestHttpChaos:
    def test_torn_body_heals_through_retry(self, server):
        plan = chaos.FaultPlan(seed=1)
        with chaos.injected(plan):
            with connect(server.http.url, backoff_base=0.0) as session:
                session.parse("a.c")
                plan.arm("http.send", "torn-body")
                healed = session.parse("a.c").record
        assert healed["status"] == "ok"
        assert plan.fired("torn-body") == 1

    def test_drop_conn_at_http_site(self, server):
        plan = chaos.FaultPlan(seed=1)
        with chaos.injected(plan):
            with connect(server.http.url, backoff_base=0.0) as session:
                plan.arm("http.send", "drop-conn")
                dropped = session.parse("a.c").record
        assert dropped["status"] == "ok"
        assert plan.fired("drop-conn") == 1


class TestDeprecationShims:
    def test_serve_client_warns_and_works(self, server):
        with pytest.warns(DeprecationWarning, match="connect"):
            client = ServeClient(socket_path=server.socket_path)
        with client:
            assert client.parse("a.c").ok
        assert isinstance(client, SocketTransport)

    def test_cli_socket_flag_warns(self, server, capsys):
        with pytest.warns(DeprecationWarning, match="--listen"):
            rc = serve_cli.main(["--socket", server.socket_path,
                                 "--stats"])
        assert rc == 0
        assert "requests" in capsys.readouterr().out

    def test_cli_port_flag_warns(self, tmp_path):
        # No server: the deprecated flag still routes to the client
        # path, which answers a structured failure (exit 1, no raise).
        with pytest.warns(DeprecationWarning, match="--listen"):
            rc = serve_cli.main(["--port", "1", "--host", "127.0.0.1",
                                 "--stats"])
        assert rc == 1

    def test_remote_session_is_the_undeprecated_path(self, server):
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", DeprecationWarning)
            with connect(f"unix:{server.socket_path}") as session:
                assert session.parse("a.c").ok


class TestCliListen:
    def test_usage_error_mentions_both_spellings(self, capsys):
        assert serve_cli.main([]) == 2
        err = capsys.readouterr().err
        assert "--listen" in err and "--socket" in err

    def test_conflicting_listeners_rejected(self, capsys):
        rc = serve_cli.main(["--listen", "unix:/tmp/a.sock",
                             "--listen", "tcp:127.0.0.1:0"])
        assert rc == 2
        assert "unix" in capsys.readouterr().err

    def test_duplicate_listener_kind_rejected(self, capsys):
        rc = serve_cli.main(["--listen", "unix:/tmp/a.sock",
                             "--listen", "unix:/tmp/b.sock"])
        assert rc == 2
        assert "multiple" in capsys.readouterr().err

    def test_client_with_connect_url(self, server, capsys):
        rc = serve_cli.main(["--connect", server.http.url,
                             "--parse", "a.c", "--json"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out.strip())
        assert record["status"] == "ok"

    def test_listen_and_ops_conflict(self, capsys):
        rc = serve_cli.main(["--listen", "unix:/tmp/a.sock",
                             "--stats"])
        assert rc == 2
        assert "--connect" in capsys.readouterr().err
