"""Hierarchical span tracer with a counters/histograms registry.

Two implementations share one interface:

* :class:`Tracer` records everything: a tree of timed :class:`Span`
  objects, a flat list of instant :class:`TraceEvent` objects (FMLR
  fork/merge, kill-switch trips, confined diagnostics), monotonic
  counters, and value histograms (per-iteration live subparser counts,
  hoist expansion factors).
* :class:`NullTracer` — the default everywhere — is a stateless
  singleton whose hooks do nothing and allocate nothing.  Hot loops
  hoist ``trace = tracer.enabled`` into a local and guard per-token
  hooks behind it, so the un-traced path costs one boolean test.

Instrumented code never branches on tracer *type*; it checks
``tracer.enabled`` (or just calls the hook, for per-phase spans where
a no-op call is negligible).

The tracer is deliberately not thread-safe: the pipeline is
single-threaded per unit, and the batch engine gives each worker
process its own tracer.  :meth:`Tracer.mark` / :meth:`Tracer.since`
delimit per-unit windows on a long-lived tracer so one worker can
serve many units and still produce per-unit profiles.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple


class TraceEvent:
    """One instant (zero-duration) event on the trace timeline."""

    __slots__ = ("name", "ts", "args")

    def __init__(self, name: str, ts: float, args: Optional[dict]):
        self.name = name
        self.ts = ts
        self.args = args

    def __repr__(self) -> str:
        return f"TraceEvent({self.name!r}, ts={self.ts:.6f})"


class Span:
    """One timed region; spans nest into a tree.

    A span is its own context manager: ``with tracer.span("parse"):``
    opens it on the tracer's stack and closes it (recording the end
    time and attaching it to its parent) on exit.
    """

    __slots__ = ("name", "args", "start", "end", "children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Optional[dict]):
        self.name = name
        self.args = args
        self.start = 0.0
        self.end = 0.0
        self.children: List["Span"] = []
        self._tracer = tracer

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.start = tracer.clock()
        tracer._stack.append(self)
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        self.end = tracer.clock()
        stack = tracer._stack
        # Tolerate exception-driven unwinding: pop through to self.
        while stack:
            top = stack.pop()
            if top is self:
                break
        if stack:
            stack[-1].children.append(self)
        else:
            tracer.roots.append(self)
        return False

    def tree(self) -> Tuple:
        """(name, (child trees...)) — the deterministic structure used
        by tests; times and args are excluded on purpose."""
        return (self.name, tuple(child.tree()
                                 for child in self.children))

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.seconds * 1000:.3f}ms, "
                f"children={len(self.children)})")


class _NullSpan:
    """Shared no-op context manager; one per process, never mutated."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()

# Immutable empty views shared by every NullTracer reader.
_EMPTY_DICT: Dict[str, Any] = {}
_EMPTY_TUPLE: Tuple = ()


class NullTracer:
    """The zero-overhead default tracer: all hooks are no-ops.

    ``span`` returns one shared context manager and ``event`` /
    ``count`` / ``record`` return immediately, so instrumented code can
    call them unconditionally on phase boundaries; per-token call sites
    should still guard with ``if tracer.enabled:`` to skip argument
    construction.
    """

    __slots__ = ()

    enabled = False
    # Read-only empty views so generic consumers (exporters, profiles)
    # can treat any tracer uniformly.
    roots: Tuple = _EMPTY_TUPLE
    events: Tuple = _EMPTY_TUPLE
    counters: Dict[str, int] = _EMPTY_DICT
    histograms: Dict[str, List[float]] = _EMPTY_DICT

    def span(self, name: str, /, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, /, **args: Any) -> None:
        return None

    def count(self, name: str, n: int = 1) -> None:
        return None

    def record(self, name: str, value: float) -> None:
        return None

    def mark(self) -> tuple:
        return _EMPTY_TUPLE

    def reset(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans, instant events, counters, and histograms.

    ``clock`` is injectable (tests use a deterministic counter); it
    must be monotonic and return seconds as a float.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.roots: List[Span] = []
        self.events: List[TraceEvent] = []
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, List[float]] = {}
        self._stack: List[Span] = []

    # -- recording ----------------------------------------------------

    def span(self, name: str, /, **args: Any) -> Span:
        """Open a new child span of the current span (as a ``with``
        target)."""
        return Span(self, name, args or None)

    def event(self, name: str, /, **args: Any) -> None:
        """Record an instant event at the current time."""
        self.events.append(TraceEvent(name, self.clock(), args or None))

    def count(self, name: str, n: int = 1) -> None:
        """Increment a monotonic counter."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def record(self, name: str, value: float) -> None:
        """Append one observation to a histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = []
        histogram.append(value)

    # -- per-unit windows ---------------------------------------------

    def mark(self) -> tuple:
        """Snapshot the current position; pass to :meth:`since` to read
        only what was recorded after this point (per-unit windows on a
        long-lived tracer)."""
        return (len(self.roots), len(self.events), dict(self.counters),
                {name: len(values)
                 for name, values in self.histograms.items()})

    def since(self, mark: tuple) -> dict:
        """Everything recorded after ``mark``: new root spans, new
        events, counter deltas, and new histogram observations."""
        if not mark:
            mark = (0, 0, {}, {})
        roots_len, events_len, counters_then, hist_lens = mark
        counters = {}
        for name, value in self.counters.items():
            delta = value - counters_then.get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        for name, values in self.histograms.items():
            tail = values[hist_lens.get(name, 0):]
            if tail:
                histograms[name] = tail
        return {"roots": self.roots[roots_len:],
                "events": self.events[events_len:],
                "counters": counters,
                "histograms": histograms}

    def reset(self) -> None:
        """Drop everything recorded so far (spans, events, counters,
        histograms).  Long-lived tracers — one per batch worker — reset
        between units once the per-unit Profile has been captured, so
        memory stays bounded over arbitrarily large corpora."""
        self.roots.clear()
        self.events.clear()
        self.counters.clear()
        self.histograms.clear()
        self._stack.clear()

    # -- introspection ------------------------------------------------

    def span_trees(self) -> Tuple:
        """Deterministic (name, children) trees of all root spans."""
        return tuple(root.tree() for root in self.roots)

    def __repr__(self) -> str:
        return (f"Tracer(roots={len(self.roots)}, "
                f"events={len(self.events)}, "
                f"counters={len(self.counters)})")
