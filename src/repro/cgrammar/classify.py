"""Token classification: lexer tokens to grammar terminals.

The lexer emits plain identifiers (any identifier may be a macro name
during preprocessing); the parser front-end maps identifier text onto
keyword terminals, normalizes GNU alternate spellings, and folds
numeric and character constants into CONSTANT.  Typedef names are
*not* decided here — that is the context plug-in's reclassify job
(§5.2), since it depends on the conditional symbol table.
"""

from __future__ import annotations

from repro.cgrammar.grammar_def import C_KEYWORDS, GNU_ALIASES
from repro.lexer.tokens import Token, TokenKind

IDENTIFIER = "IDENTIFIER"
TYPEDEF_NAME = "TYPEDEF_NAME"
CONSTANT = "CONSTANT"
STRING = "STRING"


def classify(token: Token) -> str:
    """Map a token to its base grammar terminal."""
    kind = token.kind
    if kind is TokenKind.IDENTIFIER:
        text = GNU_ALIASES.get(token.text, token.text)
        if text in C_KEYWORDS:
            return text
        return IDENTIFIER
    if kind in (TokenKind.NUMBER, TokenKind.CHARACTER):
        return CONSTANT
    if kind is TokenKind.STRING:
        return STRING
    return token.text
