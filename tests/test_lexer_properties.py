"""Property-based lexer tests: roundtrip and stability invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lexer import TokenKind, lex, render_tokens

# Build source text from well-formed lexical atoms so the lexer cannot
# legitimately reject it.
atoms = st.one_of(
    st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True),
    st.from_regex(r"(0|[1-9][0-9]{0,5})", fullmatch=True),
    st.from_regex(r"0x[0-9a-fA-F]{1,6}", fullmatch=True),
    st.sampled_from(["+", "-", "*", "/", "%", "<<", ">>", "==", "!=",
                     "<=", ">=", "&&", "||", "->", "++", "--", "(",
                     ")", "[", "]", "{", "}", ";", ",", ".", "?", ":",
                     "#", "##"]),
    st.sampled_from(['"hello"', '"a b c"', "'x'", "'\\n'", '""']),
)

layouts = st.sampled_from([" ", "  ", "\t", "\n", " /* c */ ", " // x\n"])


@st.composite
def source_text(draw):
    parts = []
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        parts.append(draw(atoms))
        parts.append(draw(layouts))
    return "".join(parts)


@settings(max_examples=150, deadline=None)
@given(source_text())
def test_layout_roundtrip(text):
    """Rendering tokens with layout reproduces the input exactly."""
    tokens = lex(text)
    assert render_tokens(tokens) == text


@settings(max_examples=150, deadline=None)
@given(source_text())
def test_relex_fixpoint(text):
    """Lexing the layout-free rendering yields the same token texts."""
    tokens = [t for t in lex(text)
              if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
    rendered = render_tokens(tokens, with_layout=False)
    relexed = [t for t in lex(rendered)
               if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
    assert [t.text for t in relexed] == [t.text for t in tokens]
    assert [t.kind for t in relexed] == [t.kind for t in tokens]


@settings(max_examples=100, deadline=None)
@given(source_text())
def test_positions_monotone(text):
    tokens = lex(text)
    last = (0, 0)
    for token in tokens:
        if token.kind in (TokenKind.NEWLINE, TokenKind.EOF):
            continue
        position = (token.line, token.col)
        assert position >= last
        last = position


@settings(max_examples=100, deadline=None)
@given(source_text())
def test_no_token_text_lost(text):
    """Concatenated token texts appear in the source in order."""
    index = 0
    for token in lex(text):
        if token.kind in (TokenKind.NEWLINE, TokenKind.EOF):
            continue
        found = text.find(token.text, index)
        assert found >= 0
        index = found + len(token.text)
