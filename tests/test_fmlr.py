"""Unit tests for the FMLR engine on small grammars.

The C front-end has its own tests; here the engine is exercised with
toy grammars over preprocessed conditional token streams, including
the paper's Figure 6 scenario (2^n configurations, O(1) subparsers).
"""

import pytest

from repro.lexer.tokens import TokenKind
from repro.parser import Build, Grammar, Node, StaticChoice, generate
from repro.parser.ast import project as ast_project
from repro.parser.fmlr import (FMLROptions, FMLRParser,
                               OPTIMIZATION_LEVELS, SubparserExplosion,
                               follow_set)
from repro.parser.stream import BranchNode, TokenNode, build_stream, \
    stream_tokens
from tests.support import assignment_for, ast_signature, preprocess


def classify(token):
    if token.kind is TokenKind.IDENTIFIER:
        return "IDENT"
    if token.kind is TokenKind.NUMBER:
        return "NUM"
    return token.text


def ident_list_grammar():
    g = Grammar("Unit")
    g.rule("Unit", ["Items"], build=Build.PASSTHROUGH)
    g.rule("Items", ["Items", "Item"], build=Build.LIST)
    g.rule("Items", ["Item"], build=Build.LIST)
    g.rule("Item", ["IDENT", ";"], node_name="Stmt")
    g.mark_complete("Item", "Items", "Unit")
    return generate(g)


def parse_source(source, grammar_tables=None, options=None):
    unit = preprocess(source)
    tables = grammar_tables or ident_list_grammar()
    parser = FMLRParser(tables, classify, options=options)
    result = parser.parse(unit.tree, unit.manager,
                          unit.feasible_condition)
    return unit, result


class TestStream:
    def test_flat_stream(self):
        unit = preprocess("a ; b ;")
        first = build_stream(unit.tree, unit.manager)
        nodes = stream_tokens(first)
        # 4 tokens + EOF sentinel.
        assert [n.token.text for n in nodes] == ["a", ";", "b", ";", ""]
        assert [n.position for n in nodes] == [0, 1, 2, 3, 4]

    def test_branch_node_built(self):
        unit = preprocess("#ifdef A\nx ;\n#endif\ny ;")
        first = build_stream(unit.tree, unit.manager)
        assert isinstance(first, BranchNode)
        # Two alternatives: the branch and the implicit else.
        assert len(first.alternatives) == 2

    def test_empty_branch_points_past_conditional(self):
        unit = preprocess("#ifdef A\nx ;\n#endif\ny ;")
        first = build_stream(unit.tree, unit.manager)
        implicit = [sub for _c, sub in first.alternatives
                    if isinstance(sub, TokenNode)
                    and sub.token.text == "y"]
        assert len(implicit) == 1

    def test_positions_document_order(self):
        unit = preprocess("#ifdef A\nx ;\n#else\nz ;\n#endif\ny ;")
        first = build_stream(unit.tree, unit.manager)
        nodes = stream_tokens(first)
        assert [n.token.text for n in nodes] == \
            ["x", ";", "z", ";", "y", ";", ""]


class TestFollowSet:
    def follow_of(self, source):
        unit = preprocess(source)
        first = build_stream(unit.tree, unit.manager)
        pairs = follow_set(unit.manager.true, first, unit.manager)
        return unit, [(cond.to_expr_string(), node.token.text)
                      for cond, node in pairs]

    def test_plain_token(self):
        _unit, pairs = self.follow_of("x ;")
        assert pairs == [("1", "x")]

    def test_single_conditional(self):
        _unit, pairs = self.follow_of("#ifdef A\nx ;\n#endif\ny ;")
        assert pairs == [("defined:A", "x"), ("!defined:A", "y")]

    def test_empty_branches_skipped(self):
        source = ("#ifdef A\n#else\n#endif\ny ;")
        _unit, pairs = self.follow_of(source)
        assert pairs == [("1", "y")]

    def test_sequence_of_conditionals(self):
        source = ("#ifdef A\na ;\n#endif\n"
                  "#ifdef B\nb ;\n#endif\n"
                  "rest ;")
        _unit, pairs = self.follow_of(source)
        texts = [t for _c, t in pairs]
        assert texts == ["a", "b", "rest"]
        # Conditions: a under A; b under !A&&B; rest under !A&&!B.
        assert pairs[0][0] == "defined:A"
        assert "!defined:A" in pairs[1][0] and "defined:B" in pairs[1][0]

    def test_conditions_partition(self):
        source = ("#ifdef A\na ;\n#elif defined(B)\nb ;\n#endif\nz ;")
        unit = preprocess(source)
        first = build_stream(unit.tree, unit.manager)
        pairs = follow_set(unit.manager.true, first, unit.manager)
        union = unit.manager.false
        for cond, _node in pairs:
            assert (union & cond).is_false()
            union = union | cond
        assert union.is_true()

    def test_nested_conditionals(self):
        source = ("#ifdef A\n#ifdef B\nab ;\n#endif\na ;\n#endif\nz ;")
        _unit, pairs = self.follow_of(source)
        assert [t for _c, t in pairs] == ["ab", "a", "z"]

    def test_eof_in_follow_set(self):
        _unit, pairs = self.follow_of("#ifdef A\nx ;\n#endif")
        assert [t for _c, t in pairs] == ["x", ""]


class TestBasicParsing:
    def test_unconditional(self):
        _unit, result = parse_source("a ; b ;")
        assert result.ok
        items = result.value
        assert len(items) == 2
        assert all(node.name == "Stmt" for node in items)

    def test_single_conditional_produces_choice(self):
        unit, result = parse_source("#ifdef A\nx ;\n#endif\ny ;")
        assert result.ok
        with_a = ast_project(result.value,
                             assignment_for(unit, {"A": "1"}))
        without = ast_project(result.value, assignment_for(unit, {}))
        assert len(with_a) == 2
        assert len(without) == 1

    def test_alternative_branches(self):
        unit, result = parse_source(
            "#ifdef A\nx ;\n#else\ny ;\n#endif")
        assert result.ok
        value = result.value
        # The whole unit differs per configuration: a static choice.
        assert isinstance(value, StaticChoice) or isinstance(value, tuple)
        with_a = ast_project(value, assignment_for(unit, {"A": "1"}))
        assert with_a[0].children[0].text == "x"

    def test_parse_error_reports_condition(self):
        _unit, result = parse_source("#ifdef A\n; ;\n#endif\nx ;")
        assert not result.ok
        assert result.failures
        failure = result.failures[0]
        assert "defined:A" in failure.condition.to_expr_string()
        # The feasible configuration still parsed.
        assert result.accepted

    def test_all_configurations_fail(self):
        _unit, result = parse_source("; broken ;")
        assert not result.ok
        assert not result.accepted

    def test_empty_input(self):
        g = Grammar("Unit")
        g.rule("Unit", [])
        g.rule("Unit", ["IDENT"])
        unit = preprocess("")
        parser = FMLRParser(generate(g), classify)
        result = parser.parse(unit.tree, unit.manager)
        assert result.ok

    def test_error_branch_not_parsed(self):
        source = "#ifdef BAD\n#error no\n#endif\nx ;"
        _unit, result = parse_source(source)
        assert result.ok  # BAD branch infeasible, not a failure


class TestTokenSharing:
    def test_paper_figure1_token_parsed_twice(self):
        """Line 10 of Figure 1b parses in two configurations but the
        result still covers both: conditions on the choice partition."""
        source = ("#ifdef P\nhead ;\n#endif\n"
                  "shared ;")
        unit, result = parse_source(source)
        assert result.ok
        both = ast_project(result.value,
                           assignment_for(unit, {"P": "1"}))
        one = ast_project(result.value, assignment_for(unit, {}))
        assert [n.children[0].text for n in both] == ["head", "shared"]
        assert [n.children[0].text for n in one] == ["shared"]


class TestOptimizationLevels:
    SOURCE = ("#ifdef C1\na ;\n#endif\n"
              "#ifdef C2\nb ;\n#endif\n"
              "#ifdef C3\nc ;\n#endif\n"
              "#ifdef C4\nd ;\n#endif\n"
              "tail ;")

    @pytest.mark.parametrize("level", list(OPTIMIZATION_LEVELS))
    def test_all_levels_agree(self, level):
        unit, baseline = parse_source(self.SOURCE)
        _unit2, result = parse_source(
            self.SOURCE, options=OPTIMIZATION_LEVELS[level])
        assert result.ok
        for config in ({}, {"C1": "1"}, {"C2": "1", "C4": "1"},
                       {"C1": "1", "C2": "1", "C3": "1", "C4": "1"}):
            expect = ast_project(baseline.value,
                                 assignment_for(unit, config))
            actual = ast_project(result.value,
                                 assignment_for(unit, config))
            assert ast_signature(expect) == ast_signature(actual), \
                (level, config)

    def test_optimized_fewer_subparsers_than_mapr(self):
        _u1, optimized = parse_source(self.SOURCE)
        _u2, mapr = parse_source(
            self.SOURCE, options=OPTIMIZATION_LEVELS["MAPR"])
        assert optimized.stats.max_subparsers <= \
            mapr.stats.max_subparsers

    def test_figure6_constant_subparsers(self):
        """18 conditional initializers, 2^18 configurations, but the
        optimized engine needs only a handful of subparsers."""
        lines = []
        for index in range(18):
            lines += [f"#ifdef CONFIG_{index}", f"check_{index} ;",
                      "#endif"]
        lines.append("nullend ;")
        source = "\n".join(lines)
        _unit, result = parse_source(source)
        assert result.ok
        assert result.stats.max_subparsers <= 6

    def test_figure6_mapr_explodes(self):
        lines = []
        for index in range(18):
            lines += [f"#ifdef CONFIG_{index}", f"check_{index} ;",
                      "#endif"]
        lines.append("nullend ;")
        source = "\n".join(lines)
        options = FMLROptions(follow_set=False, lazy_shifts=False,
                              shared_reduces=False, early_reduces=False,
                              choice_merging=False, kill_switch=500,
                              hard_kill_switch=True)
        with pytest.raises(SubparserExplosion):
            parse_source(source, options=options)

    def test_figure6_mapr_soft_kill_switch_degrades(self):
        """By default the kill switch is a budget: on trip the parse
        sheds low-priority forks, tags their configurations invalid,
        and still returns a partial result."""
        lines = []
        for index in range(18):
            lines += [f"#ifdef CONFIG_{index}", f"check_{index} ;",
                      "#endif"]
        lines.append("nullend ;")
        source = "\n".join(lines)
        options = FMLROptions(follow_set=False, lazy_shifts=False,
                              shared_reduces=False, early_reduces=False,
                              choice_merging=False, kill_switch=500)
        unit, result = parse_source(source, options=options)
        assert result.degraded
        assert not result.ok
        assert result.stats.kill_switch_trips >= 1
        assert result.stats.dropped_subparsers > 0
        assert result.diagnostics
        assert not result.invalid_configs.is_false()
        # The configurations NOT tagged invalid did parse.
        assert result.accepted

    def test_shared_reduce_counted(self):
        _unit, result = parse_source(self.SOURCE)
        assert result.stats.shared_reduce_count > 0 or \
            result.stats.max_subparsers <= 3

    def test_instrumentation_counts(self):
        _unit, result = parse_source(self.SOURCE)
        stats = result.stats
        assert stats.iterations == len(stats.subparser_counts)
        assert stats.max_subparsers == max(stats.subparser_counts)
        assert stats.merges > 0


class TestMerging:
    def test_subparsers_merge_after_conditional(self):
        # After the conditional, both configurations converge on the
        # same stack: exactly one subparser should continue.
        source = "#ifdef A\na ;\n#else\nb ;\n#endif\ntail1 ; tail2 ;"
        _unit, result = parse_source(source)
        assert result.ok
        assert result.stats.merges >= 1
        # After merging, the tail must not be parsed twice: total
        # iterations stay small.
        assert result.stats.max_subparsers <= 3

    def test_choice_node_at_complete_nonterminal(self):
        source = "#ifdef A\na ;\n#else\nb ;\n#endif\ntail ;"
        unit, result = parse_source(source)
        value = result.value
        # The merged list contains a choice between Stmt(a) and Stmt(b).
        found_choice = []

        def walk(node):
            if isinstance(node, StaticChoice):
                found_choice.append(node)
                for _c, branch in node.branches:
                    walk(branch)
            elif isinstance(node, Node):
                for child in node.children:
                    walk(child)
            elif isinstance(node, tuple):
                for child in node:
                    walk(child)

        walk(value)
        assert found_choice
