"""The gcc-like single-configuration baseline (§6.3's performance
floor).

gcc preprocesses and parses exactly one configuration at a time; the
paper measures it with ``-ftime-report`` under ``allyesconfig`` to
provide a latency baseline (50th/90th/100th percentiles of 0.18, 0.24,
0.87 seconds, a 12-32x speedup over SuperC, reflecting that it keeps
no static conditionals).

Here the same pipeline is: single-configuration oracle preprocessor +
plain LR parsing with the (unconditional) lexer-hack symbol table.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.api import deprecated_property
from repro.bdd import BDDManager
from repro.cgrammar import c_tables, classify, make_context_factory
from repro.cpp import FileSystem, SimplePreprocessor
from repro.lexer.tokens import Token
from repro.parser.lr import LRParser
from repro.superc import STATUS_OK, Timing


class GccLikeResult:
    """One single-configuration compile front-end run.

    Implements the uniform Result protocol (:mod:`repro.api`):
    construction implies a successful parse (failures raise), so
    ``status`` is always ``ok``.  The old ``*_seconds`` attributes are
    deprecated aliases for ``timing.*``.
    """

    def __init__(self, tokens: List[Token], ast, lex_seconds: float,
                 preprocess_seconds: float, parse_seconds: float,
                 profile=None):
        self.tokens = tokens
        self.ast = ast
        self.timing = Timing(lex_seconds, preprocess_seconds,
                             parse_seconds)
        self.profile = profile

    status = STATUS_OK
    ok = True
    degraded = False

    @property
    def diagnostics(self) -> list:
        return []

    @property
    def failures(self) -> list:
        return []

    lex_seconds = deprecated_property("lex_seconds", "timing.lex")
    preprocess_seconds = deprecated_property("preprocess_seconds",
                                             "timing.preprocess")
    parse_seconds = deprecated_property("parse_seconds", "timing.parse")
    total_seconds = deprecated_property("total_seconds", "timing.total")


class GccLike:
    """Single-configuration preprocess + parse."""

    def __init__(self, fs: Optional[FileSystem] = None,
                 include_paths: Sequence[str] = (),
                 config: Optional[Dict[str, str]] = None,
                 builtins: Optional[Dict[str, str]] = None):
        self.fs = fs
        self.include_paths = list(include_paths)
        self.config = dict(config or {})
        self.builtins = builtins
        self.tables = c_tables()

    def compile_source(self, text: str,
                       filename: str = "<input>") -> GccLikeResult:
        preprocessor = SimplePreprocessor(
            self.fs, include_paths=self.include_paths,
            config=self.config, builtins=self.builtins)
        pp_start = time.perf_counter()
        tokens = preprocessor.preprocess(text, filename)
        pp_seconds = time.perf_counter() - pp_start
        manager = BDDManager()
        parser = LRParser(self.tables, classify,
                          context_factory=make_context_factory(manager),
                          condition=manager.true)
        parse_start = time.perf_counter()
        ast = parser.parse(tokens)
        parse_seconds = time.perf_counter() - parse_start
        return GccLikeResult(tokens, ast, 0.0, pp_seconds,
                             parse_seconds)

    def compile_file(self, path: str) -> GccLikeResult:
        text = self.fs.read(path)
        if text is None:
            raise FileNotFoundError(path)
        return self.compile_source(text, path)


def allyesconfig(variables: Sequence[str]) -> Dict[str, str]:
    """Enable every boolean configuration variable (the paper's
    maximal configuration; covers <80%% of conditional blocks [37])."""
    return {name: "1" for name in variables}
