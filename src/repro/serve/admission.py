"""Admission control: bounded queueing, deadlines, load shedding.

A long-lived parse daemon must degrade predictably under overload: an
unbounded request queue turns a traffic burst into unbounded memory
growth and ever-worsening tail latency for *every* client.  This
module bounds the damage:

* :class:`AdmissionQueue` — a FIFO with a hard depth limit.  A submit
  beyond ``max_depth`` is rejected immediately (the server answers
  ``status=shed``) instead of queueing; clients get a fast, honest
  "busy" and can back off or retry elsewhere.
* :class:`Deadline` — per-request wall-clock budget, started at
  admission time so queue wait counts against it.  The serve worker
  pairs it with the engine's :func:`repro.engine.attempt_deadline`
  (SIGALRM) when running on the main thread, and falls back to
  before-start expiry checks otherwise.
* **Drain** — ``begin_drain()`` flips the queue into shutdown mode:
  new work is refused but everything already admitted is still handed
  out, so a ``shutdown`` request can be enqueued *behind* in-flight
  work and answered only once the queue is empty (graceful drain).

Every decision is observable: ``serve.shed`` counts rejections, and
the queue depth at each admission lands in the ``serve.queue_depth``
histogram.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional

from repro.obs.tracer import NULL_TRACER


class Deadline:
    """Wall-clock budget for one request, started at admission."""

    __slots__ = ("seconds", "start")

    def __init__(self, seconds: float, start: Optional[float] = None):
        self.seconds = max(0.0, seconds or 0.0)
        self.start = start if start is not None else time.monotonic()

    @property
    def enabled(self) -> bool:
        return self.seconds > 0

    def elapsed(self) -> float:
        return time.monotonic() - self.start

    def remaining(self) -> float:
        """Seconds left; ``inf`` when no deadline was set."""
        if not self.enabled:
            return float("inf")
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.enabled and self.remaining() <= 0

    def __repr__(self) -> str:
        return (f"Deadline({self.seconds:.3g}s, "
                f"remaining={self.remaining():.3g}s)")


class QueueClosed(Exception):
    """The queue has fully drained after ``begin_drain``."""


class AdmissionQueue:
    """Bounded FIFO with load shedding and graceful drain.

    ``max_depth`` counts *waiting* items only (the item the worker is
    currently serving has already left the queue).  ``priority=True``
    submissions (shutdown sentinels) bypass the depth check so control
    traffic is never shed by the very overload it is meant to resolve.
    """

    def __init__(self, max_depth: int = 64, tracer: Any = None):
        self.max_depth = max(0, max_depth)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._draining = False
        self.submitted = 0
        self.shed = 0

    @property
    def draining(self) -> bool:
        return self._draining

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def submit(self, item: Any, priority: bool = False) -> bool:
        """Admit ``item``; False when it was shed (queue full or
        draining)."""
        with self._not_empty:
            if self._draining and not priority:
                self.shed += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.shed")
                return False
            if not priority and len(self._items) >= self.max_depth:
                self.shed += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.shed")
                return False
            self._items.append(item)
            self.submitted += 1
            if self.tracer.enabled:
                self.tracer.record("serve.queue_depth",
                                   len(self._items))
            self._not_empty.notify()
            return True

    def pop(self, timeout: Optional[float] = None) -> Any:
        """Next item in FIFO order; blocks up to ``timeout``.

        Returns None on timeout; raises :class:`QueueClosed` once the
        queue is draining *and* empty (the worker's signal to exit).
        """
        with self._not_empty:
            while not self._items:
                if self._draining:
                    raise QueueClosed()
                if not self._not_empty.wait(timeout):
                    if not self._items:
                        return None
            return self._items.popleft()

    def begin_drain(self) -> None:
        """Refuse new non-priority work; wake blocked poppers so they
        can finish the backlog and observe :class:`QueueClosed`."""
        with self._not_empty:
            self._draining = True
            self._not_empty.notify_all()

    def close_with(self, item: Any) -> None:
        """Atomically flip to draining *and* enqueue a final sentinel
        ``item`` behind the backlog.  One lock acquisition, so a worker
        can never observe draining-and-empty (and exit) between the
        flip and the sentinel landing."""
        with self._not_empty:
            self._draining = True
            self._items.append(item)
            self.submitted += 1
            self._not_empty.notify_all()
