"""Per-unit records and corpus-level rollups.

A unit *record* is a flat, JSON-serializable dict — the common currency
between worker processes, the metrics stream, and the result cache:

.. code-block:: python

    {"unit": "drivers/net/net_drv0.c",
     "status": "ok",            # ok | parse-failed | error | timeout
     "attempt": 1,              # 1-based; >1 after retries
     "cache": "miss",           # hit | miss
     "seconds": 0.41,           # wall time inside the worker
     "timing": {"lex": ..., "preprocess": ..., "parse": ...,
                "total": ...},
     "subparsers": {"max": 7, "forks": 12, "merges": 11},
     "preprocessor": {...},     # PreprocessorStats.as_dict()
     "profile": {...} | None,   # repro.obs Profile.summary_dict()
     "failures": [...],         # first few parse-failure messages
     "error": None}             # exception repr for status "error"

:class:`UnitResult` wraps a record in the uniform Result protocol
(``status/ok/degraded/diagnostics/timing/profile``, see
:mod:`repro.api`), so engine output and single-unit ``SuperCResult``
objects can be consumed by the same code.

``aggregate`` folds records into a :class:`CorpusReport`: status
counts, cache hits, timing totals, and the paper's rollups — Figure 8
subparser percentiles, Figure 10 latency-breakdown percentiles, and
Table 3 style per-counter percentiles over the preprocessor stats.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.profile import merge_profile_summaries

STATUS_OK = "ok"
# A partial result: an AST exists, but some configurations were pruned
# (confined preprocessor errors), rejected (parse failures), or
# degraded away (kill-switch/budget trips).  Degraded units count as
# coverage, not as failures.
STATUS_DEGRADED = "degraded"
STATUS_PARSE_FAILED = "parse-failed"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
# Emitted by differential runners (repro.qa): the two pipelines
# returned different answers for at least one configuration.
STATUS_DISAGREE = "disagree"
# Assigned by the scheduler's crash-loop circuit breaker: the unit
# crashed or timed out on N consecutive attempts and is permanently
# abandoned for the run (never cached, never retried again).
STATUS_CRASHED = "crashed"

# Statuses the scheduler will resubmit (a parse failure is a property
# of the source, not of the run — retrying cannot change it; the same
# goes for a deterministic pipeline disagreement).
RETRYABLE_STATUSES = (STATUS_ERROR, STATUS_TIMEOUT)

PERCENTILES = (0.5, 0.9, 1.0)


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile (the paper's 50th/90th/100th columns)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, int(round(p * (len(ordered) - 1)))))
    return ordered[index]


def record_from_result(unit: str, result, attempt: int = 1,
                       seconds: float = 0.0) -> dict:
    """Build a unit record from a ``SuperCResult``."""
    failures = [str(failure) for failure in result.failures[:3]]
    stats = result.parse.stats
    status = getattr(result, "status", None)
    if status not in (STATUS_OK, STATUS_DEGRADED, STATUS_PARSE_FAILED):
        status = STATUS_OK if result.ok else STATUS_PARSE_FAILED
    diagnostics = [diag.to_record()
                   for diag in result.diagnostics[:20]]
    invalid = result.invalid_configs
    return {
        "unit": unit,
        "status": status,
        "attempt": attempt,
        "cache": "miss",
        "seconds": round(seconds, 6),
        "timing": {"lex": round(result.timing.lex, 6),
                   "preprocess": round(result.timing.preprocess, 6),
                   "parse": round(result.timing.parse, 6),
                   "total": round(result.timing.total, 6)},
        "subparsers": {"max": stats.max_subparsers,
                       "forks": stats.forks,
                       "merges": stats.merges},
        "preprocessor": result.unit.stats.as_dict(),
        "profile": (result.profile.summary_dict()
                    if getattr(result, "profile", None) is not None
                    else None),
        "failures": failures,
        "diagnostics": diagnostics,
        "invalid_configs": (None if invalid.is_false()
                            else invalid.to_expr_string()),
        "error": None,
    }


def error_record(unit: str, status: str, message: str,
                 attempt: int = 1, seconds: float = 0.0) -> dict:
    """Build a unit record for a crashed or timed-out attempt."""
    return {
        "unit": unit,
        "status": status,
        "attempt": attempt,
        "cache": "miss",
        "seconds": round(seconds, 6),
        "timing": {"lex": 0.0, "preprocess": 0.0, "parse": 0.0,
                   "total": 0.0},
        "subparsers": {"max": 0, "forks": 0, "merges": 0},
        "preprocessor": {},
        "profile": None,
        "failures": [],
        "diagnostics": [],
        "invalid_configs": None,
        "error": message,
    }


class UnitResult:
    """Result-protocol view over one unit record dict.

    ``diagnostics`` are the serialized diagnostic dicts carried by the
    record (not live ``Diagnostic`` objects), and ``profile`` is the
    JSON profile summary dict (or None) — the shapes that survive the
    worker boundary.
    """

    __slots__ = ("record",)

    def __init__(self, record: dict):
        self.record = record

    @property
    def unit(self) -> str:
        return self.record["unit"]

    @property
    def status(self) -> str:
        return self.record["status"]

    @property
    def ok(self) -> bool:
        return self.record["status"] == STATUS_OK

    @property
    def degraded(self) -> bool:
        return self.record["status"] == STATUS_DEGRADED

    @property
    def diagnostics(self) -> List[dict]:
        return list(self.record.get("diagnostics") or ())

    @property
    def failures(self) -> List[str]:
        return list(self.record.get("failures") or ())

    @property
    def timing(self) -> Any:
        from repro.superc import Timing
        timing = self.record.get("timing") or {}
        return Timing(timing.get("lex", 0.0),
                      timing.get("preprocess", 0.0),
                      timing.get("parse", 0.0))

    @property
    def profile(self) -> Optional[dict]:
        return self.record.get("profile")

    @property
    def error(self) -> Optional[str]:
        return self.record.get("error")

    def __repr__(self) -> str:
        return f"UnitResult({self.unit!r}, {self.status!r})"


class CorpusReport:
    """Aggregated outcome of one batch run."""

    def __init__(self, records: List[dict], wall_seconds: float = 0.0,
                 workers: int = 1):
        self.records = records
        self.wall_seconds = wall_seconds
        self.workers = workers
        by_status: Dict[str, int] = {}
        for record in records:
            by_status[record["status"]] = \
                by_status.get(record["status"], 0) + 1
        self.by_status = by_status
        self.cache_hits = sum(1 for r in records
                              if r.get("cache") == "hit")
        self.cache_misses = len(records) - self.cache_hits

    # -- counts ----------------------------------------------------------

    @property
    def units(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> int:
        return self.by_status.get(STATUS_OK, 0)

    @property
    def degraded(self) -> int:
        return self.by_status.get(STATUS_DEGRADED, 0)

    @property
    def failed(self) -> int:
        return (self.by_status.get(STATUS_PARSE_FAILED, 0)
                + self.by_status.get(STATUS_ERROR, 0)
                + self.by_status.get(STATUS_TIMEOUT, 0)
                + self.by_status.get(STATUS_DISAGREE, 0)
                + self.by_status.get(STATUS_CRASHED, 0))

    @property
    def all_ok(self) -> bool:
        """Every unit produced a usable (possibly partial) result.
        Degraded units carry condition-tagged diagnostics but still
        have an AST, so they count toward coverage."""
        return self.units > 0 and \
            self.ok + self.degraded == self.units

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.units if self.units else 0.0

    # -- rollups ---------------------------------------------------------

    @property
    def cpu_seconds(self) -> float:
        """Summed per-unit worker time (vs ``wall_seconds``: the
        difference is the parallel speedup)."""
        return sum(record["seconds"] for record in self.records)

    def statuses(self) -> Dict[str, str]:
        """unit path -> status (for serial-vs-parallel comparison)."""
        return {record["unit"]: record["status"]
                for record in self.records}

    def unit_results(self) -> List[UnitResult]:
        """Result-protocol views over every record."""
        return [UnitResult(record) for record in self.records]

    def subparser_rollup(self) -> Dict[str, float]:
        """Figure 8: percentiles of per-unit max live subparsers, plus
        corpus-total forks/merges."""
        maxima = [record["subparsers"]["max"] for record in self.records]
        rollup = {f"p{int(p * 100)}": percentile(maxima, p)
                  for p in PERCENTILES}
        rollup["forks"] = sum(record["subparsers"]["forks"]
                              for record in self.records)
        rollup["merges"] = sum(record["subparsers"]["merges"]
                               for record in self.records)
        return rollup

    def latency_rollup(self) -> Dict[str, Dict[str, float]]:
        """Figure 10: per-phase latency percentiles and totals."""
        rollup: Dict[str, Dict[str, float]] = {}
        for phase in ("lex", "preprocess", "parse"):
            values = [record["timing"][phase] for record in self.records]
            rollup[phase] = {f"p{int(p * 100)}": percentile(values, p)
                             for p in PERCENTILES}
            rollup[phase]["total"] = sum(values)
        return rollup

    def diagnostic_rollup(self) -> Dict[str, int]:
        """Histogram of condition-scoped diagnostics across the corpus,
        keyed ``phase/severity`` (e.g. ``include/config-error``) — the
        error-condition aggregate the degradation layer feeds from
        ``superc-parse --json`` records."""
        histogram: Dict[str, int] = {}
        for record in self.records:
            for diag in record.get("diagnostics") or ():
                key = (f"{diag.get('phase', '?')}/"
                       f"{diag.get('severity', '?')}")
                histogram[key] = histogram.get(key, 0) + 1
        return dict(sorted(histogram.items()))

    def preprocessor_rollup(self) -> Dict[str, Dict[str, float]]:
        """Table 3: percentiles of each preprocessor counter across the
        corpus's compilation units."""
        counters: Dict[str, List[float]] = {}
        for record in self.records:
            for key, value in record.get("preprocessor", {}).items():
                counters.setdefault(key, []).append(value)
        return {key: {f"p{int(p * 100)}": percentile(values, p)
                      for p in PERCENTILES}
                for key, values in sorted(counters.items())}

    def profile_rollup(self) -> Optional[dict]:
        """Corpus-wide aggregate of the per-unit observability
        profiles (phases and counters summed, histograms combined);
        None when no record carries a profile (un-profiled run)."""
        summaries = [record["profile"] for record in self.records
                     if record.get("profile")]
        if not summaries:
            return None
        return merge_profile_summaries(summaries)

    def summary(self) -> dict:
        """The run-end metrics event payload."""
        payload = {
            "units": self.units,
            "by_status": dict(self.by_status),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_seconds": round(self.wall_seconds, 3),
            "cpu_seconds": round(self.cpu_seconds, 3),
            "workers": self.workers,
            "subparsers": self.subparser_rollup(),
            "diagnostics": self.diagnostic_rollup(),
        }
        rollup = self.profile_rollup()
        if rollup is not None:
            payload["profile"] = rollup
        return payload


def format_report(report: CorpusReport, verbose: bool = False) -> str:
    """Human-readable corpus report for the CLI."""
    lines = []
    lines.append(f"units: {report.units}  ok: {report.ok}  "
                 f"degraded: {report.degraded}  "
                 f"parse-failed: "
                 f"{report.by_status.get(STATUS_PARSE_FAILED, 0)}  "
                 f"errors: {report.by_status.get(STATUS_ERROR, 0)}  "
                 f"timeouts: {report.by_status.get(STATUS_TIMEOUT, 0)}"
                 + (f"  disagreements: "
                    f"{report.by_status[STATUS_DISAGREE]}"
                    if STATUS_DISAGREE in report.by_status else "")
                 + (f"  crashed: {report.by_status[STATUS_CRASHED]}"
                    if STATUS_CRASHED in report.by_status else ""))
    lines.append(f"cache: {report.cache_hits} hit / "
                 f"{report.cache_misses} miss "
                 f"({100.0 * report.cache_hit_rate:.0f}% hits)")
    lines.append(f"wall: {report.wall_seconds:.2f}s over "
                 f"{report.workers} worker(s); "
                 f"cpu: {report.cpu_seconds:.2f}s")
    sub = report.subparser_rollup()
    lines.append(f"subparsers: p50 {sub['p50']:.0f}, "
                 f"p90 {sub['p90']:.0f}, max {sub['p100']:.0f}; "
                 f"forks {sub['forks']}, merges {sub['merges']}")
    latency = report.latency_rollup()
    lines.append("latency totals: " + ", ".join(
        f"{phase} {latency[phase]['total']:.2f}s"
        for phase in ("lex", "preprocess", "parse")))
    if verbose:
        lines.append("preprocessor rollup (p50/p90/p100):")
        for key, row in report.preprocessor_rollup().items():
            lines.append(f"  {key}: {row['p50']:.0f} / "
                         f"{row['p90']:.0f} / {row['p100']:.0f}")
    rollup = report.diagnostic_rollup()
    if rollup:
        lines.append("diagnostics: " + ", ".join(
            f"{key} {count}" for key, count in rollup.items()))
    failing = [record for record in report.records
               if record["status"] not in (STATUS_OK, STATUS_DEGRADED)]
    for record in failing[:10]:
        detail = record["error"] or "; ".join(record["failures"][:1])
        lines.append(f"  {record['status']}: {record['unit']}"
                     + (f" — {detail}" if detail else ""))
    if len(failing) > 10:
        lines.append(f"  ... and {len(failing) - 10} more")
    return "\n".join(lines)
