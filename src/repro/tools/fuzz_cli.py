"""Command-line interface: differential fuzzing of the two pipelines.

Usage::

    python -m repro.tools.fuzz_cli --seed 0 --units 50
    python -m repro.tools.fuzz_cli --units 500 --workers 4 \\
        --metrics fuzz.jsonl

Generates adversarial, valid-by-construction translation units
(:mod:`repro.corpus.fuzz`), differentially checks each against both
pipelines over sampled configurations (:mod:`repro.qa`), and ddmin-
shrinks any disagreement into a minimal reproducer.  Units are
scheduled through :mod:`repro.engine`'s worker pool with the engine's
per-unit deadlines, retries, and JSON-lines metrics (counterexamples
appear as ``counterexample`` events).

Exit status: 0 when every unit agreed, 1 when any disagreement was
found, 2 for usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.corpus.fuzz import FuzzSpec
from repro.engine import MetricsStream, format_report
from repro.qa.harness import run_fuzz


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="superc-fuzz",
        description="Differential per-configuration fuzzing of the "
                    "configuration-preserving pipeline against the "
                    "single-configuration oracle.")
    parser.add_argument("--units", type=int, default=50, metavar="N",
                        help="number of generated units (default 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="first unit seed (unit i uses seed+i)")
    parser.add_argument("--variables", type=int, default=3, metavar="N",
                        help="configuration variables per unit")
    parser.add_argument("--items", type=int, default=8, metavar="N",
                        help="generated items per unit")
    parser.add_argument("--weight", action="append", default=[],
                        metavar="FEATURE=N",
                        help="override a feature weight (features: "
                             + ", ".join(FuzzSpec.FEATURES) + ")")
    parser.add_argument("--max-configs", type=int, default=12,
                        metavar="N",
                        help="configurations sampled per unit")
    parser.add_argument("--no-parse", action="store_true",
                        help="compare token streams only (skip the "
                             "parser stage)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes")
    parser.add_argument("--timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="per-unit deadline (0 disables)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report disagreements without minimizing")
    parser.add_argument("--shrink-budget", type=int, default=200,
                        metavar="N",
                        help="max predicate evaluations per shrink")
    parser.add_argument("--metrics", metavar="PATH",
                        help="append JSON-lines events to PATH "
                             "('-' for stdout)")
    parser.add_argument("--json", action="store_true",
                        help="print the aggregate report as JSON")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-counterexample sources")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Chrome trace_event JSON of the "
                             "run: per-unit lanes plus the engine's "
                             "scheduling spans")
    return parser


def parse_weights(pairs: List[str],
                  parser: argparse.ArgumentParser) -> dict:
    weights = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or name not in FuzzSpec.FEATURES:
            parser.error(f"bad --weight {pair!r} (features: "
                         + ", ".join(FuzzSpec.FEATURES) + ")")
        try:
            weights[name] = int(value)
        except ValueError:
            parser.error(f"bad --weight {pair!r}: weight must be an "
                         "integer")
    return weights


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.units <= 0:
        parser.error("--units must be positive")
    spec = FuzzSpec(variables=args.variables, items=args.items,
                    weights=parse_weights(args.weight, parser))

    tracer = None
    if args.trace:
        from repro.obs import Tracer
        tracer = Tracer()
    sink = sys.stdout if args.metrics == "-" else args.metrics
    with MetricsStream(sink) as metrics:
        outcome = run_fuzz(units=args.units, seed=args.seed, spec=spec,
                           workers=args.workers,
                           timeout_seconds=args.timeout,
                           max_configs=args.max_configs,
                           parse=not args.no_parse,
                           do_shrink=not args.no_shrink,
                           shrink_budget=args.shrink_budget,
                           metrics=metrics, tracer=tracer)

    report = outcome.report
    if args.trace:
        from repro.obs import records_to_chrome_trace, \
            write_chrome_trace
        write_chrome_trace(args.trace,
                           records_to_chrome_trace(report.records,
                                                   tracer=tracer))
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.json:
        payload = report.summary()
        payload["counterexamples"] = [ce.to_record()
                                      for ce in outcome.counterexamples]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(report))
        for ce in outcome.counterexamples:
            print(f"counterexample (seed {ce.seed}, {ce.kind}, "
                  f"{ce.to_record()['original_lines']} -> "
                  f"{ce.to_record()['shrunk_lines']} lines):")
            print(f"  config: {ce.config or '{}'}")
            print(f"  {ce.detail}")
            if args.verbose:
                for line in ce.shrunk.splitlines():
                    print(f"  | {line}")
    return 0 if outcome.clean else 1


if __name__ == "__main__":
    sys.exit(main())
