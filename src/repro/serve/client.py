"""Client for the parse daemon: sockets in, Result protocol out.

:class:`ServeClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.server` over a Unix-domain socket or TCP.  The
synchronous helpers (:meth:`parse`, :meth:`invalidate`, :meth:`stats`,
:meth:`shutdown`) send one request and block for its response;
:meth:`submit` / :meth:`drain` pipeline many requests at once (burst
testing, editors batching a save-storm) and match responses by ``id``.

``parse`` wraps the response record in
:class:`repro.engine.UnitResult`, so a served parse satisfies the same
structural Result protocol (``status/ok/degraded/diagnostics/timing/
profile``) as a local ``repro.parse`` call — callers can switch
between in-process and daemon parsing without changing a line.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.results import UnitResult

DEFAULT_TIMEOUT = 60.0


class ServeError(ConnectionError):
    """The server connection failed or answered garbage."""


class ServeClient:
    """One connection to a running parse daemon."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None,
                 port: Optional[int] = None,
                 timeout: float = DEFAULT_TIMEOUT):
        if socket_path is None and port is None:
            raise ValueError("need socket_path or host/port")
        self.socket_path = socket_path
        self.host = host or "127.0.0.1"
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._recv_buffer = b""
        self._next_id = 0
        self._pending: Dict[Any, dict] = {}

    # -- connection ----------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ServeError(f"cannot connect to parse server: {exc}") \
                from exc
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire ----------------------------------------------------------

    def submit(self, op: str, **fields: Any) -> int:
        """Send one request without waiting; returns its ``id``."""
        self.connect()
        self._next_id += 1
        request = {"id": self._next_id, "op": op}
        request.update({key: value for key, value in fields.items()
                        if value is not None})
        payload = (json.dumps(request) + "\n").encode("utf-8")
        try:
            self._sock.sendall(payload)
        except OSError as exc:
            raise ServeError(f"send failed: {exc}") from exc
        return self._next_id

    def _read_response(self) -> dict:
        while b"\n" not in self._recv_buffer:
            try:
                chunk = self._sock.recv(65536)
            except OSError as exc:
                raise ServeError(f"receive failed: {exc}") from exc
            if not chunk:
                raise ServeError("server closed the connection")
            self._recv_buffer += chunk
        line, _sep, self._recv_buffer = \
            self._recv_buffer.partition(b"\n")
        try:
            return json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeError(f"bad response line: {exc}") from exc

    def wait_for(self, request_id: int) -> dict:
        """Response for ``request_id``; responses arriving out of order
        (sheds overtaking parses) are parked for their own waiters."""
        if request_id in self._pending:
            return self._pending.pop(request_id)
        while True:
            response = self._read_response()
            if response.get("id") == request_id:
                return response
            self._pending[response.get("id")] = response

    def request(self, op: str, **fields: Any) -> dict:
        """Send one request and block for its response."""
        return self.wait_for(self.submit(op, **fields))

    def drain(self, request_ids: List[int]) -> List[dict]:
        """Collect responses for a pipelined burst, in request order."""
        return [self.wait_for(request_id) for request_id in request_ids]

    # -- ops -----------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def parse(self, path: Optional[str] = None,
              text: Optional[str] = None,
              filename: Optional[str] = None,
              deadline: Optional[float] = None,
              fresh: bool = False) -> UnitResult:
        """Parse via the daemon; returns a Result-protocol view whose
        ``.record`` carries the full response (``cache``, ``tier``,
        ``serve`` timings included)."""
        response = self.request("parse", path=path, text=text,
                                filename=filename, deadline=deadline,
                                fresh=fresh or None)
        # Shed/timeout responses carry no record body; keep the
        # UnitResult view total anyway.
        response.setdefault("unit", path or filename or "<input>")
        return UnitResult(response)

    def invalidate(self, path: str,
                   text: Optional[str] = None) -> dict:
        return self.request("invalidate", path=path, text=text)

    def stats(self) -> dict:
        response = self.request("stats")
        return response.get("stats") or {}

    def shutdown(self) -> dict:
        return self.request("shutdown")
