"""Pipeline-wide observability: tracing, counters, and profiles.

SuperC's evaluation (§5, Tables 2–3, Figures 8–10) is a measurement
story — subparser counts, hoisting blowup, per-phase latency — and
this subsystem makes the same measurements fall out of any normal run
instead of special evaluation passes:

* :class:`Tracer` — a hierarchical span tracer
  (``tracer.span("preprocess")`` / ``span("fmlr")`` / …) plus a
  counters/histograms registry and instant events (FMLR fork/merge,
  kill-switch trips, confined diagnostics);
* :data:`NULL_TRACER` — the zero-overhead default: every hook is a
  no-op on a shared singleton, so the un-traced hot path allocates no
  event objects (guarded by ``benchmarks/bench_scaling.py``);
* :class:`Profile` — the per-unit digest attached to
  ``SuperCResult.profile``: per-phase wall time, BDD/LALR/cache
  counters, and histogram summaries, aggregated by ``repro.engine``
  into corpus rollups;
* exporters — Chrome ``trace_event`` JSON (open in ``chrome://tracing``
  or Perfetto), a plain-text flamegraph, and the trace validator used
  by the ``trace-smoke`` Make target.

Fault-tolerance events ride the same counters registry: the serve
worker pool counts ``serve.worker.{spawn,crash,restart,recycle}`` and
``serve.breaker.trip``, warm-state journal replay counts
``serve.journal.{resume,discard}``, and the result cache counts
quarantined blobs under ``engine.result_cache.corrupt`` — so a
daemon's ``stats`` op and its Chrome trace tell the same recovery
story (exercised by the ``chaos-smoke`` Make target).

Typical use::

    from repro.obs import Tracer, to_chrome_trace

    tracer = Tracer()
    superc = SuperC(fs, tracer=tracer)
    result = superc.parse_source(source, "unit.c")
    result.profile.format_summary()        # per-phase + counters
    json.dump(to_chrome_trace(tracer), open("trace.json", "w"))
"""

from repro.obs.exporters import (format_flamegraph, records_to_chrome_trace,
                                 to_chrome_trace, validate_chrome_trace,
                                 write_chrome_trace)
from repro.obs.profile import Profile
from repro.obs.tracer import (NULL_TRACER, NullTracer, Span, TraceEvent,
                              Tracer)

__all__ = [
    "NULL_TRACER", "NullTracer", "Profile", "Span", "TraceEvent",
    "Tracer", "format_flamegraph", "records_to_chrome_trace",
    "to_chrome_trace", "validate_chrome_trace", "write_chrome_trace",
]
