"""Unit tests for the LALR(1) table generator and plain LR engine."""

import pytest

from repro.lexer import lex, TokenKind
from repro.parser import (Assoc, Build, Grammar, GrammarError, LRParser,
                          Node, ParseError, generate)


def tokens_of(text):
    return [t for t in lex(text)
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


def classify_text(token):
    """Terminal = token text for identifiers/punctuators; NUM for numbers."""
    if token.kind is TokenKind.NUMBER:
        return "NUM"
    return token.text


def make_parser(grammar, **kwargs):
    return LRParser(generate(grammar), classify_text, **kwargs)


class TestGrammarValidation:
    def test_unproductive_rejected(self):
        g = Grammar("S")
        g.rule("S", ["S", "a"])  # no base case
        with pytest.raises(GrammarError):
            g.finish()

    def test_unknown_complete_mark_rejected(self):
        g = Grammar("S")
        g.rule("S", ["a"])
        g.mark_complete("Nope")
        with pytest.raises(GrammarError):
            g.finish()

    def test_missing_start_rejected(self):
        g = Grammar("S")
        g.rule("T", ["a"])
        with pytest.raises(GrammarError):
            g.finish()

    def test_terminal_classification(self):
        g = Grammar("S")
        g.rule("S", ["T", "x"])
        g.rule("T", ["y"])
        g.finish()
        assert g.is_terminal("x")
        assert g.is_terminal("y")
        assert not g.is_terminal("T")


class TestSimpleGrammars:
    def test_single_token(self):
        g = Grammar("S")
        g.rule("S", ["a"])
        value = make_parser(g).parse(tokens_of("a"))
        assert isinstance(value, Node)
        assert value.name == "S"

    def test_left_recursion(self):
        g = Grammar("L")
        g.rule("L", ["L", "a"], build=Build.LIST)
        g.rule("L", ["a"], build=Build.LIST)
        value = make_parser(g).parse(tokens_of("a a a a"))
        assert isinstance(value, tuple)
        assert [t.text for t in value] == ["a"] * 4

    def test_right_recursion(self):
        g = Grammar("R")
        g.rule("R", ["a", "R"])
        g.rule("R", ["a"])
        value = make_parser(g).parse(tokens_of("a a a"))
        depth = 0
        node = value
        while isinstance(node, Node):
            depth += 1
            node = node.children[-1]
        assert depth == 3

    def test_empty_production(self):
        g = Grammar("S")
        g.rule("S", ["A", "b"])
        g.rule("A", [])
        g.rule("A", ["a"])
        parser = make_parser(g)
        assert parser.parse(tokens_of("b")).name == "S"
        assert parser.parse(tokens_of("a b")).name == "S"

    def test_parse_error_reports_expected(self):
        g = Grammar("S")
        g.rule("S", ["a", "b"])
        with pytest.raises(ParseError) as info:
            make_parser(g).parse(tokens_of("a c"))
        assert "expected" in str(info.value)
        assert "b" in info.value.expected

    def test_error_on_extra_input(self):
        g = Grammar("S")
        g.rule("S", ["a"])
        with pytest.raises(ParseError):
            make_parser(g).parse(tokens_of("a a"))

    def test_error_on_truncated_input(self):
        g = Grammar("S")
        g.rule("S", ["a", "b"])
        with pytest.raises(ParseError):
            make_parser(g).parse(tokens_of("a"))


class TestExpressionGrammar:
    @pytest.fixture()
    def expr_grammar(self):
        g = Grammar("E")
        g.rule("E", ["E", "+", "T"], node_name="Add")
        g.rule("E", ["T"], build=Build.PASSTHROUGH)
        g.rule("T", ["T", "*", "F"], node_name="Mul")
        g.rule("T", ["F"], build=Build.PASSTHROUGH)
        g.rule("F", ["(", "E", ")"], build=Build.PASSTHROUGH)
        g.rule("F", ["NUM"], build=Build.PASSTHROUGH)
        return g

    def test_no_conflicts(self, expr_grammar):
        tables = generate(expr_grammar)
        assert tables.conflicts == []

    def test_precedence_by_structure(self, expr_grammar):
        value = make_parser(expr_grammar).parse(tokens_of("1 + 2 * 3"))
        assert value.name == "Add"
        assert value.children[2].name == "Mul"

    def test_parens(self, expr_grammar):
        value = make_parser(expr_grammar).parse(tokens_of("(1 + 2) * 3"))
        assert value.name == "Mul"
        # Passthrough dropped parens to reuse the Add node directly.
        add = value.children[0]
        assert add.name == "Add"

    def test_deep_nesting(self, expr_grammar):
        text = "(" * 50 + "1" + ")" * 50
        value = make_parser(expr_grammar).parse(tokens_of(text))
        assert value.text == "1"


class TestPrecedenceDeclarations:
    @pytest.fixture()
    def ambiguous_expr(self):
        # E -> E+E | E*E | NUM needs precedence to disambiguate.
        g = Grammar("E")
        g.precedence(Assoc.LEFT, ["+"])
        g.precedence(Assoc.LEFT, ["*"])
        g.rule("E", ["E", "+", "E"], node_name="Add")
        g.rule("E", ["E", "*", "E"], node_name="Mul")
        g.rule("E", ["NUM"], build=Build.PASSTHROUGH)
        return g

    def test_resolved_without_recorded_conflicts(self, ambiguous_expr):
        # Precedence-resolved conflicts are intentional, not recorded.
        tables = generate(ambiguous_expr)
        assert tables.conflicts == []

    def test_star_binds_tighter(self, ambiguous_expr):
        value = make_parser(ambiguous_expr).parse(tokens_of("1 + 2 * 3"))
        assert value.name == "Add"

    def test_left_assoc(self, ambiguous_expr):
        value = make_parser(ambiguous_expr).parse(tokens_of("1 + 2 + 3"))
        assert value.name == "Add"
        assert value.children[0].name == "Add"  # (1+2)+3

    def test_right_assoc(self):
        g = Grammar("E")
        g.precedence(Assoc.RIGHT, ["="])
        g.rule("E", ["E", "=", "E"], node_name="Assign")
        g.rule("E", ["NUM"], build=Build.PASSTHROUGH)
        value = make_parser(g).parse(tokens_of("1 = 2 = 3"))
        assert value.children[2].name == "Assign"  # 1=(2=3)

    def test_nonassoc_rejects_chain(self):
        g = Grammar("E")
        g.precedence(Assoc.NONASSOC, ["<"])
        g.rule("E", ["E", "<", "E"], node_name="Less")
        g.rule("E", ["NUM"], build=Build.PASSTHROUGH)
        parser = make_parser(g)
        assert parser.parse(tokens_of("1 < 2")).name == "Less"
        with pytest.raises(ParseError):
            parser.parse(tokens_of("1 < 2 < 3"))


class TestDanglingElse:
    @pytest.fixture()
    def if_grammar(self):
        g = Grammar("S")
        g.rule("S", ["if", "(", "NUM", ")", "S"], node_name="If")
        g.rule("S", ["if", "(", "NUM", ")", "S", "else", "S"],
               node_name="IfElse")
        g.rule("S", ["x", ";"], node_name="Stmt")
        return g

    def test_shift_preference_recorded(self, if_grammar):
        tables = generate(if_grammar)
        kinds = {c.kind for c in tables.conflicts}
        assert kinds == {"shift/reduce"}

    def test_else_binds_to_nearest_if(self, if_grammar):
        value = make_parser(if_grammar).parse(
            tokens_of("if (1) if (2) x; else x;"))
        assert value.name == "If"
        assert value.children[-1].name == "IfElse"


class TestLALRButNotSLR:
    def test_classic_lalr_grammar(self):
        # S -> L = R | R ; L -> * R | id ; R -> L
        # SLR(1) has a shift/reduce conflict here; LALR(1) does not.
        g = Grammar("S")
        g.rule("S", ["L", "=", "R"], node_name="Assign")
        g.rule("S", ["R"], build=Build.PASSTHROUGH)
        g.rule("L", ["*", "R"], node_name="Deref")
        g.rule("L", ["id"], build=Build.PASSTHROUGH)
        g.rule("R", ["L"], build=Build.PASSTHROUGH)
        tables = generate(g)
        assert tables.conflicts == []
        parser = LRParser(tables, classify_text)
        value = parser.parse(tokens_of("* id = id"))
        assert value.name == "Assign"

    def test_nullable_chain_lookaheads(self):
        # Exercises the `reads` relation through nullable nonterminals.
        g = Grammar("S")
        g.rule("S", ["A", "B", "c"])
        g.rule("A", ["a"])
        g.rule("A", [])
        g.rule("B", ["b"])
        g.rule("B", [])
        tables = generate(g)
        assert tables.conflicts == []
        parser = LRParser(tables, classify_text)
        for text in ["c", "a c", "b c", "a b c"]:
            assert parser.parse(tokens_of(text)).name == "S"


class TestReduceReduce:
    def test_earlier_production_wins(self):
        g = Grammar("S")
        g.rule("S", ["A"], node_name="ViaA")
        g.rule("S", ["B"], node_name="ViaB")
        g.rule("A", ["x"])
        g.rule("B", ["x"])
        tables = generate(g)
        assert any(c.kind == "reduce/reduce" for c in tables.conflicts)
        value = LRParser(tables, classify_text).parse(tokens_of("x"))
        assert value.name == "ViaA"


class TestBuildAnnotations:
    def test_layout_drops_value(self):
        g = Grammar("S")
        g.rule("S", ["Semi", "a"])
        g.rule("Semi", [";"], build=Build.LAYOUT)
        value = make_parser(g).parse(tokens_of("; a"))
        assert len(value.children) == 1
        assert value.children[0].text == "a"

    def test_action_runs_user_code(self):
        g = Grammar("S")
        g.rule("S", ["NUM", "+", "NUM"], build=Build.ACTION,
               action=lambda values, ctx: int(values[0].text) +
               int(values[2].text))
        assert make_parser(g).parse(tokens_of("20 + 22")) == 42

    def test_action_requires_callable(self):
        g = Grammar("S")
        with pytest.raises(GrammarError):
            g.rule("S", ["a"], build=Build.ACTION)

    def test_list_with_separator(self):
        g = Grammar("L")
        g.rule("L", ["L", "Comma", "NUM"], build=Build.LIST)
        g.rule("L", ["NUM"], build=Build.LIST)
        g.rule("Comma", [","], build=Build.LAYOUT)
        value = make_parser(g).parse(tokens_of("1, 2, 3"))
        assert [t.text for t in value] == ["1", "2", "3"]


class TestTablesIntrospection:
    def test_num_states_positive(self):
        g = Grammar("S")
        g.rule("S", ["a"])
        tables = generate(g)
        assert tables.num_states >= 3

    def test_expected_terminals(self):
        g = Grammar("S")
        g.rule("S", ["a", "b"])
        tables = generate(g)
        assert tables.expected_terminals(0) == ["a"]


class TestTableSerialization:
    """to_blob/from_blob round-tripping (the engine's table cache)."""

    def make_expr_grammar(self):
        g = Grammar("E")
        g.rule("E", ["E", "+", "T"], node_name="Add")
        g.rule("E", ["T"], build=Build.PASSTHROUGH)
        g.rule("T", ["T", "*", "F"], node_name="Mul")
        g.rule("T", ["F"], build=Build.PASSTHROUGH)
        g.rule("F", ["(", "E", ")"], build=Build.PASSTHROUGH)
        g.rule("F", ["NUM"], build=Build.PASSTHROUGH)
        return g

    def test_round_trip_parses_identically(self):
        from repro.parser.ast import dump
        from repro.parser.lalr import from_blob, to_blob
        fresh = generate(self.make_expr_grammar())
        clone = from_blob(to_blob(fresh))
        assert clone.num_states == fresh.num_states
        assert clone.action == fresh.action
        assert clone.goto == fresh.goto
        tokens = tokens_of("1 + 2 * (3 + 4)")
        fresh_value = LRParser(fresh, classify_text).parse(list(tokens))
        clone_value = LRParser(clone, classify_text).parse(list(tokens))
        assert dump(clone_value) == dump(fresh_value)

    def test_version_stamp_enforced(self):
        import pickle

        from repro.parser.lalr import (TABLE_BLOB_MAGIC, TableBlobError,
                                       from_blob, to_blob)
        blob = to_blob(generate(self.make_expr_grammar()))
        payload = pickle.loads(blob)
        assert payload["magic"] == TABLE_BLOB_MAGIC
        payload["version"] += 1
        with pytest.raises(TableBlobError):
            from_blob(pickle.dumps(payload))

    def test_garbage_rejected(self):
        from repro.parser.lalr import TableBlobError, from_blob
        with pytest.raises(TableBlobError):
            from_blob(b"not a blob")
        import pickle
        with pytest.raises(TableBlobError):
            from_blob(pickle.dumps({"magic": b"other", "version": 1}))
