"""Unit tests for the ROBDD substrate."""

import pytest

from repro.bdd import BDDManager


@pytest.fixture()
def mgr():
    return BDDManager()


class TestTerminals:
    def test_true_false_identity(self, mgr):
        assert mgr.true is mgr.constant(True)
        assert mgr.false is mgr.constant(False)
        assert mgr.true.is_true()
        assert mgr.false.is_false()
        assert mgr.true.is_terminal()

    def test_satisfiability(self, mgr):
        assert mgr.true.is_satisfiable()
        assert not mgr.false.is_satisfiable()
        assert mgr.true.is_tautology()
        assert not mgr.false.is_tautology()


class TestVariables:
    def test_var_interned(self, mgr):
        assert mgr.var("A") is mgr.var("A")

    def test_distinct_vars_distinct_nodes(self, mgr):
        assert mgr.var("A") is not mgr.var("B")

    def test_nvar(self, mgr):
        a = mgr.var("A")
        assert mgr.nvar("A") is ~a

    def test_variable_names_order(self, mgr):
        mgr.var("X")
        mgr.var("Y")
        mgr.var("X")
        assert mgr.variable_names == ("X", "Y")


class TestAlgebra:
    def test_canonicity_same_function_same_node(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        left = ~(a & b)
        right = ~a | ~b
        assert left is right  # De Morgan via hash-consing

    def test_involution(self, mgr):
        a = mgr.var("A")
        assert ~~a is a

    def test_excluded_middle(self, mgr):
        a = mgr.var("A")
        assert (a | ~a) is mgr.true
        assert (a & ~a) is mgr.false

    def test_absorption(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        assert (a | (a & b)) is a
        assert (a & (a | b)) is a

    def test_xor(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        assert (a ^ a) is mgr.false
        assert (a ^ mgr.false) is a
        assert (a ^ mgr.true) is ~a
        assert (a ^ b) is ((a & ~b) | (~a & b))

    def test_implies_equiv(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        assert a.implies(b) is (~a | b)
        assert a.equiv(a) is mgr.true
        assert a.equiv(~a) is mgr.false

    def test_conjoin_disjoin(self, mgr):
        a, b, c = mgr.var("A"), mgr.var("B"), mgr.var("C")
        assert mgr.conjoin([a, b, c]) is (a & b & c)
        assert mgr.disjoin([a, b, c]) is (a | b | c)
        assert mgr.conjoin([]) is mgr.true
        assert mgr.disjoin([]) is mgr.false

    def test_cross_manager_rejected(self, mgr):
        other = BDDManager()
        with pytest.raises(ValueError):
            mgr.apply_and(mgr.var("A"), other.var("A"))


class TestEvaluation:
    def test_evaluate(self, mgr):
        f = (mgr.var("A") & ~mgr.var("B")) | mgr.var("C")
        assert f.evaluate({"A": True, "B": False, "C": False})
        assert not f.evaluate({"A": True, "B": True, "C": False})
        assert f.evaluate({"C": True})

    def test_evaluate_missing_defaults_false(self, mgr):
        assert not mgr.var("A").evaluate({})

    def test_restrict(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        f = a & b
        assert f.restrict({"A": True}) is b
        assert f.restrict({"A": False}) is mgr.false
        assert f.restrict({"A": True, "B": True}) is mgr.true

    def test_restrict_unknown_var_is_noop(self, mgr):
        a = mgr.var("A")
        assert a.restrict({"Z": True}) is a

    def test_support(self, mgr):
        f = (mgr.var("A") & mgr.var("B")) | mgr.var("A")
        assert f.support() == ("A",)
        g = mgr.var("A") ^ mgr.var("B")
        assert g.support() == ("A", "B")
        assert mgr.true.support() == ()


class TestCounting:
    def test_sat_count_var(self, mgr):
        assert mgr.var("A").sat_count() == 1

    def test_sat_count_with_extra_vars(self, mgr):
        assert mgr.var("A").sat_count(["A", "B"]) == 2

    def test_sat_count_terminals(self, mgr):
        assert mgr.true.sat_count(["A", "B"]) == 4
        assert mgr.false.sat_count(["A", "B"]) == 0

    def test_sat_count_requires_support_coverage(self, mgr):
        f = mgr.var("A") & mgr.var("B")
        with pytest.raises(ValueError):
            f.sat_count(["A"])

    def test_one_sat(self, mgr):
        f = mgr.var("A") & ~mgr.var("B")
        model = f.one_sat()
        assert model == {"A": True, "B": False}
        assert mgr.false.one_sat() is None
        assert mgr.true.one_sat() == {}

    def test_all_sat_cubes_cover_function(self, mgr):
        a, b, c = mgr.var("A"), mgr.var("B"), mgr.var("C")
        f = (a & b) | c
        rebuilt = mgr.false
        for cube in f.all_sat():
            term = mgr.conjoin(
                mgr.var(n) if v else ~mgr.var(n) for n, v in cube.items())
            rebuilt = rebuilt | term
        assert rebuilt is f


class TestQuantification:
    def test_exists_removes_variable(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        f = a & b
        assert mgr.exists(["A"], f) is b
        assert mgr.exists(["A", "B"], f) is mgr.true

    def test_exists_of_contradiction(self, mgr):
        a = mgr.var("A")
        assert mgr.exists(["A"], a & ~a) is mgr.false

    def test_forall(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        assert mgr.forall(["A"], a | b) is b
        assert mgr.forall(["A"], a | ~a) is mgr.true
        assert mgr.forall(["A"], a) is mgr.false

    def test_unknown_variable_ignored(self, mgr):
        a = mgr.var("A")
        assert mgr.exists(["ZZZ"], a) is a
        assert mgr.forall(["ZZZ"], a) is a

    def test_project_onto(self, mgr):
        a, b, c = mgr.var("A"), mgr.var("B"), mgr.var("C")
        f = (a & b) | c
        shadow = mgr.project_onto(["A"], f)
        # With B and C free, any A admits a solution.
        assert shadow is mgr.true
        g = a & b
        assert mgr.project_onto(["A"], g) is a

    def test_exists_forall_duality(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        f = (a & ~b) | (~a & b)
        assert mgr.exists(["A"], f) is ~mgr.forall(["A"], ~f)


class TestRendering:
    def test_terminal_strings(self, mgr):
        assert mgr.true.to_expr_string() == "1"
        assert mgr.false.to_expr_string() == "0"

    def test_var_string(self, mgr):
        assert mgr.var("CONFIG_X").to_expr_string() == "CONFIG_X"

    def test_negated_var_string(self, mgr):
        assert (~mgr.var("A")).to_expr_string() == "!A"
