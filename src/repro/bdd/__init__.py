"""Hash-consed ROBDD library used for presence conditions.

See :mod:`repro.bdd.bdd` for the implementation.
"""

from repro.bdd.bdd import BDDManager, BDDNode

__all__ = ["BDDManager", "BDDNode"]
