"""Evaluation instrumentation for the paper's tables and figures."""

from repro.eval.latency import (LatencyDistribution, LatencySample,
                                measure_gcc_like, measure_superc,
                                measure_typechef_proxy, unit_size_bytes)
from repro.eval.subparsers import (SubparserDistribution, figure8,
                                   measure_level)
from repro.eval.usage import (DirectiveCounts, TOOLS_VIEW_ROWS,
                              developers_view, percentiles,
                              tools_view, top_included_headers,
                              unit_statistics)

__all__ = [
    "DirectiveCounts", "LatencyDistribution", "LatencySample",
    "SubparserDistribution", "TOOLS_VIEW_ROWS", "developers_view",
    "figure8", "measure_gcc_like", "measure_level", "measure_superc",
    "measure_typechef_proxy", "percentiles", "tools_view",
    "top_included_headers", "unit_size_bytes", "unit_statistics",
]
