"""File includes: search paths, guard detection, reinclusion (§2.1).

The preprocessor resolves ``#include`` directives against a
:class:`FileSystem` abstraction (real directories for checked-out
code, an in-memory mapping for tests and the synthetic corpus).

Guard macros are detected gcc-style: a header whose first directive is
``#ifndef G`` (or ``#if !defined(G)``), immediately followed by
``#define G``, and whose matching ``#endif`` ends the file, has guard
``G``.  Guards feed two behaviours: rule 4a of the condition conversion
(``defined(G)`` for free G is *false*, §3.2) and the skip-reinclusion
optimization ("Reinclude when guard macro is not false", Table 1).
"""

from __future__ import annotations

import os
import posixpath
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lexer import lex_logical_lines
from repro.lexer.tokens import TokenKind


class FileSystem:
    """Abstract file access for the preprocessor."""

    def read(self, path: str) -> Optional[str]:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        return self.read(path) is not None


class DictFileSystem(FileSystem):
    """In-memory files keyed by normalized posix paths."""

    def __init__(self, files: Dict[str, str]):
        self.files = {posixpath.normpath(path): text
                      for path, text in files.items()}

    def read(self, path: str) -> Optional[str]:
        return self.files.get(posixpath.normpath(path))

    def exists(self, path: str) -> bool:
        return posixpath.normpath(path) in self.files


class RealFileSystem(FileSystem):
    """Reads from the actual filesystem."""

    def read(self, path: str) -> Optional[str]:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                return f.read()
        except OSError:
            return None

    def exists(self, path: str) -> bool:
        return os.path.isfile(path)


class IncludeResolver:
    """Maps ``#include`` operands to paths, per C search rules."""

    def __init__(self, fs: FileSystem, include_paths: Sequence[str] = ()):
        self.fs = fs
        self.include_paths = list(include_paths)

    def resolve(self, name: str, quoted: bool,
                includer: Optional[str]) -> Optional[str]:
        """Resolve an include operand to a readable path, or None.

        Quoted includes search the including file's directory first,
        then the include paths; angle includes only the include paths.
        """
        candidates: List[str] = []
        if quoted and includer is not None:
            directory = posixpath.dirname(includer)
            candidates.append(posixpath.join(directory, name)
                              if directory else name)
        elif quoted:
            candidates.append(name)
        for root in self.include_paths:
            candidates.append(posixpath.join(root, name))
        for candidate in candidates:
            normalized = posixpath.normpath(candidate)
            if self.fs.exists(normalized):
                return normalized
        return None


def detect_guard(text: str, filename: str = "<header>") -> Optional[str]:
    """Return the guard macro name if the file is guard-protected."""
    try:
        lines = [line for line in lex_logical_lines(text, filename) if line]
    except Exception:
        return None
    directives = [line for line in lines
                  if line and line[0].kind is TokenKind.HASH]
    if len(directives) < 3:
        return None
    first = directives[0]
    guard = _guard_of_opening(first)
    if guard is None:
        return None
    # The guard's #define must be the next directive.
    second = directives[1]
    if len(second) < 3 or second[1].text != "define" or \
            second[2].text != guard:
        return None
    # The last directive must be #endif, the last line of the file,
    # and it must close the opening conditional (depth balance).
    last = directives[-1]
    if len(last) < 2 or last[1].text != "endif":
        return None
    if lines[0] is not first or lines[-1] is not last:
        return None
    depth = 0
    for line in directives:
        keyword = line[1].text if len(line) > 1 else ""
        if keyword in ("if", "ifdef", "ifndef"):
            depth += 1
        elif keyword == "endif":
            depth -= 1
            if depth == 0 and line is not last:
                return None  # the opening conditional closes early
    if depth != 0:
        return None
    return guard


def _guard_of_opening(line) -> Optional[str]:
    """Extract G from `#ifndef G` or `#if !defined(G)` / `#if !defined G`."""
    if len(line) < 3:
        return None
    keyword = line[1].text
    if keyword == "ifndef" and line[2].kind is TokenKind.IDENTIFIER:
        return line[2].text
    if keyword != "if":
        return None
    rest = line[2:]
    texts = [token.text for token in rest]
    if texts[:2] == ["!", "defined"]:
        if len(texts) >= 5 and texts[2] == "(" and texts[4] == ")":
            return texts[3]
        if len(texts) >= 3 and rest[2].kind is TokenKind.IDENTIFIER:
            return texts[2]
    return None
