"""Delta-debugging minimizer for disagreeing inputs.

Classic ddmin over logical lines, then a second pass that drops
individual tokens within lines, both under a fixed predicate-call
budget so shrinking a pathological counterexample cannot stall a fuzz
run.  The predicate receives candidate source text and returns True
when the candidate still exhibits the disagreement.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class ShrinkBudget:
    """Caps the number of predicate evaluations."""

    def __init__(self, limit: int = 400):
        self.limit = limit
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit


def _check(predicate: Callable[[str], bool], text: str,
           budget: ShrinkBudget) -> bool:
    if budget.exhausted:
        return False
    budget.used += 1
    try:
        return bool(predicate(text))
    except Exception:
        # A predicate crash means "not the same disagreement".
        return False


def _ddmin(pieces: List[str], joiner: str,
           predicate: Callable[[str], bool],
           budget: ShrinkBudget) -> List[str]:
    """Minimize ``pieces`` such that predicate(join(pieces)) holds."""
    granularity = 2
    while len(pieces) >= 2 and not budget.exhausted:
        chunk = max(1, len(pieces) // granularity)
        reduced = False
        start = 0
        while start < len(pieces):
            candidate = pieces[:start] + pieces[start + chunk:]
            if candidate and _check(predicate, joiner.join(candidate),
                                    budget):
                pieces = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Retry at the same offset: the next chunk shifted in.
            else:
                start += chunk
        if not reduced:
            if granularity >= len(pieces):
                break
            granularity = min(len(pieces), granularity * 2)
    return pieces


def shrink_lines(text: str, predicate: Callable[[str], bool],
                 budget: ShrinkBudget) -> str:
    lines = text.split("\n")
    lines = _ddmin(lines, "\n", predicate, budget)
    return "\n".join(lines)


def shrink_line_tokens(text: str, predicate: Callable[[str], bool],
                       budget: ShrinkBudget) -> str:
    """Drop whitespace-separated chunks within each line.

    Splitting on whitespace (not lexing) keeps the shrinker
    independent of the lexer under test — it must be able to minimize
    inputs the lexer mishandles.
    """
    lines = text.split("\n")
    for row, line in enumerate(lines):
        words = line.split(" ")
        if len(words) < 2:
            continue
        index = 0
        while index < len(words) and not budget.exhausted:
            candidate_words = words[:index] + words[index + 1:]
            candidate_lines = list(lines)
            candidate_lines[row] = " ".join(candidate_words)
            if _check(predicate, "\n".join(candidate_lines), budget):
                words = candidate_words
                lines = candidate_lines
            else:
                index += 1
    return "\n".join(lines)


def shrink(text: str, predicate: Callable[[str], bool],
           budget: Optional[ShrinkBudget] = None) -> str:
    """Minimize ``text`` while ``predicate`` keeps holding.

    Returns the smallest reproducer found within budget; if the
    original input no longer reproduces (flaky predicate) it is
    returned unchanged.
    """
    budget = budget or ShrinkBudget()
    if not _check(predicate, text, budget):
        return text
    current = text
    while not budget.exhausted:
        candidate = shrink_lines(current, predicate, budget)
        candidate = shrink_line_tokens(candidate, predicate, budget)
        if candidate == current:
            break
        current = candidate
    return current
