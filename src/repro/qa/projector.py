"""Projection of configuration-preserving results onto one configuration.

These helpers restrict the token tree and AST produced by the
configuration-preserving pipeline to a single concrete configuration so
they can be compared token-for-token (and node-for-node) against the
single-configuration oracle.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cpp import project as project_tree
from repro.lexer.tokens import Token, TokenKind
from repro.parser import ast as ast_mod
from repro.qa.configs import assignment_for

_LAYOUT_KINDS = (TokenKind.NEWLINE, TokenKind.EOF)


def project_tokens(unit, defines: Dict[str, str]) -> List[Token]:
    """Project a compilation unit's token tree onto one configuration."""
    return project_tree(unit.tree, assignment_for(unit, defines))


def project_ast(result, defines: Dict[str, str]):
    """Project a SuperC parse's AST onto one configuration, resolving
    every :class:`StaticChoice` node."""
    unit = getattr(result, "unit", result)
    return ast_mod.project(result.ast, assignment_for(unit, defines))


def token_texts(tokens: Sequence[Token]) -> List[str]:
    """Token texts with layout-only kinds (NEWLINE/EOF) dropped."""
    return [t.text for t in tokens if t.kind not in _LAYOUT_KINDS]


def tokens_match(left: Sequence[Token], right: Sequence[Token]) -> bool:
    """Compare two token streams by (kind, text), ignoring layout."""
    left = [t for t in left if t.kind not in _LAYOUT_KINDS]
    right = [t for t in right if t.kind not in _LAYOUT_KINDS]
    if len(left) != len(right):
        return False
    return all(a.same_text(b) for a, b in zip(left, right))


def diff_tokens(left: Sequence[Token], right: Sequence[Token]) -> str:
    """Human-readable first-difference summary of two token streams."""
    left_texts = token_texts(left)
    right_texts = token_texts(right)
    for index, (a, b) in enumerate(zip(left_texts, right_texts)):
        if a != b:
            return (f"first difference at #{index}: {a!r} != {b!r}\n"
                    f"left:  ... "
                    f"{' '.join(left_texts[max(0, index - 5):index + 5])}\n"
                    f"right: ... "
                    f"{' '.join(right_texts[max(0, index - 5):index + 5])}")
    return (f"length mismatch: {len(left_texts)} vs {len(right_texts)}\n"
            f"left tail:  {' '.join(left_texts[-8:])}\n"
            f"right tail: {' '.join(right_texts[-8:])}")


def ast_signature(value) -> object:
    """Structural signature of an AST for cross-parse comparison.

    Tokens compare by stream identity inside the parser, so ``==``
    fails across independent parses; this reduces both sides to
    hashable (kind, text) structure.  StaticChoice branches become a
    frozenset so branch order does not matter.
    """
    if value is None:
        return None
    if isinstance(value, Token):
        return ("tok", value.kind.value, value.text)
    if isinstance(value, ast_mod.Node):
        return ("node", value.name,
                tuple(ast_signature(c) for c in value.children))
    if isinstance(value, ast_mod.StaticChoice):
        return ("choice",
                frozenset((c.to_expr_string(), ast_signature(v))
                          for c, v in value.branches))
    if isinstance(value, tuple):
        return ("list", tuple(ast_signature(v) for v in value))
    return ("other", repr(value))
