"""Tests for grammar/table introspection."""

import pytest

from repro.cgrammar import c_tables
from repro.parser import Build, Grammar, generate
from repro.parser.inspect import report


@pytest.fixture()
def if_tables():
    g = Grammar("S")
    g.rule("S", ["if", "(", "NUM", ")", "S"], node_name="If")
    g.rule("S", ["if", "(", "NUM", ")", "S", "else", "S"],
           node_name="IfElse")
    g.rule("S", ["x", ";"], node_name="Stmt")
    return generate(g)


class TestSummary:
    def test_summary_fields(self, if_tables):
        text = report(if_tables).summary()
        assert "start symbol 'S'" in text
        assert "productions:" in text
        assert "1 shift/reduce" in text

    def test_no_conflicts_summary(self):
        g = Grammar("S")
        g.rule("S", ["a"])
        text = report(generate(g)).summary()
        assert "(none)" in text

    def test_c_grammar_summary(self):
        text = report(c_tables()).summary()
        assert "start symbol 'TranslationUnit'" in text
        assert "shift/reduce" in text


class TestStateDump:
    def test_initial_state(self, if_tables):
        text = report(if_tables).describe_state(0)
        assert "state 0" in text
        assert "S -> . if ( NUM ) S" in text
        assert "shift" in text
        assert "goto S" in text

    def test_accept_state_shown(self, if_tables):
        rep = report(if_tables)
        dumps = [rep.describe_state(s)
                 for s in range(if_tables.num_states)]
        assert any("accept" in text for text in dumps)


class TestConflictExplanation:
    def test_dangling_else_explained(self, if_tables):
        rep = report(if_tables)
        (conflict,) = if_tables.conflicts
        text = rep.explain_conflict(conflict)
        assert "shift/reduce" in text
        assert "'else'" in text
        assert "[shift]" in text
        assert "[reduce]" in text
        # The competing items are the two if-forms.
        assert "S -> if ( NUM ) S ." in text
        assert "S -> if ( NUM ) S . else S" in text

    def test_conflict_report_no_conflicts(self):
        g = Grammar("S")
        g.rule("S", ["a"])
        assert report(generate(g)).conflict_report() == "no conflicts"

    def test_c_grammar_conflict_report(self):
        text = report(c_tables()).conflict_report()
        assert "'else'" in text  # dangling else present
        assert text.count("shift/reduce") == len(c_tables().conflicts)
