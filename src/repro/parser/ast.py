"""AST nodes, static choice nodes, and annotation-driven construction.

SuperC's AST facility (§5.1): by default a reduction creates a generic
node named after the production with all children's semantic values;
the ``layout``, ``passthrough``, ``list``, and ``action`` annotations
override that default.  Static choice nodes embed configurations: each
branch pairs a presence condition with an alternative subtree.

Semantic values are immutable (nodes and tuples) because FMLR
subparsers share stack tails after forking.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.lexer.tokens import Token, TokenKind
from repro.parser.grammar import Build, Production


class Node:
    """A generic AST node: a name and a tuple of children.

    Children are nodes, tokens, tuples (from ``list`` productions), or
    :class:`StaticChoice` nodes.
    """

    __slots__ = ("name", "children")

    def __init__(self, name: str, children: Tuple[Any, ...]):
        self.name = name
        self.children = children

    def __repr__(self) -> str:
        return f"Node({self.name}, {len(self.children)} children)"

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Node) and self.name == other.name
                and self.children == other.children)

    def __hash__(self) -> int:
        return hash((self.name, self.children))


class StaticChoice:
    """A configuration choice point: ``(condition, subtree)`` branches.

    The conditions of a choice node's branches are mutually exclusive;
    each subtree is the parse of its branch's configuration(s).
    """

    __slots__ = ("branches",)

    def __init__(self, branches: Tuple[Tuple[Any, Any], ...]):
        self.branches = branches

    def __repr__(self) -> str:
        return f"StaticChoice({len(self.branches)} branches)"

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, StaticChoice)
                and self.branches == other.branches)

    def __hash__(self) -> int:
        return hash(self.branches)


def make_choice(branches: Sequence[Tuple[Any, Any]]) -> Any:
    """Build a static choice node, flattening nested choices and
    merging branches whose values are equal."""
    flat: List[Tuple[Any, Any]] = []
    for condition, value in branches:
        if isinstance(value, StaticChoice):
            for inner_cond, inner_value in value.branches:
                flat.append((condition & inner_cond, inner_value))
        else:
            flat.append((condition, value))
    merged: List[Tuple[Any, Any]] = []
    for condition, value in flat:
        for i, (other_cond, other_value) in enumerate(merged):
            if other_value == value:
                merged[i] = (other_cond | condition, value)
                break
        else:
            merged.append((condition, value))
    if len(merged) == 1:
        return merged[0][1]
    return StaticChoice(tuple(merged))


def build_value(production: Production, values: Sequence[Any],
                context: Any = None) -> Any:
    """Construct the semantic value for a completed production."""
    build = production.build
    if build is Build.LAYOUT:
        return None
    if build is Build.PASSTHROUGH:
        present = [v for v in values if v is not None]
        if len(present) == 1:
            return present[0]
        # Bracketing punctuation does not block passthrough: `( E )`
        # reuses E's value.  (SuperC marks punctuation `layout` in the
        # grammar; treating bare punctuator tokens as layout here keeps
        # grammar definitions terse.)
        structured = [v for v in present
                      if not (isinstance(v, Token)
                              and v.kind is TokenKind.PUNCTUATOR)]
        if len(structured) == 1:
            return structured[0]
        # Fall back to a generic node rather than guessing.
        return Node(production.node_name, tuple(present))
    if build is Build.LIST:
        rhs = production.rhs
        rest_start = 0
        prefix: Tuple[Any, ...] = ()
        if rhs and rhs[0] == production.lhs and isinstance(values[0], tuple):
            prefix = values[0]
            rest_start = 1
        items = tuple(v for v in values[rest_start:] if v is not None)
        return prefix + items
    if build is Build.ACTION:
        return production.action(values, context)
    # Default: generic node, dropping layout'd (None) children.
    return Node(production.node_name,
                tuple(v for v in values if v is not None))


# -- traversal and rendering ------------------------------------------------


def iter_tokens(value: Any) -> Iterator[Token]:
    """Yield all tokens in an AST in document order (all branches)."""
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, Token):
            yield current
        elif isinstance(current, Node):
            stack.extend(reversed(current.children))
        elif isinstance(current, StaticChoice):
            stack.extend(v for _, v in reversed(current.branches))
        elif isinstance(current, tuple):
            stack.extend(reversed(current))


def project(value: Any, config: dict) -> Any:
    """Project an AST onto one configuration: resolve every static
    choice node under a total variable assignment."""
    if isinstance(value, StaticChoice):
        for condition, branch in value.branches:
            if condition.evaluate(config):
                return project(branch, config)
        return None
    if isinstance(value, Node):
        children = []
        for child in value.children:
            projected = project(child, config)
            if projected is not None or child is None:
                children.append(projected)
            elif isinstance(child, StaticChoice):
                continue  # branch absent in this configuration
        return Node(value.name, tuple(c for c in children if c is not None))
    if isinstance(value, tuple):
        out: List[Any] = []
        for element in value:
            projected = project(element, config)
            if projected is None:
                continue
            if isinstance(element, StaticChoice) and \
                    isinstance(projected, tuple):
                # A merged list fragment: splice it into the list.
                out.extend(projected)
            else:
                out.append(projected)
        return tuple(out)
    return value


def count_nodes(value: Any) -> int:
    """Count Node and StaticChoice instances in an AST."""
    total = 0
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, Node):
            total += 1
            stack.extend(current.children)
        elif isinstance(current, StaticChoice):
            total += 1
            stack.extend(v for _, v in current.branches)
        elif isinstance(current, tuple):
            stack.extend(current)
    return total


def count_choice_nodes(value: Any) -> int:
    """Count only StaticChoice nodes (Figure 8's 'fewer forked
    subparsers means fewer static choice nodes' claim)."""
    total = 0
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, Node):
            stack.extend(current.children)
        elif isinstance(current, StaticChoice):
            total += 1
            stack.extend(v for _, v in current.branches)
        elif isinstance(current, tuple):
            stack.extend(current)
    return total


def dump(value: Any, indent: int = 0,
         condition_str: Optional[Callable[[Any], str]] = None) -> str:
    """Render an AST as an indented outline (for examples and tests)."""
    pad = "  " * indent
    if value is None:
        return pad + "-"
    if isinstance(value, Token):
        return pad + repr(value.text)
    if isinstance(value, Node):
        lines = [pad + value.name]
        for child in value.children:
            lines.append(dump(child, indent + 1, condition_str))
        return "\n".join(lines)
    if isinstance(value, StaticChoice):
        lines = [pad + "StaticChoice"]
        for cond, branch in value.branches:
            rendered = condition_str(cond) if condition_str \
                else cond.to_expr_string()
            lines.append(pad + "  [" + rendered + "]")
            lines.append(dump(branch, indent + 2, condition_str))
        return "\n".join(lines)
    if isinstance(value, tuple):
        lines = [pad + "[]" if not value else pad + "List"]
        for item in value:
            lines.append(dump(item, indent + 1, condition_str))
        return "\n".join(lines)
    return pad + repr(value)
