"""Edge-case preprocessor tests: odd-but-legal usage patterns."""

import pytest

from repro.cpp import Conditional, PreprocessorError, iter_tokens
from tests.support import preprocess, project_unit, simple_preprocess, \
    texts


def tree_texts(unit):
    return [t.text for t in iter_tokens(unit.tree)]


class TestMacroOddities:
    def test_macro_named_like_keyword(self):
        # Any identifier may be a macro name, including C keywords.
        unit = preprocess("#define while until\nwhile (1);")
        assert tree_texts(unit) == ["until", "(", "1", ")", ";"]

    def test_undef_builtin(self):
        unit = preprocess("#undef __STDC__\n__STDC__")
        assert tree_texts(unit) == ["__STDC__"]

    def test_redefine_builtin(self):
        unit = preprocess("#define __STDC__ 0\n__STDC__")
        assert tree_texts(unit) == ["0"]

    def test_function_like_macro_taking_keyword(self):
        unit = preprocess("#define WRAP(x) { x }\nWRAP(return 1;)")
        assert tree_texts(unit) == ["{", "return", "1", ";", "}"]

    def test_object_macro_expanding_to_directive_like_tokens(self):
        # A macro body that *looks* like a directive is not one.
        unit = preprocess("#define BODY # include\nBODY")
        assert tree_texts(unit) == ["#", "include"]

    def test_macro_with_unbalanced_parens_in_body(self):
        unit = preprocess("#define OPEN (\n#define CLOSE )\n"
                          "int x = OPEN 1 + 2 CLOSE;")
        assert tree_texts(unit) == \
            ["int", "x", "=", "(", "1", "+", "2", ")", ";"]

    def test_expansion_producing_invocation_of_next(self):
        unit = preprocess("#define A B(\n#define B(x) [x]\nA 7 )")
        # A expands to `B(`, then `B( 7 )` is a complete invocation on
        # rescan.
        assert tree_texts(unit) == ["[", "7", "]"]

    def test_arguments_spanning_many_lines(self):
        unit = preprocess("#define SUM3(a,b,c) (a+b+c)\n"
                          "SUM3(\n1,\n2,\n3\n)")
        assert tree_texts(unit) == list("(1+2+3)")


class TestConditionalExpressions:
    def test_if_with_function_like_macro(self):
        source = ("#define TEST(x) ((x) > 2)\n"
                  "#if TEST(5)\nyes\n#endif\n")
        unit = preprocess(source)
        assert tree_texts(unit) == ["yes"]

    def test_if_with_nested_defined_via_ifdef_chain(self):
        source = ("#ifdef A\n#define HAS_A 1\n#else\n#define HAS_A 0\n"
                  "#endif\n"
                  "#if HAS_A\na_code\n#endif\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == ["a_code"]
        assert texts(project_unit(unit, {})) == []

    def test_if_ternary(self):
        unit = preprocess("#if 1 ? 0 : 1\nx\n#else\ny\n#endif")
        assert tree_texts(unit) == ["y"]

    def test_if_char_comparison(self):
        unit = preprocess("#if 'z' > 'a'\nx\n#endif")
        assert tree_texts(unit) == ["x"]

    def test_empty_if_expression_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#if\nx\n#endif")

    def test_division_by_zero_in_feasible_branch(self):
        with pytest.raises(PreprocessorError):
            preprocess("#if 1 / 0\nx\n#endif")

    def test_non_boolean_nested_in_boolean(self):
        source = ("#if defined(A) && (N + 1 > 2)\nx\n#endif\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1", "N": "5"})) == ["x"]
        assert texts(project_unit(unit, {"A": "1", "N": "0"})) == []
        assert texts(project_unit(unit, {"N": "5"})) == []


class TestConditionalStructure:
    def test_deeply_nested(self):
        depth = 12
        lines = []
        for i in range(depth):
            lines.append(f"#ifdef V{i}")
        lines.append("innermost")
        for _ in range(depth):
            lines.append("#endif")
        unit = preprocess("\n".join(lines))
        assert unit.stats.max_conditional_depth == depth
        config = {f"V{i}": "1" for i in range(depth)}
        assert texts(project_unit(unit, config)) == ["innermost"]
        config.pop("V5")
        assert texts(project_unit(unit, config)) == []

    def test_adjacent_conditionals_same_variable(self):
        source = ("#ifdef A\none\n#endif\n"
                  "#ifdef A\ntwo\n#endif\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == ["one", "two"]
        assert texts(project_unit(unit, {})) == []

    def test_else_of_else(self):
        source = ("#ifdef A\na\n#else\n#ifdef B\nb\n#else\nc\n#endif\n"
                  "#endif\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == ["a"]
        assert texts(project_unit(unit, {"B": "1"})) == ["b"]
        assert texts(project_unit(unit, {})) == ["c"]

    def test_conditional_spanning_macro_definition_and_use(self):
        source = ("#ifdef A\n"
                  "#define VALUE 1\n"
                  "int x = VALUE;\n"
                  "#undef VALUE\n"
                  "#endif\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == \
            ["int", "x", "=", "1", ";"]


class TestStringifyPasteCorners:
    def test_stringify_spacing_normalized(self):
        unit = preprocess('#define S(x) #x\nS( a   +   b )')
        assert tree_texts(unit) == ['"a + b"']

    def test_stringify_empty_argument(self):
        unit = preprocess('#define S(x) #x\nS()')
        assert tree_texts(unit) == ['""']

    def test_paste_forming_number(self):
        unit = preprocess("#define G(a,b) a##b\nG(1, 2)")
        assert tree_texts(unit) == ["12"]

    def test_paste_invalid_token_raises(self):
        # '.' '.' pastes into '..', which is not a C token.
        with pytest.raises(PreprocessorError):
            preprocess("#define G(a,b) a##b\nG(., .)")

    def test_paste_forming_multichar_punctuators(self):
        # `+ ## +` and `< ## <` make valid punctuators.
        unit = preprocess("#define G(a,b) a##b\nG(+, +) G(<, <)")
        assert tree_texts(unit) == ["++", "<<"]

    def test_double_paste(self):
        unit = preprocess("#define G3(a,b,c) a##b##c\nG3(x, y, z)")
        assert tree_texts(unit) == ["xyz"]

    def test_charize_like_double_stringify(self):
        source = ("#define S1(x) #x\n#define S(x) S1(x)\n"
                  "#define NAME widget\nS(NAME)")
        unit = preprocess(source)
        assert tree_texts(unit) == ['"widget"']


class TestOracleAgreementOnEdges:
    @pytest.mark.parametrize("source", [
        "#define while until\nwhile (1);",
        "#define OPEN (\nint x = OPEN 1 );",
        "#define A B(\n#define B(x) [x]\nA 7 )",
        '#define S(x) #x\nS( a   +   b )',
        "#define G3(a,b,c) a##b##c\nG3(x, y, z)",
        "#if 'z' > 'a'\nx\n#endif",
        "#define TEST(x) ((x) > 2)\n#if TEST(5)\nyes\n#endif",
    ])
    def test_flat_sources_match_oracle(self, source):
        unit = preprocess(source)
        expected = simple_preprocess(source)
        assert texts(project_unit(unit, {})) == texts(expected)
