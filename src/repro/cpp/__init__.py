"""Configuration-preserving preprocessing (SuperC §3).

Public surface:

* :class:`Preprocessor` — the configuration-preserving preprocessor;
  produces :class:`CompilationUnit` token trees with
  :class:`Conditional` nodes and BDD presence conditions.
* :class:`SimplePreprocessor` — the single-configuration oracle.
* :func:`hoist` — Algorithm 1.
* :class:`MacroTable`, :class:`MacroDefinition` — the conditional macro
  table.
"""

from repro.cpp.conditions import (ConditionConverter, defined_var,
                                  expr_var, value_var)
from repro.cpp.errors import PreprocessorError
from repro.cpp.expansion import Expander, ExpansionStats
from repro.cpp.expression import (ExprError, evaluate_int,
                                  parse_expression)
from repro.cpp.hoist import hoist, unhoist
from repro.cpp.includes import (DictFileSystem, FileSystem,
                                IncludeResolver, RealFileSystem,
                                detect_guard)
from repro.cpp.macro_table import (FREE, UNDEFINED, MacroDefinition,
                                   MacroTable)
from repro.cpp.preprocessor import (DEFAULT_BUILTINS, CompilationUnit,
                                    Preprocessor, PreprocessorStats)
from repro.cpp.simple import SimplePreprocessor
from repro.cpp.tree import (Conditional, count_conditionals, is_flat,
                            iter_tokens, map_conditions, max_depth,
                            project, render, token_count)

__all__ = [
    "CompilationUnit", "ConditionConverter", "Conditional",
    "DEFAULT_BUILTINS", "DictFileSystem", "Expander", "ExpansionStats",
    "ExprError", "FREE", "FileSystem", "IncludeResolver",
    "MacroDefinition", "MacroTable", "Preprocessor", "PreprocessorError",
    "PreprocessorStats", "RealFileSystem", "SimplePreprocessor",
    "UNDEFINED", "count_conditionals", "defined_var", "detect_guard",
    "evaluate_int", "expr_var", "hoist", "is_flat", "iter_tokens",
    "map_conditions", "max_depth", "parse_expression", "project",
    "render", "token_count", "unhoist", "value_var",
]
