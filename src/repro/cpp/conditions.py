"""Converting conditional expressions into presence conditions (§3.2).

After macro expansion and hoisting, a conditional expression combines
four kinds of subexpressions, converted as:

1. a constant → ``false`` if zero, else ``true``;
2. a free macro → a BDD variable (``value:NAME``);
3. an arithmetic subexpression → a BDD variable keyed by its
   normalized text (``expr:TEXT``) — there is no efficient way to
   compare arbitrary polynomials, so they stay opaque and their
   branches' ordering is preserved;
4. ``defined(M)`` → the disjunction of conditions under which M is
   defined; for free M it is a variable (``defined:M``) unless M is a
   guard macro, in which case it is ``false`` (matching gcc's guard
   optimization).

The mapping from expressions to variables is maintained by the shared
:class:`BDDManager`, so repeated occurrences translate to the same
variable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.bdd import BDDManager, BDDNode
from repro.cpp.expression import Expr

# BDD variable name prefixes; structured so tests can reconstruct the
# meaning of every variable.
DEFINED_PREFIX = "defined:"
VALUE_PREFIX = "value:"
EXPR_PREFIX = "expr:"


def defined_var(name: str) -> str:
    return DEFINED_PREFIX + name


def value_var(name: str) -> str:
    return VALUE_PREFIX + name


def expr_var(text: str) -> str:
    return EXPR_PREFIX + text


class _Value:
    """Abstract value during conversion: constant, boolean, or opaque."""

    __slots__ = ("const", "bdd", "opaque")

    def __init__(self, const: Optional[int] = None,
                 bdd: Optional[BDDNode] = None,
                 opaque: Optional[str] = None):
        self.const = const
        self.bdd = bdd
        self.opaque = opaque

    @property
    def is_const(self) -> bool:
        return self.const is not None

    @property
    def is_bool(self) -> bool:
        return self.bdd is not None


class ConditionConverter:
    """Turns expression ASTs into BDDs against a macro-state oracle.

    ``defined_condition(name)`` must return the BDD condition under
    which ``name`` has a macro definition, or None when the name is
    free (then rules 4a/4b apply).  ``is_guard(name)`` identifies guard
    macros for rule 4a.
    """

    def __init__(self, manager: BDDManager,
                 defined_condition: Callable[[str], Optional[BDDNode]],
                 is_guard: Callable[[str], bool] = lambda name: False):
        self.manager = manager
        self.defined_condition = defined_condition
        self.is_guard = is_guard
        self.non_boolean_count = 0  # Table 3: conditionals w/ non-boolean

    # -- public -----------------------------------------------------------

    def to_bdd(self, expr: Expr) -> BDDNode:
        """Convert a parsed conditional expression into a BDD."""
        return self._as_bdd(self._convert(expr))

    # -- conversion --------------------------------------------------------

    def _as_bdd(self, value: _Value) -> BDDNode:
        if value.is_bool:
            return value.bdd
        if value.is_const:
            return self.manager.constant(value.const != 0)
        return self._opaque_bdd(value.opaque)

    def _opaque_bdd(self, text: str) -> BDDNode:
        """A variable for opaque text: value:NAME for bare free macros,
        expr:TEXT (counted as non-boolean) for arithmetic."""
        if _is_name(text):
            return self.manager.var(value_var(text))
        self.non_boolean_count += 1
        return self.manager.var(expr_var(text))

    def _convert(self, expr: Expr) -> _Value:
        kind = expr.kind
        if kind == "int":
            return _Value(const=expr.value)
        if kind == "ident":
            # A free macro used for its value; in boolean position it
            # becomes a variable, in arithmetic it stays opaque text.
            return _Value(opaque=expr.text)
        if kind == "defined":
            return _Value(bdd=self._defined(expr.name))
        if kind == "unary":
            return self._unary(expr)
        if kind == "binary":
            return self._binary(expr)
        if kind == "ternary":
            return self._ternary(expr)
        raise AssertionError(f"unknown expression kind {kind!r}")

    def _defined(self, name: str) -> BDDNode:
        condition = self.defined_condition(name)
        if condition is not None:
            return condition
        if self.is_guard(name):
            return self.manager.false  # rule 4a
        return self.manager.var(defined_var(name))  # rule 4b

    def _boolify(self, value: _Value) -> BDDNode:
        """Coerce to boolean; a bare free macro becomes value:NAME."""
        if value.is_bool:
            return value.bdd
        if value.is_const:
            return self.manager.constant(value.const != 0)
        return self._opaque_bdd(value.opaque)

    def _unary(self, expr: Expr) -> _Value:
        operand = self._convert(expr.operands[0])
        op = expr.op
        if op == "!":
            return _Value(bdd=~self._boolify(operand))
        if operand.is_const:
            if op == "-":
                return _Value(const=-operand.const)
            if op == "~":
                return _Value(const=~operand.const)
            return _Value(const=operand.const)
        return _Value(opaque=expr.text)

    def _binary(self, expr: Expr) -> _Value:
        op = expr.op
        if op in ("&&", "||"):
            left = self._boolify(self._convert(expr.operands[0]))
            # gcc short-circuits #if evaluation: `0 && 1/0` never
            # touches the dead operand, which may not even be
            # evaluable (division by zero).
            if op == "&&" and left.is_false():
                return _Value(bdd=left)
            if op == "||" and left.is_true():
                return _Value(bdd=left)
            right = self._boolify(self._convert(expr.operands[1]))
            return _Value(bdd=(left & right) if op == "&&"
                          else (left | right))
        left = self._convert(expr.operands[0])
        right = self._convert(expr.operands[1])
        if left.is_const and right.is_const:
            from repro.cpp.expression import evaluate_int
            folded = evaluate_int(expr, lambda _n: False, lambda _n: 0)
            return _Value(const=folded)
        if (left.is_bool or right.is_bool) and op in ("==", "!="):
            # Comparisons mixing booleans: treat as boolean equivalence
            # against a constant where possible.
            if left.is_bool and right.is_const:
                bdd = left.bdd if right.const else ~left.bdd
                return _Value(bdd=bdd if op == "==" else ~bdd)
            if right.is_bool and left.is_const:
                bdd = right.bdd if left.const else ~right.bdd
                return _Value(bdd=bdd if op == "==" else ~bdd)
        # Anything else is a non-boolean subexpression: opaque text.
        return _Value(opaque=expr.text)

    def _ternary(self, expr: Expr) -> _Value:
        cond = self._boolify(self._convert(expr.operands[0]))
        if cond.is_true():
            return self._convert(expr.operands[1])
        if cond.is_false():
            return self._convert(expr.operands[2])
        then = self._convert(expr.operands[1])
        other = self._convert(expr.operands[2])
        if then.is_const and other.is_const and \
                then.const in (0, 1) and other.const in (0, 1):
            then_bdd = self.manager.constant(bool(then.const))
            other_bdd = self.manager.constant(bool(other.const))
            return _Value(bdd=(cond & then_bdd) | (~cond & other_bdd))
        if then.is_bool or other.is_bool:
            return _Value(bdd=(cond & self._boolify(then)) |
                          (~cond & self._boolify(other)))
        return _Value(opaque=expr.text)


def _is_name(text: str) -> bool:
    return text.replace("_", "a").isalnum() and not text[0].isdigit()
