"""The parse daemon: protocol, service logic, and socket front end.

**Protocol.**  Newline-delimited JSON over a Unix-domain socket or
TCP.  Each request is one JSON object on one line; each response is
one JSON object on one line carrying the request's ``id`` back.
Requests may be pipelined — the server reads ahead and admission
control decides per request — and responses to shed requests can
overtake responses to admitted ones (match on ``id``).

Request shapes (``op`` selects the type)::

    {"id": 1, "op": "parse", "path": "drivers/mousedev.c"}
    {"id": 2, "op": "parse", "text": "int x;", "filename": "<buf>"}
    {"id": 3, "op": "invalidate", "path": "include/major.h"}
    {"id": 4, "op": "invalidate", "path": "a.h", "text": "#define A"}
    {"id": 5, "op": "stats"}
    {"id": 6, "op": "shutdown"}

``parse`` extras: ``deadline`` (seconds, overrides the server
default), ``fresh`` (true skips every cache tier), ``delay`` (testing
aid: sleep before parsing, so smoke tests can pile up a burst
deterministically).

Parse responses carry the structural Result protocol as JSON —
``status``, ``diagnostics``, ``timing``, ``profile`` — in the same
record shape the batch engine emits, plus serve-side fields::

    {"id": 1, "op": "parse", "status": "ok", "cache": "hit",
     "tier": "memory", "serve": {"queue_seconds": ..., "seconds": ...},
     "timing": {...}, "diagnostics": [...], "profile": ..., ...}

Overload answers ``{"status": "shed", "error": "queue depth ..."}``
immediately; a server past ``shutdown`` answers new work with
``status=shed`` too (``"draining"``), while everything admitted before
the shutdown is still served (graceful drain).

**Architecture.**  The acceptor and per-connection readers are
daemon threads that only do admission (cheap, never parse); all
parsing happens on the single thread that called
:meth:`ParseServer.serve_forever` — the process's main thread under
the CLI, which is exactly what lets per-request deadlines reuse the
engine's SIGALRM :func:`repro.engine.attempt_deadline`.  Off the main
thread (e.g. tests embedding the server in a thread) deadlines degrade
to admission-time expiry checks.

Every request is observable: a ``serve.request`` span per request
(lane-per-request in the Chrome export), ``serve.requests`` /
``serve.cache.hit`` / ``serve.cache.miss`` / ``serve.shed`` counters,
and the ``serve.queue_depth`` histogram.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import chaos
from repro.api import Config
from repro.engine import DEFAULT_OPTIMIZATION, DeadlineExceeded, \
    attempt_deadline
from repro.engine.results import STATUS_ERROR, STATUS_TIMEOUT
from repro.obs.tracer import NULL_TRACER
from repro.serve.admission import AdmissionQueue, Deadline, QueueClosed
from repro.serve.pool import PoolConfig, WorkerPool
from repro.serve.state import ServerState

# Serve-specific response status (alongside the engine's ok/degraded/
# parse-failed/error/timeout): the request was refused by admission
# control and no work was done.
STATUS_SHED = "shed"

PROTOCOL_VERSION = 1

OPS = ("parse", "invalidate", "stats", "shutdown", "ping")


class ParseService:
    """Transport-independent request handler over warm server state.

    ``handle(request) -> response`` implements every op synchronously;
    the socket layer adds queueing, deadlines, and shedding around it.
    Tests (and in-process embedders) can call it directly.
    """

    def __init__(self, state: ServerState, tracer: Any = None):
        self.state = state
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.pool: Optional[WorkerPool] = None
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.started = time.monotonic()

    # -- dispatch ------------------------------------------------------

    def handle(self, request: dict,
               deadline: Optional[Deadline] = None) -> dict:
        op = request.get("op")
        self.requests += 1
        if self.tracer.enabled:
            self.tracer.count("serve.requests")
        handler = getattr(self, f"_op_{op}", None) if op in OPS else None
        if handler is None:
            return self._reply(request, status=STATUS_ERROR,
                               error=f"unknown op {op!r}")
        try:
            if op == "parse":
                # The one op with a deadline: under a worker pool the
                # supervisor enforces it against the child process.
                return self._op_parse(request, deadline=deadline)
            return handler(request)
        except DeadlineExceeded:
            raise
        except Exception as exc:  # confine: a bad request never kills
            return self._reply(request, status=STATUS_ERROR,
                               error=repr(exc))

    @staticmethod
    def _reply(request: dict, **fields: Any) -> dict:
        response = {"id": request.get("id"), "op": request.get("op")}
        response.update(fields)
        return response

    # -- ops -----------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return self._reply(request, status="ok",
                           protocol=PROTOCOL_VERSION)

    def _op_parse(self, request: dict,
                  deadline: Optional[Deadline] = None) -> dict:
        state = self.state
        path = request.get("path")
        text = request.get("text")
        filename = request.get("filename") or path or "<input>"
        delay = float(request.get("delay") or 0.0)
        if delay > 0:  # testing aid — lets smoke tests build a backlog
            time.sleep(delay)
        if text is None:
            if path is None:
                return self._reply(request, status=STATUS_ERROR,
                                   error="parse needs path or text")
            text = state.files.read(path)
            if text is None:
                return self._reply(request, status=STATUS_ERROR,
                                   error=f"cannot read {path}")
        elif path is not None:
            # An explicit buffer for a known path is an overlay edit.
            state.files.put(path, text)
            state.index.mark_dirty()
        unit = path or filename
        with self.tracer.span("serve.request", op="parse", unit=unit):
            key, _closure_digest, members = state.unit_key(unit, text)
            record: Optional[dict] = None
            tier: Optional[str] = None
            if not request.get("fresh"):
                record, tier = state.lookup(unit, key, members)
            if record is not None:
                self.hits += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.cache.hit")
                record = dict(record)
                record["cache"] = "hit"
            else:
                self.misses += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.cache.miss")
                record = dict(state.parse(unit, text, key, members,
                                          deadline=deadline))
                record["cache"] = "miss"
                tier = None
        return self._reply(request, tier=tier, **record)

    def _op_invalidate(self, request: dict) -> dict:
        path = request.get("path")
        if not path:
            return self._reply(request, status=STATUS_ERROR,
                               error="invalidate needs a path")
        with self.tracer.span("serve.request", op="invalidate",
                              path=path):
            dropped = self.state.invalidate(path, request.get("text"))
            if self.tracer.enabled:
                self.tracer.count("serve.invalidated", len(dropped))
        return self._reply(request, status="ok", invalidated=dropped,
                           count=len(dropped))

    def _op_stats(self, request: dict) -> dict:
        stats = {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "requests": self.requests,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
        }
        stats.update(self.state.stats())
        stats["pool"] = (None if self.pool is None
                         else self.pool.stats())
        return self._reply(request, status="ok", stats=stats)

    def _op_shutdown(self, request: dict) -> dict:
        # The socket server intercepts shutdown for draining; handled
        # directly (in-process use) it just acknowledges.
        return self._reply(request, status="ok", draining=True)


class _Connection:
    """One client connection: buffered line reader + locked writer."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._recv_buffer = b""
        self._write_lock = threading.Lock()
        self.closed = False

    def read_request(self) -> Optional[dict]:
        """Next newline-delimited JSON object, or None at EOF."""
        while b"\n" not in self._recv_buffer:
            try:
                chunk = self.sock.recv(65536)
            except OSError:
                return None
            if not chunk:
                return None
            self._recv_buffer += chunk
        line, _sep, rest = self._recv_buffer.partition(b"\n")
        self._recv_buffer = rest
        if not line.strip():
            return self.read_request()
        return json.loads(line.decode("utf-8"))

    def send(self, response: dict) -> None:
        payload = (json.dumps(response) + "\n").encode("utf-8")
        with self._write_lock:
            if self.closed:
                return
            try:
                if chaos.ACTIVE is not None:
                    # "drop-conn" closes the socket under us here —
                    # the client sees a torn connection mid-response.
                    chaos.fire("conn.send", sock=self.sock)
                self.sock.sendall(payload)
            except OSError:
                self.closed = True

    def close(self) -> None:
        with self._write_lock:
            self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class _QueuedRequest:
    """An admitted request waiting for the worker."""

    __slots__ = ("request", "connection", "deadline", "admitted",
                 "shutdown")

    def __init__(self, request: dict, connection: _Connection,
                 deadline: Deadline, shutdown: bool = False):
        self.request = request
        self.connection = connection
        self.deadline = deadline
        self.admitted = time.monotonic()
        self.shutdown = shutdown


class ParseServer:
    """Socket front end: accepts, admits, serves, drains.

    Bind with ``socket_path`` (Unix domain) or ``host``/``port``
    (TCP; port 0 picks a free port, see :attr:`address`).  Call
    :meth:`serve_forever` on the thread that should do the parsing —
    the main thread for SIGALRM-hard deadlines — or :meth:`start` to
    spawn everything in the background (tests, notebooks).
    """

    def __init__(self, state: Optional[ServerState] = None,
                 socket_path: Optional[str] = None,
                 host: Optional[str] = None,
                 port: Optional[int] = None,
                 max_queue: int = 64,
                 deadline_seconds: float = 0.0,
                 workers: int = 0,
                 pool_config: Optional[PoolConfig] = None,
                 tracer: Any = None,
                 config: Optional[Config] = None,
                 optimization: str = DEFAULT_OPTIMIZATION,
                 cache_dir: Optional[str] = None,
                 use_result_cache: bool = True,
                 **config_overrides: Any):
        if state is None:
            state = ServerState(config, optimization=optimization,
                                cache_dir=cache_dir,
                                use_result_cache=use_result_cache,
                                tracer=tracer,
                                **config_overrides)
        self.state = state
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.service = ParseService(state, tracer=self.tracer)
        self.queue = AdmissionQueue(max_queue, tracer=self.tracer)
        self.deadline_seconds = max(0.0, deadline_seconds)
        # workers > 0 enables the supervised pre-forked pool: parses
        # run in child processes, supervisor-enforced deadlines replace
        # SIGALRM, and `workers` dispatcher threads serve concurrently.
        if pool_config is None and workers > 0:
            pool_config = PoolConfig(size=workers)
        self.pool_config = pool_config if workers > 0 else None
        self.pool: Optional[WorkerPool] = None
        self._dispatcher_count = max(1, workers)
        self.socket_path = socket_path
        self._requested_host = host
        self._requested_port = port
        self.address: Optional[Tuple[str, int]] = None
        self._listener: Optional[socket.socket] = None
        self._acceptor: Optional[threading.Thread] = None
        self._worker: Optional[threading.Thread] = None
        self._extra_dispatchers: List[threading.Thread] = []
        self._connections: List[_Connection] = []
        self._connections_lock = threading.Lock()
        # In-flight request count: the drain barrier that lets the
        # shutdown sentinel wait for every other dispatcher to go idle
        # before it answers and closes.
        self._active = 0
        self._active_cond = threading.Condition()
        self._stopped = threading.Event()
        self.drained = 0

    # -- lifecycle -----------------------------------------------------

    def bind(self) -> None:
        """Create and bind the listening socket (idempotent)."""
        if self._listener is not None:
            return
        if self.socket_path:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            listener = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
            listener.bind(self.socket_path)
        else:
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
            listener.bind((self._requested_host or "127.0.0.1",
                           self._requested_port or 0))
            self.address = listener.getsockname()[:2]
        listener.listen(16)
        self._listener = listener

    def _start_pool(self) -> None:
        """Fork the worker pool (before ``bind``, so workers never
        inherit the listener) and route parses through it."""
        if self.pool_config is None or self.pool is not None:
            return
        self.pool = WorkerPool(self.state, self.pool_config,
                               tracer=self.tracer).start()
        self.state.executor = self.pool.execute
        self.service.pool = self.pool

    def start(self) -> "ParseServer":
        """Bind and run acceptor + dispatchers as background threads."""
        self._start_pool()
        self.bind()
        self._acceptor = threading.Thread(target=self._accept_loop,
                                          name="serve-acceptor",
                                          daemon=True)
        self._acceptor.start()
        self._worker = threading.Thread(target=self._work_loop,
                                        name="serve-worker",
                                        daemon=True)
        self._worker.start()
        return self

    def serve_forever(self) -> int:
        """Bind, accept in the background, and parse on *this* thread
        until a ``shutdown`` request drains the queue.  Returns the
        number of requests served during the drain."""
        self._start_pool()
        self.bind()
        self._acceptor = threading.Thread(target=self._accept_loop,
                                          name="serve-acceptor",
                                          daemon=True)
        self._acceptor.start()
        self._work_loop()
        return self.drained

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server has fully stopped."""
        return self._stopped.wait(timeout)

    def close(self) -> None:
        """Hard stop: close the listener, every connection, and the
        worker pool.  Prefer a ``shutdown`` request for a graceful
        drain."""
        self.queue.begin_drain()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        if self.socket_path:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self.pool is not None:
            self.pool.close()
            self.state.executor = None
        self._stopped.set()

    # -- acceptor side (daemon threads; admission only) ----------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self.queue.draining:
            try:
                sock, _addr = listener.accept()
            except OSError:
                return
            connection = _Connection(sock)
            with self._connections_lock:
                self._connections.append(connection)
            reader = threading.Thread(
                target=self._read_loop, args=(connection,),
                name="serve-reader", daemon=True)
            reader.start()

    def _read_loop(self, connection: _Connection) -> None:
        while True:
            try:
                request = connection.read_request()
            except (ValueError, UnicodeDecodeError) as exc:
                connection.send({"id": None, "op": None,
                                 "status": STATUS_ERROR,
                                 "error": f"bad request line: {exc}"})
                continue
            if request is None:
                return
            self._admit(request, connection)

    def _admit(self, request: dict, connection: _Connection) -> None:
        op = request.get("op")
        if op == "shutdown":
            # Atomically flip to draining and land the sentinel behind
            # everything already queued: later submits shed, earlier
            # work still drains, and the worker answers the shutdown
            # last.
            self.queue.close_with(
                _QueuedRequest(request, connection, Deadline(0.0),
                               shutdown=True))
            return
        if op in ("stats", "ping"):
            # Control plane: answered inline by the reader thread, so
            # health checks and stats stay responsive under load.
            connection.send(self.service.handle(request))
            return
        deadline = Deadline(float(request.get("deadline")
                                  or self.deadline_seconds))
        queued = _QueuedRequest(request, connection, deadline)
        if not self.queue.submit(queued):
            reason = ("draining" if self.queue.draining else
                      f"queue depth {self.queue.max_depth} exceeded")
            connection.send({"id": request.get("id"), "op": op,
                             "status": STATUS_SHED, "error": reason})

    # -- worker side (the parsing threads) -----------------------------

    def _work_loop(self) -> None:
        """Run ``_dispatcher_count`` dispatch loops: one on this
        thread, the rest on daemon threads.  With a worker pool the
        extra dispatchers give the daemon true request concurrency —
        each blocks in the supervisor's ``select``, not on a parse."""
        self._extra_dispatchers = []
        for index in range(self._dispatcher_count - 1):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"serve-dispatch-{index + 1}", daemon=True)
            thread.start()
            self._extra_dispatchers.append(thread)
        try:
            self._dispatch_loop()
        finally:
            self.close()
            for thread in self._extra_dispatchers:
                thread.join(timeout=2.0)

    def _dispatch_loop(self) -> None:
        while True:
            try:
                queued = self.queue.pop(timeout=0.5)
            except QueueClosed:
                return
            if queued is None:
                continue
            if queued.shutdown:
                # Drain barrier: everything admitted before shutdown
                # has been *popped* (FIFO), but siblings may still be
                # serving theirs — answer the shutdown only when every
                # other dispatcher is idle.
                with self._active_cond:
                    while self._active > 0:
                        self._active_cond.wait(timeout=0.5)
                self._finish_drain(queued)
                self.close()
                return
            with self._active_cond:
                self._active += 1
            try:
                self._serve_one(queued)
            finally:
                with self._active_cond:
                    self._active -= 1
                    if self._active == 0:
                        self._active_cond.notify_all()

    def _serve_one(self, queued: _QueuedRequest) -> None:
        request, deadline = queued.request, queued.deadline
        queue_seconds = time.monotonic() - queued.admitted
        if deadline.expired():
            # Spent its whole budget waiting: answer timeout without
            # doing the work (the engine's deadline semantics, applied
            # to queue wait).
            if self.tracer.enabled:
                self.tracer.count("serve.deadline.expired")
            queued.connection.send({
                "id": request.get("id"), "op": request.get("op"),
                "status": STATUS_TIMEOUT,
                "error": f"deadline of {deadline.seconds:.3g}s "
                         f"expired after {queue_seconds:.3g}s in queue"})
            return
        started = time.monotonic()
        try:
            if self.pool is not None:
                # Deadlines are enforced out of process by the pool
                # supervisor (select + SIGKILL) — no SIGALRM, so this
                # works identically on every dispatcher thread.
                response = self.service.handle(request,
                                               deadline=deadline)
            else:
                with attempt_deadline(deadline.remaining()
                                      if deadline.enabled else 0.0):
                    response = self.service.handle(request)
        except DeadlineExceeded:
            response = {"id": request.get("id"),
                        "op": request.get("op"),
                        "status": STATUS_TIMEOUT,
                        "error": f"deadline of {deadline.seconds:.3g}s "
                                 f"exceeded while parsing"}
        response.setdefault("serve", {})
        response["serve"].update({
            "queue_seconds": round(queue_seconds, 6),
            "seconds": round(time.monotonic() - started, 6),
        })
        queued.connection.send(response)

    def _finish_drain(self, queued: _QueuedRequest) -> None:
        # Everything admitted before the shutdown has been served (the
        # queue is FIFO and shutdown was submitted after begin_drain).
        self.drained = self.service.requests
        response = self.service.handle(queued.request)
        response["drained"] = self.drained
        response["serve"] = {"queue_seconds":
                             round(time.monotonic() - queued.admitted,
                                   6),
                             "seconds": 0.0}
        queued.connection.send(response)
