"""Tests for the configuration-preserving unparser.

The key property: unparse → reparse round-trips to a
projection-equivalent AST for every configuration.
"""

import itertools

import pytest

from repro.bdd import BDDManager
from repro.cpp.conditions import defined_var, expr_var, value_var
from repro.parser.ast import project as ast_project
from repro.superc import parse_c
from repro.unparse import condition_to_expr, unparse, variable_to_expr
from tests.support import assignment_for, ast_signature


class TestConditionRendering:
    @pytest.fixture()
    def mgr(self):
        return BDDManager()

    def test_terminals(self, mgr):
        assert condition_to_expr(mgr.true) == "1"
        assert condition_to_expr(mgr.false) == "0"

    def test_defined_variable(self, mgr):
        condition = mgr.var(defined_var("CONFIG_X"))
        assert condition_to_expr(condition) == "defined(CONFIG_X)"

    def test_negated(self, mgr):
        condition = ~mgr.var(defined_var("A"))
        assert condition_to_expr(condition) == "!defined(A)"

    def test_value_variable(self, mgr):
        assert variable_to_expr(value_var("NR")) == "NR"

    def test_expr_variable(self, mgr):
        assert variable_to_expr(expr_var("NR_CPUS<256")) == \
            "(NR_CPUS<256)"

    def test_conjunction(self, mgr):
        condition = mgr.var(defined_var("A")) & ~mgr.var(defined_var("B"))
        assert condition_to_expr(condition) == \
            "defined(A) && !defined(B)"

    def test_disjunction_renders_cubes(self, mgr):
        a, b = mgr.var(defined_var("A")), mgr.var(defined_var("B"))
        text = condition_to_expr(a | b)
        assert "||" in text
        assert "defined(A)" in text and "defined(B)" in text

    def test_roundtrip_through_preprocessor(self, mgr):
        """Rendered conditions mean the same thing when re-evaluated."""
        a, b = mgr.var(defined_var("A")), mgr.var(defined_var("B"))
        condition = (a & ~b) | (~a & b)
        text = condition_to_expr(condition)
        source = f"#if {text}\nint marker;\n#endif\n"
        result = parse_c(source)
        assert result.ok
        for config in ({}, {"A": "1"}, {"B": "1"}, {"A": "1", "B": "1"}):
            assignment = assignment_for(result.unit, config)
            original = condition.evaluate(
                {defined_var(n): (n in config) for n in "AB"})
            projected = ast_project(result.ast, assignment)
            has_marker = "marker" in str(ast_signature(projected))
            assert has_marker == original, config


SOURCES = [
    "int x;\nint y;\n",
    "#ifdef A\nint a;\n#endif\nint tail;\n",
    "#ifdef A\nint a;\n#else\nint b;\n#endif\n",
    ("#ifdef A\nint a;\n#elif defined(B)\nint b;\n#else\nint c;\n"
     "#endif\n"),
    ("struct dev {\n  int id;\n#ifdef CONFIG_DEBUG\n  char *label;\n"
     "#endif\n};\n"),
    ("int f(void)\n{\n#ifdef FAST\n  return 1;\n#else\n  return 2;\n"
     "#endif\n}\n"),
    ("#ifdef A\n#define N 8\n#else\n#define N 2\n#endif\n"
     "int width = N;\n"),
    ("#ifdef OUTER\nint o;\n#ifdef INNER\nint i;\n#endif\n#endif\n"
     "int shared;\n"),
]

VARS = ["A", "B", "CONFIG_DEBUG", "FAST", "OUTER", "INNER"]


def configs():
    for bits in itertools.product([False, True], repeat=len(VARS)):
        yield {name: "1" for name, bit in zip(VARS, bits) if bit}


@pytest.mark.parametrize("source", SOURCES, ids=range(len(SOURCES)))
def test_unparse_reparse_roundtrip(source):
    original = parse_c(source)
    assert original.ok
    text = unparse(original.ast)
    reparsed = parse_c(text)
    assert reparsed.ok, (text, [str(f) for f in reparsed.failures][:2])
    sampled = itertools.islice(configs(), 0, 64, 7)
    for config in sampled:
        before = ast_project(original.ast,
                             assignment_for(original.unit, config))
        after = ast_project(reparsed.ast,
                            assignment_for(reparsed.unit, config))
        assert ast_signature(before) == ast_signature(after), \
            (config, text)


def test_unparse_corpus_driver_roundtrip():
    """Torture test: unparse a full synthetic-kernel driver (hundreds
    of constructs, nested conditionals) and reparse it."""
    import random

    from repro.corpus import KernelSpec, generate_kernel
    from repro.superc import SuperC

    corpus = generate_kernel(KernelSpec(subsystems=1,
                                        drivers_per_subsystem=1,
                                        figure6_entries=4))
    superc = SuperC(corpus.filesystem(),
                    include_paths=corpus.include_paths)
    original = superc.parse_file(corpus.units[0])
    assert original.ok
    text = unparse(original.ast,
                   error_conditions=original.unit.error_conditions)
    reparsed = parse_c(text)
    assert reparsed.ok, (text[:400],
                         [str(f) for f in reparsed.failures][:2])
    rng = random.Random(3)
    for _ in range(4):
        config = {name: "1" for name in corpus.config_variables
                  if rng.random() < 0.4}
        before_assign = assignment_for(original.unit, config)
        if not original.unit.feasible_condition.evaluate(before_assign):
            continue
        before = ast_project(original.ast, before_assign)
        after = ast_project(reparsed.ast,
                            assignment_for(reparsed.unit, config))
        assert ast_signature(before) == ast_signature(after), config


def test_unparse_emits_directives():
    result = parse_c("#ifdef A\nint a;\n#else\nint b;\n#endif\n")
    text = unparse(result.ast)
    assert "#if defined(A)" in text
    assert "#else" in text
    assert "#endif" in text


def test_unparse_plain_code_has_no_directives():
    result = parse_c("int x; int f(void) { return x; }\n")
    text = unparse(result.ast)
    assert "#if" not in text
    assert "int x;" in text


def test_unparse_after_structural_edit():
    """The unparser writes out ASTs whose token positions no longer
    match any source (the refactoring case position-patching cannot
    handle)."""
    from repro.parser.ast import Node, StaticChoice

    result = parse_c("#ifdef A\nint a;\n#endif\nint tail;\n")

    def drop_tail(value):
        if isinstance(value, tuple):
            return tuple(drop_tail(v) for v in value
                         if not (isinstance(v, Node)
                                 and v.name == "Declaration"
                                 and any(getattr(t, "text", "") == "tail"
                                         for t in _tokens(v))))
        if isinstance(value, Node):
            return Node(value.name, drop_tail(value.children))
        if isinstance(value, StaticChoice):
            return StaticChoice(tuple(
                (c, drop_tail(b)) for c, b in value.branches))
        return value

    def _tokens(node):
        from repro.parser.ast import iter_tokens
        return list(iter_tokens(node))

    edited = drop_tail(result.ast)
    text = unparse(edited)
    assert "tail" not in text
    reparsed = parse_c(text)
    assert reparsed.ok
