"""Randomized adversarial unit generator for differential fuzzing.

Where :mod:`repro.corpus.generator` emits a realistic kernel-shaped
tree, this module emits small, hostile, *valid-by-construction*
translation units that concentrate on the preprocessor behaviors where
the two pipelines (configuration-preserving vs. single-configuration)
are most likely to diverge:

* token pasting whose operands come from conditionally defined macros
  (Figure 5's pasting-over-conditionals);
* variadic macros, including GNU ``, ## __VA_ARGS__`` comma deletion
  with empty, single, and multiple argument call sites;
* arithmetic ``#if`` expressions guarded by short-circuit operators
  (``defined(A) && VALUE/A_DIV`` style) where the dead operand is not
  evaluable;
* string/character literals with escape sequences, including escaped
  quotes adjacent to line ends;
* conditionally defined typedefs and objects referenced below.

Every generated unit is valid C in *every* configuration over its
variables, so a fuzz harness may run with ``expect_parseable=True``:
any configuration in which both pipelines reject the unit is itself a
finding, which is what exposes bugs mirrored into both pipelines.
Generation is deterministic in the seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence


class FuzzSpec:
    """Shape knobs and feature weights for one generated unit.

    ``weights`` maps feature name to relative probability mass; a
    feature with weight 0 never appears.  The default weighting is
    adversarial: heavy on the paster/variadic/guard features.
    """

    FEATURES = ("paste_conditional", "variadic", "guarded_arith",
                "escaped_literal", "conditional_typedef",
                "conditional_function", "plain_function",
                "guarded_error", "guarded_missing_include")

    def __init__(self, variables: int = 3, items: int = 8,
                 weights: Optional[Dict[str, int]] = None):
        self.variables = max(1, variables)
        self.items = max(1, items)
        # The guarded-failure features (a conditional #error / missing
        # include) are weight 0 by default: they make units that are
        # deliberately *invalid* in some configurations, which the
        # robustness smoke run opts into to exercise confinement.
        base = {"paste_conditional": 3, "variadic": 3,
                "guarded_arith": 2, "escaped_literal": 2,
                "conditional_typedef": 1, "conditional_function": 2,
                "plain_function": 1, "guarded_error": 0,
                "guarded_missing_include": 0}
        if weights:
            base.update(weights)
        self.weights = {name: base.get(name, 0)
                        for name in self.FEATURES}


class FuzzUnit:
    """One generated unit plus its configuration variables."""

    def __init__(self, seed: int, text: str, variables: List[str]):
        self.seed = seed
        self.text = text
        self.variables = variables
        self.filename = f"fuzz_{seed}.c"


def _pick(rng: random.Random, spec: FuzzSpec) -> str:
    names = [n for n in spec.FEATURES if spec.weights[n] > 0]
    total = sum(spec.weights[n] for n in names)
    shot = rng.randrange(total)
    for name in names:
        shot -= spec.weights[name]
        if shot < 0:
            return name
    return names[-1]


def generate_fuzz_unit(seed: int,
                       spec: Optional[FuzzSpec] = None) -> FuzzUnit:
    """Deterministically generate one adversarial unit."""
    spec = spec or FuzzSpec()
    rng = random.Random(seed)
    variables = [f"CFG_{chr(ord('A') + i)}" for i in range(spec.variables)]
    counter = iter(range(10000))
    lines: List[str] = []
    emitted_types: List[str] = ["int", "unsigned", "long"]

    lines.append("typedef unsigned int u32;")
    lines.append("int sink(int first, ...);")
    lines.append("")

    for _ in range(spec.items):
        feature = _pick(rng, spec)
        builder = _BUILDERS[feature]
        lines.extend(builder(rng, variables, counter, emitted_types))
        lines.append("")
    return FuzzUnit(seed, "\n".join(lines) + "\n", variables)


# ---------------------------------------------------------------------------
# feature builders — each returns complete, every-config-valid lines
# ---------------------------------------------------------------------------

def _var(rng: random.Random, variables: Sequence[str]) -> str:
    return rng.choice(list(variables))


def _paste_conditional(rng, variables, counter, types) -> List[str]:
    """Token pasting whose right operand is a conditionally defined
    macro (Figure 5 shape)."""
    n = next(counter)
    var = _var(rng, variables)
    suffix_a = rng.choice(["lo", "hi"])
    suffix_b = "alt"
    out = [
        f"#ifdef {var}",
        f"#define W{n} {suffix_a}",
        "#else",
        f"#define W{n} {suffix_b}",
        "#endif",
        f"#define GLUE{n}_(a, b) a ## b",
        f"#define GLUE{n}(a, b) GLUE{n}_(a, b)",
        f"static int GLUE{n}(field_, W{n}) = {rng.randrange(100)};",
        f"static int use_{n}(void)",
        "{",
        f"    return GLUE{n}(field_, W{n}) + {n};",
        "}",
    ]
    return out


def _variadic(rng, variables, counter, types) -> List[str]:
    """Variadic macro with GNU comma deletion, called with 0, 1, and
    2 variadic arguments (plus, sometimes, a conditional body)."""
    n = next(counter)
    var = _var(rng, variables)
    named = rng.random() < 0.3
    params = "args..." if named else "fmt, ..."
    va = "args" if named else "__VA_ARGS__"
    head = "" if named else "fmt"
    lines: List[str] = []
    if rng.random() < 0.5:
        lines += [f"#ifdef {var}",
                  f"#define LOG{n}({params}) sink(1{'' if named else ', ' + head}, ## {va})",
                  "#else",
                  f"#define LOG{n}({params}) sink(0{'' if named else ', ' + head}, ## {va})",
                  "#endif"]
    else:
        lines.append(f"#define LOG{n}({params}) "
                     f"sink(2{'' if named else ', ' + head}, ## {va})")
    if named:
        calls = [f"LOG{n}()", f"LOG{n}({n})", f"LOG{n}({n}, {n + 1})"]
    else:
        calls = [f"LOG{n}(7)", f"LOG{n}(7, {n})",
                 f"LOG{n}(7, {n}, {n + 1})"]
    lines.append(f"static int vlog_{n}(void)")
    lines.append("{")
    for call in calls:
        lines.append(f"    {call};")
    lines.append(f"    return {n};")
    lines.append("}")
    return lines


def _guarded_arith(rng, variables, counter, types) -> List[str]:
    """#if arithmetic where short-circuiting protects a division (or
    modulo) by a possibly-zero or undefined quantity."""
    n = next(counter)
    var = _var(rng, variables)
    divisor = f"{var}"
    op = rng.choice(["/", "%"])
    shape = rng.randrange(6)
    if shape == 0:
        guard = f"defined({var}) && (8 {op} {divisor} > 0)"
    elif shape == 1:
        guard = f"!defined({var}) || (8 {op} {divisor} > 0)"
    elif shape == 2:
        guard = f"defined({var}) ? (8 {op} {divisor}) : {n % 2}"
    elif shape == 3:
        # Constant-false guard: the dead operand is a constant
        # division by zero gcc never evaluates.
        guard = f"0 && (8 {op} 0)"
    elif shape == 4:
        guard = f"1 || (8 {op} 0)"
    else:
        guard = f"defined({var}) || 1 ? {n % 2} : (8 {op} 0)"
    return [
        f"#if {guard}",
        f"static int guard_{n} = 1;",
        "#else",
        f"static int guard_{n} = 0;",
        "#endif",
    ]


def _escaped_literal(rng, variables, counter, types) -> List[str]:
    """String/char literals stressing escape handling, ending in
    escaped quotes and backslashes."""
    n = next(counter)
    var = _var(rng, variables)
    literals = [r'"esc \" quote"', r'"tail backslash \\"',
                r'"\x41\n\t"', r"'\\'", r"'\''", r'"\""',
                r'L"wide \" one"']
    text = rng.choice(literals)
    char = text.startswith("'") or text.startswith("L'")
    decl_type = "int" if char else "const char *"
    out = [
        f"#ifdef {var}",
        f"#define S{n} {text}",
        "#else",
        f"#define S{n} " + (r"'\n'" if char else r'"plain \\ text"'),
        "#endif",
        f"static {decl_type} lit_{n} = S{n};",
    ]
    return out


def _conditional_typedef(rng, variables, counter, types) -> List[str]:
    n = next(counter)
    var = _var(rng, variables)
    name = f"fz{n}_t"
    types.append(name)
    return [
        f"#ifdef {var}",
        f"typedef unsigned long {name};",
        "#else",
        f"typedef int {name};",
        "#endif",
        f"static {name} obj_{n};",
    ]


def _conditional_function(rng, variables, counter, types) -> List[str]:
    """A function whose body (and sometimes a trailing parameter) is
    conditional — Figure 1's partial-construct bracketing."""
    n = next(counter)
    var = _var(rng, variables)
    t = rng.choice(types)
    out = [
        f"static int cond_{n}(int x)",
        "{",
        f"    {t} local = ({t})x;",
        f"#ifdef {var}",
        "    if (x > 0)",
        "        local = local + 1;",
        "    else",
        "#endif",
        "    local = local - 1;",
        "    return (int)local;",
        "}",
    ]
    return out


def _plain_function(rng, variables, counter, types) -> List[str]:
    n = next(counter)
    limit = rng.randrange(3, 9)
    return [
        f"static int plain_{n}(int v)",
        "{",
        "    int i;",
        "    int acc = 0;",
        f"    for (i = 0; i < {limit}; i++)",
        f"        acc += (v >> i) & {limit};",
        "    return acc;",
        "}",
    ]


def _guarded_error(rng, variables, counter, types) -> List[str]:
    """A conditional ``#error`` — invalid in the guarded
    configurations, clean everywhere else.  Exercises error
    confinement (the branch must come back pruned, not crashed)."""
    n = next(counter)
    var = _var(rng, variables)
    return [
        f"#ifdef {var}",
        f'#error "fuzz: configuration {var} unsupported ({n})"',
        "#else",
        f"static int safe_{n} = {n};",
        "#endif",
    ]


def _guarded_missing_include(rng, variables, counter, types) -> List[str]:
    """A conditional ``#include`` of a header that does not exist —
    the include failure must be confined to the guard's condition."""
    n = next(counter)
    var = _var(rng, variables)
    return [
        f"#ifdef {var}",
        f'#include "no_such_header_{n}.h"',
        "#else",
        f"static int fallback_{n} = {n};",
        "#endif",
    ]


_BUILDERS = {
    "paste_conditional": _paste_conditional,
    "variadic": _variadic,
    "guarded_arith": _guarded_arith,
    "escaped_literal": _escaped_literal,
    "conditional_typedef": _conditional_typedef,
    "conditional_function": _conditional_function,
    "plain_function": _plain_function,
    "guarded_error": _guarded_error,
    "guarded_missing_include": _guarded_missing_include,
}
