"""Unit tests for configuration-preserving macro expansion.

Exercises the paper's Figures 2-5 directly at the expansion layer via
the full preprocessor (expansion needs the driver to populate the
conditional macro table).
"""

from repro.cpp import Conditional, is_flat, iter_tokens
from tests.support import preprocess, project_unit, texts


def tree_texts(unit):
    return [t.text for t in iter_tokens(unit.tree)]


class TestObjectLike:
    def test_simple(self):
        unit = preprocess("#define X 42\nX")
        assert tree_texts(unit) == ["42"]

    def test_nested(self):
        unit = preprocess("#define A B\n#define B 7\nA")
        assert tree_texts(unit) == ["7"]

    def test_self_reference_stops(self):
        unit = preprocess("#define X X\nX")
        assert tree_texts(unit) == ["X"]

    def test_mutual_recursion_stops(self):
        unit = preprocess("#define A B\n#define B A\nA B")
        assert tree_texts(unit) == ["A", "B"]

    def test_definition_order_respected(self):
        source = "#define A 1\nA\n#define A 2\nA"
        unit = preprocess(source)
        assert tree_texts(unit) == ["1", "2"]

    def test_undef_respected(self):
        source = "#define A 1\nA\n#undef A\nA"
        unit = preprocess(source)
        assert tree_texts(unit) == ["1", "A"]

    def test_empty_body(self):
        unit = preprocess("#define NOTHING\na NOTHING b")
        assert tree_texts(unit) == ["a", "b"]


class TestFunctionLike:
    def test_single_arg(self):
        unit = preprocess("#define SQ(x) ((x)*(x))\nSQ(3)")
        assert tree_texts(unit) == list("((3)*(3))")

    def test_multiple_args(self):
        unit = preprocess("#define ADD(a, b) a + b\nADD(1, 2)")
        assert tree_texts(unit) == ["1", "+", "2"]

    def test_nested_invocation_in_args(self):
        unit = preprocess("#define SQ(x) x*x\nSQ(SQ(2))")
        assert tree_texts(unit) == ["2", "*", "2", "*", "2", "*", "2"]

    def test_no_parens_not_invocation(self):
        unit = preprocess("#define F(x) x\nF + 1")
        assert tree_texts(unit) == ["F", "+", "1"]

    def test_invocation_spans_lines(self):
        unit = preprocess("#define F(a,b) a b\nF(1,\n2)")
        assert tree_texts(unit) == ["1", "2"]

    def test_empty_argument(self):
        unit = preprocess("#define F(a, b) [a|b]\nF(, 2)")
        assert tree_texts(unit) == ["[", "|", "2", "]"]

    def test_zero_params(self):
        unit = preprocess("#define F() 9\nF()")
        assert tree_texts(unit) == ["9"]

    def test_variadic(self):
        unit = preprocess(
            "#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\n"
            'LOG("x", 1, 2)')
        assert tree_texts(unit) == \
            ["printf", "(", '"x"', ",", "1", ",", "2", ")"]

    def test_gnu_named_variadic(self):
        unit = preprocess("#define LOG(args...) printf(args)\nLOG(1, 2)")
        assert tree_texts(unit) == ["printf", "(", "1", ",", "2", ")"]

    def test_parenthesized_arg_with_commas(self):
        unit = preprocess("#define ID(x) x\nID((a, b))")
        assert tree_texts(unit) == ["(", "a", ",", "b", ")"]

    def test_object_then_function(self):
        unit = preprocess(
            "#define CALL F\n#define F(x) <x>\nCALL(5)")
        assert tree_texts(unit) == ["<", "5", ">"]


class TestPasteAndStringify:
    def test_paste(self):
        unit = preprocess("#define GLUE(a, b) a ## b\nGLUE(fo, o)")
        assert tree_texts(unit) == ["foo"]

    def test_paste_builds_macro_name_not_reexpanded(self):
        # C99: the pasted token is not re-expanded as the gluing macro.
        source = ("#define foo 42\n"
                  "#define GLUE(a, b) a ## b\n"
                  "GLUE(f, oo)")
        unit = preprocess(source)
        assert tree_texts(unit) == ["42"]

    def test_stringify(self):
        unit = preprocess('#define STR(x) #x\nSTR(hello world)')
        assert tree_texts(unit) == ['"hello world"']

    def test_stringify_preserves_inner_strings(self):
        unit = preprocess('#define STR(x) #x\nSTR("quoted")')
        assert tree_texts(unit) == ['"\\"quoted\\""']

    def test_stringify_raw_not_expanded(self):
        unit = preprocess('#define N 4\n#define STR(x) #x\nSTR(N)')
        assert tree_texts(unit) == ['"N"']

    def test_paste_raw_not_expanded(self):
        unit = preprocess(
            "#define N 4\n#define GLUE(a,b) a##b\nGLUE(N, N)")
        assert tree_texts(unit) == ["NN"]

    def test_empty_paste_operand(self):
        unit = preprocess("#define GLUE(a,b) [a##b]\nGLUE(x,)")
        assert tree_texts(unit) == ["[", "x", "]"]


class TestMultiplyDefined:
    SOURCE = ("#ifdef CONFIG_64BIT\n"
              "#define BITS_PER_LONG 64\n"
              "#else\n"
              "#define BITS_PER_LONG 32\n"
              "#endif\n"
              "int x = BITS_PER_LONG;\n")

    def test_figure2_expands_to_conditional(self):
        unit = preprocess(self.SOURCE)
        conditionals = [i for i in unit.tree if isinstance(i, Conditional)]
        assert len(conditionals) == 1
        assert len(conditionals[0].branches) == 2

    def test_figure2_projections(self):
        unit = preprocess(self.SOURCE)
        on = texts(project_unit(unit, {"CONFIG_64BIT": "1"}))
        off = texts(project_unit(unit, {}))
        assert on == ["int", "x", "=", "64", ";"]
        assert off == ["int", "x", "=", "32", ";"]

    def test_partially_defined_macro(self):
        source = ("#ifdef A\n#define M 1\n#endif\nM\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == ["1"]
        assert texts(project_unit(unit, {})) == ["M"]


class TestHoistedInvocations:
    FIGURE34 = (
        "#define __cpu_to_le32(x) ((__le32)(__u32)(x))\n"
        "#ifdef __KERNEL__\n"
        "#define cpu_to_le32 __cpu_to_le32\n"
        "#endif\n"
        "cpu_to_le32(val);\n")

    def test_figure4_kernel_config(self):
        unit = preprocess(self.FIGURE34)
        kernel = texts(project_unit(unit, {"__KERNEL__": "1"}))
        assert kernel == ["(", "(", "__le32", ")", "(", "__u32", ")",
                          "(", "val", ")", ")", ";"]

    def test_figure4_nonkernel_config(self):
        unit = preprocess(self.FIGURE34)
        user = texts(project_unit(unit, {}))
        assert user == ["cpu_to_le32", "(", "val", ")", ";"]

    def test_figure4_hoist_counted(self):
        unit = preprocess(self.FIGURE34)
        assert unit.stats.hoisted_invocations >= 1

    def test_explicit_conditional_inside_args(self):
        source = ("#define F(x) [x]\n"
                  "F(\n"
                  "#ifdef A\n"
                  "1\n"
                  "#else\n"
                  "2\n"
                  "#endif\n"
                  ")\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == ["[", "1", "]"]
        assert texts(project_unit(unit, {})) == ["[", "2", "]"]

    def test_conditional_changes_arg_count(self):
        source = ("#define F(x, y) (x | y)\n"
                  "#define G(x) (x)\n"
                  "#ifdef A\n"
                  "F(1,\n"
                  "#else\n"
                  "G(\n"
                  "#endif\n"
                  "2)\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == \
            ["(", "1", "|", "2", ")"]
        assert texts(project_unit(unit, {})) == ["(", "2", ")"]

    def test_figure5_paste_over_multiply_defined(self):
        source = ("#ifdef CONFIG_64BIT\n"
                  "#define BITS_PER_LONG 64\n"
                  "#else\n"
                  "#define BITS_PER_LONG 32\n"
                  "#endif\n"
                  "#define uintBPL_t uint(BITS_PER_LONG)\n"
                  "#define uint(x) xuint(x)\n"
                  "#define xuint(x) __le ## x\n"
                  "uintBPL_t *p;\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"CONFIG_64BIT": "1"})) == \
            ["__le64", "*", "p", ";"]
        assert texts(project_unit(unit, {})) == ["__le32", "*", "p", ";"]


class TestStatistics:
    def test_invocation_counts(self):
        unit = preprocess("#define A 1\n#define B A\nA B")
        assert unit.stats.invocations == 3  # A, B, nested A
        assert unit.stats.nested_invocations == 1

    def test_builtin_counted(self):
        unit = preprocess("__STDC__\n")
        assert unit.stats.builtin_invocations == 1

    def test_paste_and_stringify_counts(self):
        unit = preprocess(
            "#define G(a,b) a##b\n#define S(x) #x\nG(a,b) S(q)")
        assert unit.stats.token_pastings == 1
        assert unit.stats.stringifications == 1
