"""HTTP/JSON frontend for the parse daemon.

The socket dialect (:mod:`repro.serve.server`) is fast but bespoke;
this module puts a standard HTTP/1.1 surface on the *same* protocol
core, so browsers, ``curl``, load balancers, and the
variability-visualization tooling of the related work can reach a
running daemon without a custom client:

====== =================  ============================================
method route              op
====== =================  ============================================
POST   ``/v1/parse``      :class:`~repro.serve.protocol.ParseRequest`
POST   ``/v1/invalidate`` :class:`~repro.serve.protocol.InvalidateRequest`
GET    ``/v1/stats``      :class:`~repro.serve.protocol.StatsRequest`
GET    ``/v1/ping``       :class:`~repro.serve.protocol.PingRequest`
POST   ``/v1/shutdown``   :class:`~repro.serve.protocol.ShutdownRequest`
GET    ``/healthz``       load-balancer health: 200 while serving,
                          503 while draining or while the pool's
                          crash-loop breaker is open
====== =================  ============================================

Request bodies are JSON objects with exactly the socket protocol's
fields (the ``op`` comes from the route); responses are the same JSON
envelopes the socket emits, with the envelope ``status`` mapped onto a
meaningful HTTP code through the protocol's single
:data:`~repro.serve.protocol.HTTP_STATUS_CODES` table —
200 ok/degraded, 400 malformed request, 422 parse-failed/error,
429 shed, 503 crashed/unavailable, 504 timeout.

**Semantics are identical to the socket path by construction**: every
handler thread admits its request through
:meth:`~repro.serve.server.ParseServer.submit_request`, which runs the
same admission queue, the same deadline bookkeeping (queue wait counts
against the budget), the same shedding, and the same dispatcher
threads — the HTTP layer is framing only.  ``ThreadingHTTPServer``
handler threads are the HTTP analogue of the socket's per-connection
reader threads: they block on a response slot, never parse.

Framing is Content-Length on both sides and connections are keep-alive
(HTTP/1.1 default), so one client connection can serve many requests
— the warm-cache point of the daemon survives the transport.

Observability: ``serve.http.requests`` / ``serve.http.errors``
counters (the per-request ``serve.request`` spans come from the shared
service layer).  Chaos: the ``http.send`` site fires before every
response; an armed ``torn-body`` fault truncates the response mid-body
and drops the connection, ``drop-conn`` closes the socket before any
byte — both heal through the HTTP client's reconnect-and-resend.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import chaos
from repro.obs.tracer import NULL_TRACER
from repro.serve import protocol
from repro.serve.protocol import ProtocolError

# (method, path) -> op, inverted from the protocol's single op->route
# table so frontend and client transport can never disagree.  The op
# is route-determined; any "op" field in the body is ignored, so a
# body cannot smuggle a different operation past the route's
# semantics.
ROUTES: Dict[Tuple[str, str], str] = {
    (method, route): op
    for op, (method, route) in protocol.HTTP_ROUTES.items()
}

HEALTH_ROUTE = "/healthz"

# Bodies above this are refused with 413 before being read — the same
# bound the pool puts on a pipe frame.
MAX_BODY = 64 * 1024 * 1024


class _HttpServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its frontend and never blocks
    shutdown on a lingering keep-alive connection."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], handler: type,
                 frontend: "HttpFrontend"):
        self.frontend = frontend
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request: route, decode, admit, answer."""

    protocol_version = "HTTP/1.1"
    server_version = "superc-serve"

    # -- entry points --------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == HEALTH_ROUTE:
            self._handle_health()
        else:
            self._handle_op("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle_op("POST")

    # -- plumbing ------------------------------------------------------

    @property
    def frontend(self) -> "HttpFrontend":
        return self.server.frontend

    def log_message(self, format: str, *args: Any) -> None:
        # Quiet by default; the obs counters and spans carry the story.
        pass

    def _read_body(self) -> Optional[dict]:
        """Content-Length-framed JSON body; {} when absent.  Answers
        the HTTP error itself and returns None when unusable."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            if self.command == "POST":
                self._send_error_envelope(
                    411, "POST needs a Content-Length-framed body")
                return None
            return {}
        try:
            length = int(length_header)
        except ValueError:
            self._send_error_envelope(400, "bad Content-Length")
            return None
        if length > MAX_BODY:
            self._send_error_envelope(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_error_envelope(400, f"bad request body: {exc}")
            return None
        if not isinstance(body, dict):
            self._send_error_envelope(
                400, "request body must be a JSON object")
            return None
        return body

    def _handle_op(self, method: str) -> None:
        frontend = self.frontend
        if frontend.tracer.enabled:
            frontend.tracer.count("serve.http.requests")
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        op = ROUTES.get((method, path))
        if op is None:
            known = {route for _method, route in ROUTES}
            if path in known or path == HEALTH_ROUTE:
                self._send_error_envelope(
                    405, f"{method} not allowed on {path}")
            else:
                self._send_error_envelope(404, f"no route {path}")
            return
        body = self._read_body()
        if body is None:
            return
        body["op"] = op
        try:
            request = protocol.decode_request(body)
        except ProtocolError as exc:
            # Validation failures are the client's fault: 400, with
            # the same error envelope the socket would have sent.
            self._send_json(400, protocol.error_reply(
                exc.request_id, exc.op or op, str(exc)))
            return
        response = frontend.server.submit_request(request)
        self._send_json(protocol.http_status(response.get("status")),
                        response)

    def _handle_health(self) -> None:
        """Load-balancer health: 200 while serving, 503 while draining
        or while the worker pool's crash-loop breaker is open."""
        server = self.frontend.server
        pool = server.service.pool
        breaker_open = pool is not None and pool.breaker.tripped
        draining = server.queue.draining
        healthy = not breaker_open and not draining
        body = {
            "status": "ok" if healthy else "unavailable",
            "draining": draining,
            "breaker_open": breaker_open,
            "protocol": protocol.PROTOCOL_VERSION,
        }
        self._send_json(200 if healthy else 503, body)

    # -- response writing ----------------------------------------------

    def _send_error_envelope(self, code: int, message: str) -> None:
        if self.frontend.tracer.enabled:
            self.frontend.tracer.count("serve.http.errors")
        self._send_json(code, protocol.error_reply(None, None, message))

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        if code >= 400 and self.frontend.tracer.enabled:
            self.frontend.tracer.count("serve.http.errors")
        try:
            if chaos.ACTIVE is not None:
                # "drop-conn" closes the socket under us right here;
                # "torn-body" tags the box and we act it out below.
                box: Dict[str, Any] = {}
                chaos.fire("http.send", sock=self.connection, box=box)
                if box.get("torn"):
                    # Full Content-Length, half the body, then a hard
                    # close: the client sees an IncompleteRead mid-
                    # reply and must reconnect and resend.
                    self.send_response(code)
                    self.send_header("Content-Type",
                                     "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body[:max(1, len(body) // 2)])
                    self.wfile.flush()
                    self.close_connection = True
                    self.connection.close()
                    return
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            # The peer (or a chaos fault) tore the connection; there
            # is nobody left to answer.
            self.close_connection = True


class HttpFrontend:
    """The daemon's HTTP listener: binds, serves on daemon threads,
    and rides the owning :class:`~repro.serve.server.ParseServer`'s
    admission queue for every request."""

    def __init__(self, server: Any, host: str = "127.0.0.1",
                 port: int = 0, tracer: Any = None):
        self.server = server
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._requested = (host, port)
        self._httpd: Optional[_HttpServer] = None
        self._thread: Optional[threading.Thread] = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> "HttpFrontend":
        """Bind (port 0 picks a free port) and serve in the
        background."""
        if self._httpd is not None:
            return self
        self._httpd = _HttpServer(self._requested, _Handler, self)
        self.address = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http", daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def url(self) -> Optional[str]:
        if self.address is None:
            return None
        return "http://%s:%d" % self.address


__all__ = ["HEALTH_ROUTE", "HttpFrontend", "ROUTES"]
