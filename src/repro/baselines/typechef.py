"""The TypeChef-proxy baseline: SAT-backed presence conditions.

TypeChef represents presence conditions as formulas that must be
converted to conjunctive normal form for its SAT solver; the paper
attributes TypeChef's latency knee (Figure 9, ~25 s then a long tail)
to exactly this conversion, where SuperC's BDDs answer the same
queries canonically (§6.3).

This module provides a drop-in condition algebra with the same
interface as :class:`repro.bdd.BDDManager`/``BDDNode`` — structural
formula nodes whose feasibility test performs naive distributive CNF
conversion plus a hand-written DPLL solver.  Running the *same*
preprocessor and FMLR engine over this algebra isolates the paper's
claimed mechanism: everything else is identical, only the condition
representation changes.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

# A CNF clause is a frozenset of literals; a literal is (name, polarity).
Literal = Tuple[str, bool]
Clause = FrozenSet[Literal]

_MISSING = object()  # cache sentinel (None is a valid cached value)

_TREE_SIZE_CAP = 4096  # saturation point for Formula.tree_size


class Formula:
    """A boolean formula node (var / not / and / or / const)."""

    __slots__ = ("op", "children", "name", "value", "manager", "_sat",
                 "_cnf", "_literals", "_model", "_residuals",
                 "_support", "_restricted_sat", "tree_size",
                 "_tseitin")

    def __init__(self, manager: "FormulaManager", op: str,
                 children: Tuple["Formula", ...] = (),
                 name: str = "", value: bool = False):
        self.manager = manager
        self.op = op
        self.children = children
        self.name = name
        self.value = value
        self._sat: Optional[bool] = None
        self._cnf: Optional[List[Clause]] = None
        # When this formula is a pure conjunction of literals, the
        # name->polarity map (None otherwise).  Maintained
        # incrementally at construction so that satisfiability of the
        # dominant presence-condition shape is O(1) per query instead
        # of a full-tree walk.
        self._literals: Optional[Dict[str, bool]] = None
        # A cached satisfying assignment, when one is known.  Parent
        # conjunctions try to *extend* a child's model with the other
        # side's literals (O(k)), which covers the dominant presence-
        # condition query shape without touching the SAT solver.
        self._model: Optional[Dict[str, bool]] = None
        # Conjunct decomposition: this formula viewed as
        # literals ∧ residual₁ ∧ residual₂ ∧ …, where residuals are
        # non-literal conjuncts.  When residuals are pairwise
        # variable-disjoint, satisfiability decomposes exactly.
        self._residuals: Optional[Tuple["Formula", ...]] = None
        self._support: Optional[FrozenSet[str]] = None
        self._restricted_sat: Optional[Dict[Tuple, bool]] = None
        # Saturating *tree* size: formulas are hash-consed DAGs, and
        # tree-expanding a shared DAG (naive CNF, NNF) explodes; past
        # the saturation cap conversion goes straight to the DAG-aware
        # Tseitin encoding.
        self.tree_size = 1 + sum(child.tree_size for child in children)
        if self.tree_size > _TREE_SIZE_CAP:
            self.tree_size = _TREE_SIZE_CAP
        # (aux literal, defining clauses) for the DAG-aware Tseitin
        # encoding; filled on demand, shared across queries.
        self._tseitin: Optional[Tuple[Literal, List[Clause]]] = None
        if op == "var":
            self._literals = {name: True}
            self._model = self._literals
            self._residuals = ()
        elif op == "not" and children[0].op == "var":
            self._literals = {children[0].name: False}
            self._model = self._literals
            self._residuals = ()
        elif op in ("or", "not"):
            # The node is a single non-literal conjunct (an atom from
            # the decomposition's point of view).
            self._residuals = (self,)
        elif op == "and":
            if any(child._sat is False for child in children):
                self._sat = False
            else:
                self._merge_conjunction(children)
        elif op == "or":
            for child in children:
                if child._sat is True:
                    self._sat = True
                    self._model = child._model
                    break

    def _merge_conjunction(self, children) -> None:
        """Combine the children's conjunct decompositions."""
        left, right = children
        if left._literals is None or right._literals is None or \
                left._residuals is None or right._residuals is None:
            # At least one side is not decomposable; still try the
            # cheap model extension for the SAT answer.
            for big, small in ((left, right), (right, left)):
                if big._model is not None and \
                        small._literals is not None and \
                        small._residuals == ():
                    extended = _extend_model(big._model,
                                             small._literals)
                    if extended is not None:
                        self._sat = True
                        self._model = extended
                        return
            return
        small_map, big_map = left._literals, right._literals
        if len(small_map) > len(big_map):
            small_map, big_map = big_map, small_map
        merged = dict(big_map)
        for key, polarity in small_map.items():
            if merged.setdefault(key, polarity) != polarity:
                self._sat = False  # complementary literals
                return
        self._literals = merged
        residuals = left._residuals
        for residual in right._residuals:
            if residual not in residuals:
                residuals = residuals + (residual,)
        if len(residuals) > 12:
            self._literals = None
            return  # too wide: fall back to the solver on demand
        self._residuals = residuals
        if not residuals:
            self._sat = True
            self._model = merged
        elif self._model is None:
            for big, small in ((left, right), (right, left)):
                if big._model is not None and \
                        small._literals is not None and \
                        small._residuals == ():
                    extended = _extend_model(big._model,
                                             small._literals)
                    if extended is not None:
                        self._sat = True
                        self._model = extended
                        break

    # -- algebra ------------------------------------------------------------
    # Nodes are hash-consed through the manager (TypeChef caches
    # formulae too); structural sharing keeps SAT/CNF caches effective.

    def __and__(self, other: "Formula") -> "Formula":
        if self.op == "const":
            return other if self.value else self
        if other.op == "const":
            return self if other.value else other
        if self is other:
            return self
        return self.manager._mk("and", (self, other))

    def __or__(self, other: "Formula") -> "Formula":
        if self.op == "const":
            return self if self.value else other
        if other.op == "const":
            return other if other.value else self
        if self is other:
            return self
        joined = _join_or(self, other)
        if joined is not None:
            return joined
        return self.manager._mk("or", (self, other))

    def __invert__(self) -> "Formula":
        if self.op == "const":
            return self.manager.constant(not self.value)
        if self.op == "not":
            return self.children[0]
        return self.manager._mk("not", (self,))

    def implies(self, other: "Formula") -> "Formula":
        return ~self | other

    def equiv(self, other: "Formula") -> "Formula":
        return (self & other) | (~self & ~other)

    # -- queries ------------------------------------------------------------

    def is_satisfiable(self) -> bool:
        if self._sat is None:
            self.manager.sat_queries += 1
            decomposed = self._solve_decomposed()
            if decomposed is None:
                model = _dpll_model(list(self.to_cnf()), {})
                self._sat = model is not None
                self._model = model
            else:
                self._sat = decomposed
        return self._sat

    def support_set(self) -> FrozenSet[str]:
        """Variables this formula mentions (cached)."""
        if self._support is None:
            names = set()
            stack = [self]
            while stack:
                node = stack.pop()
                if node.op == "var":
                    names.add(node.name)
                else:
                    stack.extend(node.children)
            self._support = frozenset(names)
        return self._support

    def _solve_decomposed(self) -> Optional[bool]:
        """Exact satisfiability via the conjunct decomposition:
        literals ∧ residuals, valid when residuals are pairwise
        variable-disjoint (their only interaction is through the fixed
        literals).  Returns None when not applicable."""
        if self._literals is None or not self._residuals:
            return None
        literals = self._literals
        supports = [residual.support_set()
                    for residual in self._residuals]
        for i, left in enumerate(supports):
            for right in supports[i + 1:]:
                if left & right:
                    return None  # entangled residuals: full solver
        model = dict(literals)
        for residual, support in zip(self._residuals, supports):
            relevant = tuple(sorted(
                (name, literals[name]) for name in support
                if name in literals))
            cache = residual._restricted_sat
            if cache is None:
                cache = residual._restricted_sat = {}
            sub_model = cache.get(relevant, _MISSING)
            if sub_model is _MISSING:
                clauses = list(residual.to_cnf())
                clauses.extend(frozenset({literal})
                               for literal in relevant)
                sub_model = _dpll_model(clauses, {})
                cache[relevant] = sub_model
            if sub_model is None:
                return False
            for key, value in sub_model.items():
                model.setdefault(key, value)
        self._model = model
        return True

    def is_false(self) -> bool:
        return not self.is_satisfiable()

    def is_true(self) -> bool:
        return (~self).is_false()

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        op = self.op
        if op == "const":
            return self.value
        if op == "var":
            return assignment.get(self.name, False)
        if op == "not":
            return not self.children[0].evaluate(assignment)
        if op == "and":
            return all(c.evaluate(assignment) for c in self.children)
        return any(c.evaluate(assignment) for c in self.children)

    def to_expr_string(self) -> str:
        op = self.op
        if op == "const":
            return "1" if self.value else "0"
        if op == "var":
            return self.name
        if op == "not":
            return "!(" + self.children[0].to_expr_string() + ")"
        joiner = " && " if op == "and" else " || "
        return "(" + joiner.join(c.to_expr_string()
                                 for c in self.children) + ")"

    # -- CNF conversion (the bottleneck, by design) ----------------------------

    def to_cnf(self) -> List[Clause]:
        """Naive distributive CNF conversion (no auxiliary variables),
        mirroring the exponential behaviour the paper blames for
        TypeChef's scalability knee.  A clause budget caps the worst
        case: beyond it, conversion falls back to a Tseitin encoding
        (equisatisfiable, linear), so the proxy stays usable while the
        conversion cost remains the dominant term.

        Clause sets are cached per (hash-consed) node and reused by
        parent conjunctions/disjunctions, as TypeChef's formula cache
        does; negations convert their subtree afresh (NNF push-down).
        """
        if self._cnf is None:
            self.manager.cnf_conversions += 1
            budget = self.manager.clause_budget
            try:
                op = self.op
                if self.tree_size >= _TREE_SIZE_CAP:
                    # A shared DAG this large cannot be tree-expanded.
                    raise _CNFBudgetExceeded()
                if op == "const":
                    cnf = [] if self.value else [frozenset()]
                elif op == "var":
                    cnf = [frozenset({(self.name, True)})]
                elif op == "and":
                    cnf = []
                    for child in self.children:
                        cnf.extend(child.to_cnf())
                    if len(cnf) > budget:
                        raise _CNFBudgetExceeded()
                elif op == "or":
                    parts = [child.to_cnf() for child in self.children]
                    cnf = parts[0]
                    for part in parts[1:]:
                        if len(cnf) * len(part) > budget:
                            raise _CNFBudgetExceeded()
                        cnf = _simplify(
                            [left | right for left, right
                             in itertools.product(cnf, part)])
                else:  # not: push the negation down, no cache reuse
                    cnf = _cnf(_nnf(self, False), budget)
            except _CNFBudgetExceeded:
                self.manager.tseitin_fallbacks += 1
                cnf = self.manager.tseitin_cnf(self)
            self._cnf = cnf
            self.manager.cnf_clauses += len(cnf)
        return self._cnf

    def __repr__(self) -> str:
        return f"Formula({self.to_expr_string()})"


def _nnf(formula: Formula, negate: bool) -> Formula:
    """Push negations down to literals."""
    manager = formula.manager
    op = formula.op
    if op == "const":
        return manager.constant(formula.value != negate)
    if op == "var":
        return Formula(manager, "not", (formula,)) if negate else formula
    if op == "not":
        return _nnf(formula.children[0], not negate)
    children = tuple(_nnf(child, negate) for child in formula.children)
    flipped = ("or" if op == "and" else "and") if negate else op
    return Formula(manager, flipped, children)


class _CNFBudgetExceeded(Exception):
    """Naive distribution produced too many clauses."""


def _cnf(formula: Formula, budget: int) -> List[Clause]:
    return _cnf_nnf(_nnf(formula, False), budget)


def _cnf_nnf(formula: Formula, budget: int) -> List[Clause]:
    op = formula.op
    if op == "const":
        return [] if formula.value else [frozenset()]
    if op == "var":
        return [frozenset({(formula.name, True)})]
    if op == "not":  # NNF: negation only on variables
        return [frozenset({(formula.children[0].name, False)})]
    if op == "and":
        clauses: List[Clause] = []
        for child in formula.children:
            clauses.extend(_cnf_nnf(child, budget))
            if len(clauses) > budget:
                raise _CNFBudgetExceeded()
        return _simplify(clauses)
    # or: distribute — the exponential step.
    parts = [_cnf_nnf(child, budget) for child in formula.children]
    clauses = parts[0]
    for part in parts[1:]:
        if len(clauses) * len(part) > budget:
            raise _CNFBudgetExceeded()
        clauses = [left | right
                   for left, right in itertools.product(clauses, part)]
        clauses = _simplify(clauses)
    return clauses


def _neg(literal: Literal) -> Literal:
    return (literal[0], not literal[1])


def _simplify(clauses: Iterable[Clause]) -> List[Clause]:
    """Drop tautological and duplicate clauses."""
    out: List[Clause] = []
    seen = set()
    for clause in clauses:
        if clause in seen:
            continue
        if any((name, not polarity) in clause
               for name, polarity in clause):
            continue  # tautology
        seen.add(clause)
        out.append(clause)
    return out


def _join_or(left: Formula, right: Formula) -> Optional[Formula]:
    """Structural or-simplification over conjunct decompositions.

    Two rules keep fork-merge conditions from snowballing (their BDD
    counterparts are automatic; TypeChef-style tools implement them as
    formula simplification):

    * complementary join: (L ∧ x) ∨ (L ∧ ¬x) → L
    * absorption:         L ∨ (L ∧ …) → L
    """
    left_lits, right_lits = left._literals, right._literals
    if left_lits is None or right_lits is None:
        return None
    left_res, right_res = left._residuals, right._residuals
    if left_res is None or right_res is None:
        return None
    left_set, right_set = set(left_res), set(right_res)
    # Absorption.
    if left_lits.items() <= right_lits.items() and \
            left_set <= right_set:
        return left
    if right_lits.items() <= left_lits.items() and \
            right_set <= left_set:
        return right
    # Complementary join.
    if left_set != right_set or len(left_lits) != len(right_lits):
        return None
    if set(left_lits) != set(right_lits):
        return None
    differing = [name for name, polarity in left_lits.items()
                 if right_lits[name] != polarity]
    if len(differing) != 1:
        return None
    dropped = differing[0]
    manager = left.manager
    result = manager.true
    for name in sorted(left_lits):
        if name == dropped:
            continue
        variable = manager.var(name)
        result = result & (variable if left_lits[name]
                           else ~variable)
    for residual in left_res:
        result = result & residual
    return result


def _extend_model(model: Dict[str, bool],
                  literals: Dict[str, bool]) \
        -> Optional[Dict[str, bool]]:
    """Extend a satisfying assignment with extra literals, or None if
    any literal contradicts it."""
    extended: Optional[Dict[str, bool]] = None
    for name, polarity in literals.items():
        known = model.get(name)
        if known is None:
            if extended is None:
                extended = dict(model)
            extended[name] = polarity
        elif known != polarity:
            return None
    return extended if extended is not None else model


def _assign(clauses: List[Clause], name: str,
            value: bool) -> List[Clause]:
    """Condition a clause set on one variable assignment."""
    out: List[Clause] = []
    for clause in clauses:
        if (name, value) in clause:
            continue  # clause satisfied
        if (name, not value) in clause:
            clause = frozenset(lit for lit in clause
                               if lit[0] != name)
        out.append(clause)
    return out


def _dpll(clauses: List[Clause]) -> bool:
    """DPLL satisfiability over a clause list."""
    return _dpll_model(clauses, {}) is not None


def _dpll_model(clauses: List[Clause],
                _assignment_unused: Dict[str, bool]) \
        -> Optional[Dict[str, bool]]:
    """Iterative DPLL with counting-based propagation and a trail.

    Clauses are indexed per variable, so propagating an assignment
    touches only the clauses that mention it — essential for the large
    Tseitin-encoded inputs this baseline produces.
    """
    clause_list = [tuple(clause) for clause in clauses if clause]
    if any(not clause for clause in clauses):
        return None
    if not clause_list:
        return {}
    occurrences: Dict[str, List[int]] = {}
    unassigned = [len(clause) for clause in clause_list]
    satisfied_by: List[int] = [-1] * len(clause_list)  # trail depth
    assignment: Dict[str, bool] = {}
    for index, clause in enumerate(clause_list):
        for name, _polarity in clause:
            occurrences.setdefault(name, []).append(index)

    trail: List[Tuple[str, bool, bool]] = []  # (name, value, decision)

    def propagate(name: str, value: bool, decision: bool) \
            -> Optional[List[int]]:
        """Assign and update clause counters; returns newly-unit
        clause indices, or None on conflict."""
        assignment[name] = value
        trail.append((name, value, decision))
        depth = len(trail)
        units: List[int] = []
        conflict = False
        # Process every occurrence even after a conflict so the trail
        # and counters stay symmetric for undo.
        for index in occurrences.get(name, ()):
            if satisfied_by[index] >= 0:
                continue
            clause = clause_list[index]
            if (name, value) in clause:
                satisfied_by[index] = depth
            else:
                unassigned[index] -= 1
                if unassigned[index] == 0:
                    conflict = True
                elif unassigned[index] == 1:
                    units.append(index)
        return None if conflict else units

    def undo_to(depth: int) -> None:
        while len(trail) > depth:
            name, _value, _decision = trail.pop()
            del assignment[name]
            for index in occurrences.get(name, ()):
                if satisfied_by[index] > len(trail):
                    satisfied_by[index] = -1
                    continue
                if satisfied_by[index] == -1:
                    unassigned[index] += 1
        # Recompute unassigned counts for clauses we un-satisfied is
        # handled above: a clause satisfied at depth d keeps its
        # counter frozen from the moment of satisfaction, so restoring
        # it only needs the satisfied flag cleared; counters for its
        # other literals were never decremented past that point.

    def unit_literal(index: int) -> Optional[Tuple[str, bool]]:
        for name, polarity in clause_list[index]:
            if name not in assignment:
                return (name, polarity)
        return None

    def propagate_queue(queue: List[int]) -> bool:
        while queue:
            index = queue.pop()
            if satisfied_by[index] >= 0:
                continue
            literal = unit_literal(index)
            if literal is None:
                continue
            result = propagate(literal[0], literal[1], False)
            if result is None:
                return False
            queue.extend(result)
        return True

    # Initial units.
    initial = [index for index, clause in enumerate(clause_list)
               if len(clause) == 1]
    if not propagate_queue(initial):
        return None

    decisions: List[int] = []  # trail depths of open decisions

    def pick() -> Optional[Tuple[str, bool]]:
        for index, clause in enumerate(clause_list):
            if satisfied_by[index] >= 0:
                continue
            literal = unit_literal(index)
            if literal is not None:
                return literal
        return None

    tried_other: List[bool] = []
    while True:
        literal = pick()
        if literal is None:
            return dict(assignment)
        depth = len(trail)
        decisions.append(depth)
        tried_other.append(False)
        name, polarity = literal
        units = propagate(name, polarity, True)
        ok = units is not None and propagate_queue(units)
        while not ok:
            # Backtrack to the most recent decision not yet flipped.
            while decisions and tried_other[-1]:
                undo_to(decisions.pop())
                tried_other.pop()
            if not decisions:
                return None
            depth = decisions[-1]
            # Identify the decision literal before undoing.
            decision_name, decision_value, _ = trail[depth]
            undo_to(depth)
            tried_other[-1] = True
            units = propagate(decision_name, not decision_value, True)
            ok = units is not None and propagate_queue(units)


class FormulaManager:
    """Drop-in replacement for :class:`BDDManager` using formulas."""

    def __init__(self, clause_budget: int = 20000) -> None:
        self._vars: Dict[str, Formula] = {}
        self._interned: Dict[Tuple, Formula] = {}
        self.true = Formula(self, "const", value=True)
        self.false = Formula(self, "const", value=False)
        self.true._sat = True
        self.false._sat = False
        self.clause_budget = clause_budget
        self._tseitin_counter = 0
        # Instrumentation for the Figure 9 analysis.
        self.sat_queries = 0
        self.cnf_conversions = 0
        self.cnf_clauses = 0
        self.tseitin_fallbacks = 0

    def stats(self) -> Dict[str, float]:
        """Observability snapshot mirroring ``BDDManager.stats`` so
        per-unit profiles work over either condition algebra."""
        return {
            "formulas": len(self._interned),
            "variables": len(self._vars),
            "sat_queries": self.sat_queries,
            "cnf_conversions": self.cnf_conversions,
            "cnf_clauses": self.cnf_clauses,
            "tseitin_fallbacks": self.tseitin_fallbacks,
        }

    def tseitin_cnf(self, formula: Formula) -> List[Clause]:
        """DAG-aware Tseitin encoding: every hash-consed node gets one
        auxiliary literal and its defining clauses exactly once,
        shared across all queries; a query's CNF is the defining
        clauses of the reachable nodes plus the root unit clause."""
        # Pass 1: assign literals bottom-up (iterative post-order).
        stack: List[Tuple[Formula, bool]] = [(formula, False)]
        while stack:
            node, ready = stack.pop()
            if node._tseitin is not None:
                continue
            op = node.op
            if op == "var":
                node._tseitin = ((node.name, True), [])
                continue
            if op == "const":
                name = f"@const{'T' if node.value else 'F'}"
                defs = [frozenset({(name, node.value)})]
                node._tseitin = ((name, True), defs)
                continue
            if not ready:
                stack.append((node, True))
                stack.extend((child, False) for child in node.children)
                continue
            literals = [child._tseitin[0] for child in node.children]
            if op == "not":
                node._tseitin = (_neg(literals[0]), [])
                continue
            self._tseitin_counter += 1
            aux: Literal = (f"@t{self._tseitin_counter}", True)
            defs = []
            if op == "and":
                for literal in literals:
                    defs.append(frozenset({_neg(aux), literal}))
                defs.append(frozenset({aux} |
                                      {_neg(l) for l in literals}))
            else:  # or
                defs.append(frozenset({_neg(aux)} | set(literals)))
                for literal in literals:
                    defs.append(frozenset({aux, _neg(literal)}))
            node._tseitin = (aux, defs)
        # Pass 2: collect defining clauses of the reachable DAG.
        clauses: List[Clause] = []
        seen = set()
        walk = [formula]
        while walk:
            node = walk.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            clauses.extend(node._tseitin[1])
            walk.extend(node.children)
        clauses.append(frozenset({formula._tseitin[0]}))
        return clauses

    def _mk(self, op: str, children: Tuple[Formula, ...]) -> Formula:
        key = (op,) + tuple(id(child) for child in children)
        node = self._interned.get(key)
        if node is None:
            node = Formula(self, op, children)
            self._interned[key] = node
        return node

    def var(self, name: str) -> Formula:
        node = self._vars.get(name)
        if node is None:
            node = Formula(self, "var", name=name)
            node._sat = True
            self._vars[name] = node
        return node

    def nvar(self, name: str) -> Formula:
        return ~self.var(name)

    def constant(self, value: bool) -> Formula:
        return self.true if value else self.false

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(self._vars)

    def conjoin(self, nodes: Iterable[Formula]) -> Formula:
        result = self.true
        for node in nodes:
            result = result & node
        return result

    def disjoin(self, nodes: Iterable[Formula]) -> Formula:
        result = self.false
        for node in nodes:
            result = result | node
        return result

    def apply_and(self, left: Formula, right: Formula) -> Formula:
        return left & right

    def apply_or(self, left: Formula, right: Formula) -> Formula:
        return left | right

    def apply_not(self, node: Formula) -> Formula:
        return ~node
