"""Unit tests for AST utilities: choice construction, projection,
traversal, and rendering."""

import pytest

from repro.bdd import BDDManager
from repro.lexer.tokens import Token, TokenKind
from repro.parser.ast import (Node, StaticChoice, count_choice_nodes,
                              count_nodes, dump, iter_tokens,
                              make_choice, project)


@pytest.fixture()
def mgr():
    return BDDManager()


def tok(text):
    return Token(TokenKind.IDENTIFIER, text)


class TestMakeChoice:
    def test_single_branch_collapses(self, mgr):
        node = Node("X", (tok("a"),))
        assert make_choice([(mgr.true, node)]) is node

    def test_two_branches(self, mgr):
        a = mgr.var("A")
        one, two = Node("X", ()), Node("Y", ())
        choice = make_choice([(a, one), (~a, two)])
        assert isinstance(choice, StaticChoice)
        assert len(choice.branches) == 2

    def test_equal_values_merge_conditions(self, mgr):
        a = mgr.var("A")
        node = Node("X", ())
        merged = make_choice([(a, node), (~a, Node("X", ()))])
        # Equal values under complementary conditions: no choice left.
        assert merged == node

    def test_nested_choice_flattened(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        inner = StaticChoice(((b, Node("P", ())), (~b, Node("Q", ()))))
        outer = make_choice([(a, inner), (~a, Node("R", ()))])
        assert isinstance(outer, StaticChoice)
        assert len(outer.branches) == 3
        for condition, _value in outer.branches:
            assert not condition.is_false()


class TestProjection:
    def test_project_node(self, mgr):
        a = mgr.var("A")
        choice = StaticChoice(((a, tok("x")), (~a, tok("y"))))
        root = Node("Root", (choice,))
        on = project(root, {"A": True})
        off = project(root, {"A": False})
        assert on.children[0].text == "x"
        assert off.children[0].text == "y"

    def test_project_absent_branch(self, mgr):
        a = mgr.var("A")
        choice = StaticChoice(((a, tok("x")),))  # no else coverage
        root = Node("Root", (tok("pre"), choice))
        off = project(root, {"A": False})
        assert [t.text for t in off.children] == ["pre"]

    def test_project_splices_list_choices(self, mgr):
        a = mgr.var("A")
        choice = StaticChoice(((a, (tok("x"), tok("y"))),
                               (~a, (tok("z"),))))
        sequence = (tok("head"), choice, tok("tail"))
        on = project(sequence, {"A": True})
        assert [t.text for t in on] == ["head", "x", "y", "tail"]
        off = project(sequence, {"A": False})
        assert [t.text for t in off] == ["head", "z", "tail"]


class TestTraversal:
    def test_iter_tokens_order(self, mgr):
        a = mgr.var("A")
        tree = Node("R", (tok("one"),
                          StaticChoice(((a, tok("two")),
                                        (~a, tok("three")))),
                          tok("four")))
        assert [t.text for t in iter_tokens(tree)] == \
            ["one", "two", "three", "four"]

    def test_count_nodes(self, mgr):
        a = mgr.var("A")
        tree = Node("R", (Node("S", ()),
                          StaticChoice(((a, Node("T", ())),))))
        assert count_nodes(tree) == 4
        assert count_choice_nodes(tree) == 1

    def test_counts_through_tuples(self, mgr):
        tree = (Node("A", ()), (Node("B", ()),))
        assert count_nodes(tree) == 2
        assert count_choice_nodes(tree) == 0


class TestDump:
    def test_dump_node(self):
        text = dump(Node("Decl", (tok("int"), tok("x"))))
        assert "Decl" in text
        assert "'int'" in text

    def test_dump_choice_shows_conditions(self, mgr):
        a = mgr.var("CONFIG_A")
        choice = StaticChoice(((a, tok("x")), (~a, tok("y"))))
        text = dump(choice)
        assert "StaticChoice" in text
        assert "CONFIG_A" in text

    def test_dump_handles_none_and_tuples(self):
        assert dump(None).strip() == "-"
        assert "List" in dump((tok("a"),))
        assert dump(()) .strip() == "[]"


class TestEquality:
    def test_node_equality(self):
        assert Node("X", ()) == Node("X", ())
        assert Node("X", ()) != Node("Y", ())
        assert hash(Node("X", ())) == hash(Node("X", ()))

    def test_choice_equality(self, mgr):
        a = mgr.var("A")
        one = StaticChoice(((a, Node("X", ())),))
        two = StaticChoice(((a, Node("X", ())),))
        assert one == two
        assert hash(one) == hash(two)
