"""Tests for the command-line tools."""

import json

import pytest

from repro.tools import batch_cli, parse_cli, report_cli


@pytest.fixture()
def source_tree(tmp_path):
    (tmp_path / "include").mkdir()
    (tmp_path / "include" / "util.h").write_text(
        "#ifndef UTIL_H\n#define UTIL_H\n"
        "#define DOUBLE(x) ((x) * 2)\n#endif\n")
    main = tmp_path / "main.c"
    main.write_text(
        "#include <util.h>\n"
        "#ifdef CONFIG_FAST\n"
        "int speed = DOUBLE(21);\n"
        "#else\n"
        "int speed = 21;\n"
        "#endif\n"
        "int main(void) { return speed; }\n")
    return tmp_path


class TestParseCli:
    def test_parse_ok(self, source_tree, capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include")])
        out = capsys.readouterr().out
        assert code == 0
        assert "ok" in out
        assert "subparsers (max)" in out

    def test_missing_file(self, tmp_path, capsys):
        code = parse_cli.main([str(tmp_path / "nope.c")])
        assert code == 2

    def test_preprocess_only(self, source_tree, capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--preprocess-only"])
        out = capsys.readouterr().out
        assert code == 0
        assert "#[defined:CONFIG_FAST]" in out
        # The macro is expanded (not evaluated): ((21) * 2).
        assert "( ( 21 ) * 2 )" in out

    def test_dump_ast(self, source_tree, capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--dump-ast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "StaticChoice" in out

    def test_stats(self, source_tree, capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--stats"])
        out = capsys.readouterr().out
        assert "macro_definitions" in out

    def test_projection(self, source_tree, capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--project", "defined:CONFIG_FAST"])
        out = capsys.readouterr().out
        assert code == 0
        assert "projection [defined:CONFIG_FAST]" in out
        assert "* 2" in out or "*2" in out

    def test_parse_error_exit_code(self, tmp_path, capsys):
        # Broken in every configuration: a hard parse failure.
        bad = tmp_path / "bad.c"
        bad.write_text("int x = ;\nint y;\n")
        code = parse_cli.main([str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out

    def test_degraded_exit_code(self, tmp_path, capsys):
        # Broken only under A: the other configurations still parse,
        # so the result is partial ("degraded", exit 2).
        bad = tmp_path / "partial.c"
        bad.write_text("#ifdef A\nint x = ;\n#endif\nint y;\n")
        code = parse_cli.main([str(bad)])
        out = capsys.readouterr().out
        assert code == 2
        assert "degraded" in out

    def test_define_option(self, tmp_path, capsys):
        src = tmp_path / "d.c"
        src.write_text("int v = VALUE;\n")
        code = parse_cli.main([str(src), "-D", "VALUE=7"])
        assert code == 0

    def test_mapr_option(self, source_tree, capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--optimization", "MAPR"])
        assert code == 0

    def test_json_output(self, source_tree, capsys):
        code = parse_cli.main([str(source_tree / "main.c"),
                               "-I", str(source_tree / "include"),
                               "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["status"] == "ok"
        assert record["unit"].endswith("main.c")
        assert set(record["timing"]) == {"lex", "preprocess", "parse",
                                         "total"}
        assert record["subparsers"]["max"] >= 1
        assert record["preprocessor"]["macro_definitions"] >= 1

    def test_json_parse_failure(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int x = ;\nint y;\n")
        code = parse_cli.main([str(bad), "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 1
        assert record["status"] == "parse-failed"
        assert record["failures"]

    def test_json_degraded(self, tmp_path, capsys):
        bad = tmp_path / "partial.c"
        bad.write_text("#ifdef A\nint x = ;\n#endif\nint y;\n")
        code = parse_cli.main([str(bad), "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 2
        assert record["status"] == "degraded"
        assert record["invalid_configs"]

    def test_json_guarded_error_diagnostics(self, tmp_path, capsys):
        src = tmp_path / "guarded.c"
        src.write_text('#ifdef BROKEN\n#error "no BROKEN builds"\n'
                       "#endif\nint fine;\n")
        code = parse_cli.main([str(src), "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 2
        assert record["status"] == "degraded"
        diags = record["diagnostics"]
        assert diags and diags[0]["severity"] == "config-error"
        assert "defined:BROKEN" in record["invalid_configs"]

    def test_preprocessor_error_exit_code(self, tmp_path, capsys):
        src = tmp_path / "pperr.c"
        src.write_text("#if (\nint z;\n#endif\n")
        code = parse_cli.main([str(src)])
        err = capsys.readouterr().err
        assert code == 3
        assert "error:" in err


class TestBatchCli:
    def test_tree_run(self, source_tree, tmp_path, capsys):
        code = batch_cli.main([str(source_tree), "-I", "include",
                               "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "units: 1  ok: 1" in out
        assert "subparsers:" in out

    def test_warm_run_hits_cache(self, source_tree, tmp_path, capsys):
        argv = [str(source_tree), "-I", "include",
                "--cache-dir", str(tmp_path / "cache")]
        batch_cli.main(argv)
        capsys.readouterr()
        code = batch_cli.main(argv)
        out = capsys.readouterr().out
        assert code == 0
        assert "1 hit / 0 miss" in out

    def test_json_report(self, source_tree, tmp_path, capsys):
        code = batch_cli.main([str(source_tree), "-I", "include",
                               "--cache-dir", str(tmp_path / "cache"),
                               "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["by_status"] == {"ok": 1}
        assert "latency" in payload and "subparsers" in payload

    def test_metrics_file(self, source_tree, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        code = batch_cli.main([str(source_tree), "-I", "include",
                               "--cache-dir", str(tmp_path / "cache"),
                               "--metrics", str(metrics)])
        assert code == 0
        events = [json.loads(line)
                  for line in metrics.read_text().splitlines()]
        assert events[0]["event"] == "run-start"
        assert events[-1]["event"] == "run-end"

    def test_parallel_workers(self, source_tree, tmp_path, capsys):
        code = batch_cli.main([str(source_tree), "-I", "include",
                               "--cache-dir", str(tmp_path / "cache"),
                               "--workers", "2"])
        assert code == 0

    def test_failure_exit_code(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "bad.c").write_text("int x = ;\nint y;\n")
        code = batch_cli.main([str(tree),
                               "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 1
        assert "parse-failed: 1" in out

    def test_degraded_counts_as_coverage(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "partial.c").write_text(
            "#ifdef A\nint x = ;\n#endif\nint y;\n")
        code = batch_cli.main([str(tree),
                               "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert code == 0
        assert "degraded: 1" in out

    def test_empty_tree(self, tmp_path, capsys):
        tree = tmp_path / "empty"
        tree.mkdir()
        code = batch_cli.main([str(tree)])
        assert code == 2

    def test_no_input(self, capsys):
        assert batch_cli.main([]) == 2


class TestReportCli:
    def test_report(self, source_tree, capsys):
        code = report_cli.main([str(source_tree),
                                "-I", "include"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 2a" in out
        assert "Table 2b" in out
        assert "Table 3" in out
        assert "Macro Definitions" in out

    def test_skip_tools_view(self, source_tree, capsys):
        code = report_cli.main([str(source_tree), "--skip-tools-view"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 3" not in out

    def test_empty_tree(self, tmp_path, capsys):
        code = report_cli.main([str(tmp_path)])
        assert code == 2


class TestFuzzCli:
    def test_clean_run(self, capsys):
        from repro.tools import fuzz_cli
        code = fuzz_cli.main(["--units", "3", "--seed", "0",
                              "--timeout", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "units: 3  ok: 3" in out

    def test_json_output(self, capsys):
        from repro.tools import fuzz_cli
        code = fuzz_cli.main(["--units", "2", "--seed", "5",
                              "--timeout", "60", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["units"] == 2
        assert payload["counterexamples"] == []

    def test_metrics_stream(self, tmp_path, capsys):
        from repro.tools import fuzz_cli
        path = tmp_path / "fuzz.jsonl"
        code = fuzz_cli.main(["--units", "2", "--seed", "0",
                              "--timeout", "60",
                              "--metrics", str(path)])
        assert code == 0
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        kinds = {event["event"] for event in events}
        assert {"run-start", "unit", "run-end"} <= kinds

    def test_bad_weight(self, capsys):
        from repro.tools import fuzz_cli
        with pytest.raises(SystemExit):
            fuzz_cli.main(["--weight", "nonsense=3"])

    def test_weight_override(self, capsys):
        from repro.tools import fuzz_cli
        code = fuzz_cli.main(["--units", "2", "--seed", "1",
                              "--timeout", "60", "--no-shrink",
                              "--weight", "variadic=10",
                              "--weight", "plain_function=0"])
        assert code == 0
