"""Parsing and evaluating ``#if`` conditional expressions.

One parser produces a small expression AST; two evaluators consume it:

* :func:`evaluate_int` — the plain C semantics (remaining identifiers
  are 0), used by the single-configuration oracle preprocessor, and
* the BDD conversion in :mod:`repro.cpp.conditions` (§3.2), which maps
  constants, free macros, ``defined`` invocations, and opaque
  arithmetic subexpressions onto boolean structure.

Every AST node carries its normalized source text (whitespace and
comments removed) so that repeated occurrences of the same non-boolean
subexpression map to the same BDD variable (§3.2).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.lexer.tokens import Token, TokenKind


class ExprError(Exception):
    """Malformed conditional expression."""


class Expr:
    """One expression AST node.

    ``kind`` is one of: int, ident, defined, unary, binary, ternary.
    ``text`` is the normalized source text of the whole subexpression.
    """

    __slots__ = ("kind", "op", "operands", "value", "name", "text")

    def __init__(self, kind: str, text: str, op: str = "",
                 operands: Tuple["Expr", ...] = (),
                 value: int = 0, name: str = ""):
        self.kind = kind
        self.text = text
        self.op = op
        self.operands = operands
        self.value = value
        self.name = name

    def __repr__(self) -> str:
        return f"Expr({self.kind}, {self.text!r})"


# Binary operator precedence (higher binds tighter); all left-assoc.
_BINARY_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39,
            '"': 34, "a": 7, "b": 8, "f": 12, "v": 11}


class _Parser:
    def __init__(self, tokens: Sequence[Token]):
        self.tokens = [t for t in tokens
                       if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
        self.pos = 0

    def peek(self) -> Optional[Token]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ExprError("unexpected end of conditional expression")
        self.pos += 1
        return token

    def expect(self, text: str) -> None:
        token = self.next()
        if token.text != text:
            raise ExprError(f"expected {text!r}, found {token.text!r}")

    # -- grammar ---------------------------------------------------------

    def parse(self) -> Expr:
        expr = self.ternary()
        if self.peek() is not None:
            raise ExprError(
                f"trailing tokens in conditional expression: "
                f"{self.peek().text!r}")
        return expr

    def ternary(self) -> Expr:
        cond = self.binary(1)
        token = self.peek()
        if token is not None and token.is_punctuator("?"):
            self.next()
            then = self.ternary()
            self.expect(":")
            other = self.ternary()
            text = f"{cond.text}?{then.text}:{other.text}"
            return Expr("ternary", text, operands=(cond, then, other))
        return cond

    def binary(self, min_prec: int) -> Expr:
        left = self.unary()
        while True:
            token = self.peek()
            if token is None or token.kind is not TokenKind.PUNCTUATOR:
                return left
            prec = _BINARY_PREC.get(token.text)
            if prec is None or prec < min_prec:
                return left
            op = self.next().text
            right = self.binary(prec + 1)
            left = Expr("binary", f"{left.text}{op}{right.text}",
                        op=op, operands=(left, right))

    def unary(self) -> Expr:
        token = self.peek()
        if token is None:
            raise ExprError("unexpected end of conditional expression")
        if token.kind is TokenKind.PUNCTUATOR and token.text in "!~+-":
            op = self.next().text
            operand = self.unary()
            return Expr("unary", f"{op}{operand.text}", op=op,
                        operands=(operand,))
        return self.primary()

    def primary(self) -> Expr:
        token = self.next()
        if token.is_punctuator("("):
            inner = self.ternary()
            self.expect(")")
            return Expr(inner.kind, f"({inner.text})", op=inner.op,
                        operands=inner.operands, value=inner.value,
                        name=inner.name)
        if token.kind is TokenKind.NUMBER:
            return Expr("int", token.text, value=parse_int(token.text))
        if token.kind is TokenKind.CHARACTER:
            return Expr("int", token.text, value=parse_char(token.text))
        if token.is_identifier("defined"):
            after = self.peek()
            if after is not None and after.is_punctuator("("):
                self.next()
                name = self.next()
                self.expect(")")
            else:
                name = self.next()
            if name.kind is not TokenKind.IDENTIFIER:
                raise ExprError("operand of 'defined' must be a name")
            return Expr("defined", f"defined({name.text})", name=name.text)
        if token.kind is TokenKind.IDENTIFIER:
            return Expr("ident", token.text, name=token.text)
        raise ExprError(
            f"unexpected token in conditional expression: {token.text!r}")


def parse_expression(tokens: Sequence[Token]) -> Expr:
    """Parse a ``#if`` expression from already-expanded tokens."""
    return _Parser(tokens).parse()


def parse_int(text: str) -> int:
    """Parse a C integer literal (suffixes stripped, any base)."""
    body = text.rstrip("uUlL")
    try:
        if body.lower().startswith("0x"):
            return int(body, 16)
        if body.lower().startswith("0b"):
            return int(body, 2)
        if body.startswith("0") and len(body) > 1:
            return int(body, 8)
        return int(body, 10)
    except ValueError:
        raise ExprError(f"invalid integer constant {text!r}") from None


def parse_char(text: str) -> int:
    """Evaluate a character constant to its integer value."""
    body = text[1:-1] if not text.startswith("L") else text[2:-1]
    if body.startswith("\\"):
        rest = body[1:]
        if rest and rest[0] in _ESCAPES and len(rest) == 1:
            return _ESCAPES[rest[0]]
        if rest.startswith("x"):
            return int(rest[1:], 16)
        if rest and rest[0].isdigit():
            return int(rest, 8)
        raise ExprError(f"invalid escape in character constant {text!r}")
    if len(body) != 1:
        raise ExprError(f"invalid character constant {text!r}")
    return ord(body)


def evaluate_int(expr: Expr,
                 is_defined: Callable[[str], bool],
                 value_of: Callable[[str], int]) -> int:
    """Plain C evaluation: used by the single-configuration oracle.

    ``value_of`` supplies values for identifiers that survive macro
    expansion; per C semantics these are normally 0.
    """
    kind = expr.kind
    if kind == "int":
        return expr.value
    if kind == "ident":
        return value_of(expr.name)
    if kind == "defined":
        return 1 if is_defined(expr.name) else 0
    if kind == "unary":
        value = evaluate_int(expr.operands[0], is_defined, value_of)
        if expr.op == "!":
            return 0 if value else 1
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        return value
    if kind == "ternary":
        cond, then, other = expr.operands
        if evaluate_int(cond, is_defined, value_of):
            return evaluate_int(then, is_defined, value_of)
        return evaluate_int(other, is_defined, value_of)
    # binary
    op = expr.op
    left = evaluate_int(expr.operands[0], is_defined, value_of)
    if op == "&&":
        if not left:
            return 0
        return 1 if evaluate_int(expr.operands[1], is_defined, value_of) \
            else 0
    if op == "||":
        if left:
            return 1
        return 1 if evaluate_int(expr.operands[1], is_defined, value_of) \
            else 0
    right = evaluate_int(expr.operands[1], is_defined, value_of)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExprError("division by zero in conditional expression")
        return int(left / right)  # C truncates toward zero
    if op == "%":
        if right == 0:
            raise ExprError("division by zero in conditional expression")
        return left - int(left / right) * right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    raise ExprError(f"unknown operator {op!r}")


def collect_identifiers(expr: Expr) -> List[str]:
    """All bare identifiers in the expression (free macros after
    expansion), excluding ``defined`` operands."""
    names: List[str] = []

    def walk(node: Expr) -> None:
        if node.kind == "ident":
            names.append(node.name)
        for operand in node.operands:
            walk(operand)

    walk(expr)
    return names
