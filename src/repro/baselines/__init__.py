"""Baselines: MAPR (an FMLR option set), TypeChef-proxy, gcc-like."""

from repro.baselines.gcc_like import GccLike, GccLikeResult, allyesconfig
from repro.baselines.typechef import Formula, FormulaManager

__all__ = [
    "Formula", "FormulaManager", "GccLike", "GccLikeResult",
    "allyesconfig",
]
