"""Deterministic fault injection for the parse pipeline and daemon.

Fault-tolerance claims are only as good as the faults they were tested
against.  This module lets tests and the ``superc-serve
--chaos-smoke`` harness inject *specific* failures at *specific*
moments — a worker crash on exactly the k-th dispatched request, a
hang that outlives the deadline, a truncated cache blob, a dropped
client socket, an ``ENOSPC`` on a cache write — and replay the exact
same schedule from a seed.

**Zero overhead when disabled.**  Production call sites guard the hook
with one module-attribute test::

    from repro import chaos
    ...
    if chaos.ACTIVE is not None:
        chaos.fire("cache.get", path=path)

``ACTIVE`` is ``None`` unless a plan is installed, so the un-injected
path costs a single global load and an ``is not None`` — no calls, no
allocation.  The module is a leaf (imports nothing from ``repro``), so
any layer can hook itself without import cycles.

**Determinism.**  A :class:`FaultPlan` is a schedule: every hook site
keeps an invocation counter, and each :class:`Fault` names the site,
the fault kind, and the 1-based invocation count ``at`` which it
fires (exactly once).  ``arm()`` schedules a fault relative to the
*current* count — the idiom for scripted harnesses — and specs
constructed with ``at=None`` draw their position from the plan's
seeded RNG.  Every injection is appended to ``plan.log``, so a
harness can assert that each planned fault actually fired.

Fault kinds and the context keys their sites must pass:

================  =====================  ==============================
kind              site context           effect
================  =====================  ==============================
``worker-crash``  ``request`` (dict)     tags the wire request so the
                                         pool worker ``os._exit``\\ s
                                         mid-request
``worker-hang``   ``request`` (dict)     tags the wire request so the
                                         worker sleeps ``seconds``
                                         (defaults to 30) past any
                                         deadline
``corrupt-blob``  ``path`` (str)         truncates the on-disk blob at
                                         ``path`` to garbage
``enospc``        —                      raises ``OSError(ENOSPC)``
                                         from inside the hook
``drop-conn``     ``sock`` (socket)      closes the socket under the
                                         sender mid-response
``torn-body``     ``box`` (dict)         tags the box so the HTTP
                                         frontend writes a truncated
                                         response body and hard-closes
                                         mid-reply
``raise``         —                      raises ``args["exc"]`` (tests)
================  =====================  ==============================
"""

from __future__ import annotations

import contextlib
import errno
import random
import socket
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence

KINDS = ("worker-crash", "worker-hang", "corrupt-blob", "enospc",
         "drop-conn", "torn-body", "raise")

# The installed plan, or None.  Call sites test this directly; only
# ever rebind through install()/uninstall() so tests compose.
ACTIVE: Optional["FaultPlan"] = None


class Fault:
    """One scheduled fault: fire ``kind`` on invocation ``at`` of
    ``site`` (1-based per-site count), then never again."""

    __slots__ = ("site", "kind", "at", "args")

    def __init__(self, site: str, kind: str, at: Optional[int] = None,
                 **args: Any):
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        self.site = site
        self.kind = kind
        self.at = at
        self.args = args

    def __repr__(self) -> str:
        return f"Fault({self.site!r}, {self.kind!r}, at={self.at})"


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    Thread-safe: the serve daemon fires hooks from several dispatcher
    threads at once, and counters/consumption are guarded by one lock.
    Faults with ``at=None`` are pinned at construction from the seeded
    RNG (within ``1..window``), so the same seed always yields the
    same schedule.
    """

    def __init__(self, faults: Sequence[Fault] = (), seed: int = 0,
                 window: int = 3):
        self.seed = seed
        self.rng = random.Random(seed)
        self.counts: Dict[str, int] = {}
        self.log: List[dict] = []
        self._lock = threading.Lock()
        self._pending: List[Fault] = []
        for fault in faults:
            if fault.at is None:
                fault.at = self.rng.randint(1, max(1, window))
            self._pending.append(fault)

    # -- scheduling ----------------------------------------------------

    def arm(self, site: str, kind: str, after: int = 0,
            **args: Any) -> Fault:
        """Schedule ``kind`` on the next-plus-``after`` invocation of
        ``site`` (scripted harnesses arm one fault per phase)."""
        with self._lock:
            fault = Fault(site, kind,
                          at=self.counts.get(site, 0) + 1 + after,
                          **args)
            self._pending.append(fault)
        return fault

    @property
    def pending(self) -> List[Fault]:
        with self._lock:
            return list(self._pending)

    def fired(self, kind: Optional[str] = None) -> int:
        """How many faults have fired (of one kind, or overall)."""
        with self._lock:
            return sum(1 for entry in self.log
                       if kind is None or entry["kind"] == kind)

    # -- the hook ------------------------------------------------------

    def fire(self, site: str, ctx: Dict[str, Any]) -> None:
        with self._lock:
            count = self.counts.get(site, 0) + 1
            self.counts[site] = count
            fault = None
            for candidate in self._pending:
                if candidate.site == site and candidate.at == count:
                    fault = candidate
                    break
            if fault is None:
                return
            self._pending.remove(fault)
            self.log.append({"site": site, "kind": fault.kind,
                             "at": count})
        self._apply(fault, ctx)

    # -- kind implementations ------------------------------------------

    @staticmethod
    def _apply(fault: Fault, ctx: Dict[str, Any]) -> None:
        kind = fault.kind
        if kind == "worker-crash":
            request = ctx.get("request")
            if request is not None:
                request["_chaos"] = "crash"
        elif kind == "worker-hang":
            request = ctx.get("request")
            if request is not None:
                request["_chaos"] = "hang"
                request["_chaos_seconds"] = float(
                    fault.args.get("seconds", 30.0))
        elif kind == "corrupt-blob":
            path = ctx.get("path")
            if path:
                try:
                    with open(path, "r+b") as handle:
                        handle.seek(0)
                        handle.write(b'{"chaos-truncated')
                        handle.truncate()
                except OSError:
                    pass
        elif kind == "enospc":
            raise OSError(errno.ENOSPC,
                          "No space left on device (chaos)")
        elif kind == "drop-conn":
            sock = ctx.get("sock")
            if sock is not None:
                # shutdown() before close(): another thread blocked in
                # recv() on this socket holds the kernel object alive
                # past close(), so only shutdown() delivers the FIN
                # (and wakes that reader) immediately.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        elif kind == "torn-body":
            # Like worker-crash's request tagging: the site owns the
            # response bytes, so it acts the truncation out itself.
            box = ctx.get("box")
            if box is not None:
                box["torn"] = True
        elif kind == "raise":
            raise fault.args.get("exc") or RuntimeError("chaos")


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the active schedule (replacing any other)."""
    global ACTIVE
    ACTIVE = plan
    return plan


def uninstall() -> None:
    """Deactivate fault injection (the production state)."""
    global ACTIVE
    ACTIVE = None


def fire(site: str, **ctx: Any) -> None:
    """Hook entry point; a no-op unless a plan is installed.  Guard
    call sites with ``if chaos.ACTIVE is not None`` so the disabled
    path never even calls this."""
    plan = ACTIVE
    if plan is not None:
        plan.fire(site, ctx)


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block (tests)."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()
