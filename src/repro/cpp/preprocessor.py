"""The configuration-preserving preprocessor driver (§3).

Accepts C files, performs all preprocessor operations while preserving
static conditionals, and produces *compilation units*: token trees in
which the only remaining preprocessor construct is the
:class:`~repro.cpp.tree.Conditional` node.

Design notes:

* Directives are processed in document order.  Text tokens are tagged
  with the macro-table *version* at which they appeared and collected
  into per-branch buffers; macro expansion runs once at the end over
  the whole tree, replaying table history per token, which keeps
  deferred invocations (spanning lines and conditionals) correct.
* Conditional-expression evaluation (#if/#elif) happens eagerly: the
  expression's macros are expanded (protecting ``defined``), implicit
  conditionals are hoisted around the expression, and each flat branch
  is parsed, constant-folded, and converted to a BDD (§3.2).
* ``#error`` branches are recorded as infeasible and their tokens are
  dropped (Table 1: "Ignore erroneous branches").  ``#line``,
  ``#warning``, and ``#pragma`` become annotations.
* Error confinement generalizes the ``#error`` treatment to *every*
  preprocessing failure: a bad ``#if`` expression, an unresolvable or
  too-deep include, a malformed ``#define``/``#undef``, or a broken
  macro invocation occurring under a non-TRUE presence condition is
  recorded as a condition-scoped :class:`repro.errors.Diagnostic`,
  its configurations join ``error_conditions`` (so
  ``feasible_condition`` excludes them), the failing branch's tokens
  are pruned, and processing continues.  Hard
  :class:`~repro.cpp.errors.PreprocessorError` is reserved for
  failures whose condition is TRUE — i.e. every configuration is
  broken — and for structural damage (unbalanced conditionals).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bdd import BDDManager, BDDNode
from repro.cpp.conditions import ConditionConverter, defined_var
from repro.cpp.errors import PreprocessorError
from repro.cpp.expansion import Expander, ExpansionStats
from repro.cpp.expression import ExprError, parse_expression
from repro.cpp.hoist import hoist
from repro.cpp.includes import (DictFileSystem, FileSystem, IncludeResolver,
                                detect_guard)
from repro.cpp.macro_table import (FREE, UNDEFINED, MacroDefinition,
                                   MacroTable)
from repro.cpp.tree import Conditional, TokenTree, max_depth
from repro.errors import (Diagnostic, PHASE_CONDITION, PHASE_EXPANSION,
                          PHASE_INCLUDE, PHASE_LEX, PHASE_PREPROCESS,
                          ResourceBudget, SEVERITY_CONFIG,
                          SEVERITY_WARNING, origin_of)
from repro.lexer import lex_logical_lines
from repro.lexer.lexer import LexerError
from repro.lexer.tokens import Token, TokenKind
from repro.obs.tracer import NULL_TRACER

_MAX_INCLUDE_DEPTH = ResourceBudget.DEFAULT_INCLUDE_DEPTH

# Directives whose handlers manage error confinement themselves: the
# conditional family must keep #if/#endif balanced (so confinement
# happens around the condition computation, never around the frame
# push/pop), and #error records its own condition.
_SELF_CONFINED = frozenset(
    ("if", "ifdef", "ifndef", "elif", "else", "endif", "error"))

# gcc-style default built-ins (the "ground truth" of §2.1); callers may
# override or extend.
DEFAULT_BUILTINS = {
    "__STDC__": "1",
    "__STDC_VERSION__": "199901L",
    "__STDC_HOSTED__": "1",
    "__GNUC__": "4",
    "__GNUC_MINOR__": "5",
    "__x86_64__": "1",
    "__linux__": "1",
    "__SIZEOF_LONG__": "8",
    "__SIZEOF_POINTER__": "8",
    "__CHAR_BIT__": "8",
}


class PreprocessorStats:
    """Counters backing Table 3 (the tool's view of preprocessor usage)."""

    def __init__(self) -> None:
        self.macro_definitions = 0
        self.definitions_in_conditionals = 0
        self.redefinitions = 0
        self.trimmed = 0
        self.invocations = 0
        self.nested_invocations = 0
        self.builtin_invocations = 0
        self.hoisted_invocations = 0
        self.token_pastings = 0
        self.hoisted_pastings = 0
        self.stringifications = 0
        self.hoisted_stringifications = 0
        self.includes = 0
        self.hoisted_includes = 0
        self.computed_includes = 0
        self.reincluded_headers = 0
        self.conditionals = 0
        self.hoisted_conditionals = 0
        self.max_conditional_depth = 0
        self.non_boolean_expressions = 0
        self.error_directives = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class CompilationUnit:
    """The preprocessor's output for one C file."""

    def __init__(self, filename: str, tree: TokenTree,
                 manager: BDDManager, table: MacroTable,
                 stats: PreprocessorStats,
                 error_conditions: List[Tuple[BDDNode, str]],
                 warnings: List[Tuple[BDDNode, str]],
                 diagnostics: Optional[List[Diagnostic]] = None):
        self.filename = filename
        self.tree = tree
        self.manager = manager
        self.table = table
        self.stats = stats
        self.error_conditions = error_conditions
        self.warnings = warnings
        # Structured, condition-scoped diagnostics (confined errors
        # first, then warnings); see repro.errors.
        self.diagnostics: List[Diagnostic] = diagnostics or []

    @property
    def feasible_condition(self) -> BDDNode:
        """TRUE minus every ``#error`` branch's presence condition."""
        condition = self.manager.true
        for error_cond, _message in self.error_conditions:
            condition = condition & ~error_cond
        return condition


class _Frame:
    """One open static conditional during processing."""

    __slots__ = ("outer_abs", "remaining", "branches", "current_cond",
                 "buffer", "erroneous", "seen_else", "file", "synthetic")

    def __init__(self, outer_abs: BDDNode, first_cond: BDDNode,
                 filename: str, synthetic: bool = False):
        self.outer_abs = outer_abs
        self.remaining = outer_abs & ~first_cond
        self.branches: List[Tuple[BDDNode, TokenTree]] = []
        self.current_cond = first_cond
        self.buffer: TokenTree = []
        self.erroneous = False
        self.seen_else = False
        self.file = filename
        self.synthetic = synthetic  # wraps an include under a condition


class Preprocessor:
    """Configuration-preserving preprocessor for one compilation unit."""

    def __init__(self, fs: Optional[FileSystem] = None,
                 include_paths: Sequence[str] = (),
                 builtins: Optional[Dict[str, str]] = None,
                 manager: Optional[BDDManager] = None,
                 extra_definitions: Optional[Dict[str, str]] = None,
                 budget: Optional[ResourceBudget] = None,
                 tracer: Any = None):
        self.fs = fs or DictFileSystem({})
        self.resolver = IncludeResolver(self.fs, include_paths)
        self.manager = manager or BDDManager()
        # Observability hooks (repro.obs): per-file spans, the final
        # macro-expansion span, hoist expansion factors, and diagnostic
        # events.  NULL_TRACER makes every hook a no-op.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.table = MacroTable(self.manager)
        self.stats = PreprocessorStats()
        self.budget = budget or ResourceBudget()
        self._expansion_stats = ExpansionStats()
        self.expander = Expander(self.table, self.manager,
                                 self._expansion_stats,
                                 sink=self._expansion_sink,
                                 tracer=self.tracer)
        self.directive_expander = Expander(self.table, self.manager,
                                           self._expansion_stats,
                                           protect_defined=True,
                                           sink=self._expansion_sink,
                                           tracer=self.tracer)
        builtin_map = DEFAULT_BUILTINS if builtins is None else builtins
        for name, body in builtin_map.items():
            self.table.define_builtin(name, body)
        for name, body in (extra_definitions or {}).items():
            self.table.define_builtin(name, body)
        # State reset per run:
        self._frames: List[_Frame] = []
        self._root: TokenTree = []
        self._file_stack: List[str] = []
        self._included: Dict[str, Optional[str]] = {}  # path -> guard
        self.guard_macros: set = set()
        self._errors: List[Tuple[BDDNode, str]] = []
        self._warnings: List[Tuple[BDDNode, str]] = []
        self.diagnostics: List[Diagnostic] = []
        self._pending_annotations: Tuple[str, ...] = ()
        # Time spent lexing (separated out for the Figure 10 latency
        # breakdown); total preprocessing time is measured by callers.
        self.lex_seconds = 0.0

    # -- public API -----------------------------------------------------------

    def preprocess(self, text: str,
                   filename: str = "<input>") -> CompilationUnit:
        """Preprocess source text into a compilation unit."""
        self._process_file(filename, text)
        if self._frames:
            raise PreprocessorError(
                f"unterminated conditional in {self._frames[-1].file}")
        with self.tracer.span("expand-macros"):
            tree = self.expander.expand(self._root, self.manager.true)
        self._merge_stats(tree)
        diagnostics = list(self.diagnostics)
        diagnostics.extend(
            Diagnostic(cond, SEVERITY_WARNING, PHASE_PREPROCESS, message)
            for cond, message in self._warnings)
        return CompilationUnit(filename, tree, self.manager, self.table,
                               self.stats, self._errors, self._warnings,
                               diagnostics)

    def preprocess_file(self, path: str) -> CompilationUnit:
        """Preprocess a file from the file system."""
        text = self.fs.read(path)
        if text is None:
            raise PreprocessorError(f"cannot read {path!r}")
        return self.preprocess(text, path)

    # -- main loop --------------------------------------------------------------

    def _process_file(self, filename: str, text: str) -> None:
        depth_limit = self.budget.max_include_depth
        if len(self._file_stack) > depth_limit:
            raise PreprocessorError(
                f"include depth exceeds {depth_limit} "
                f"(cycle?) at {filename}", phase=PHASE_INCLUDE)
        self._file_stack.append(filename)
        entry_depth = len(self._frames)
        # Nested includes recurse through here, so traced runs get the
        # include tree as nested "file" spans for free.
        with self.tracer.span("file", name=filename):
            with self.tracer.span("lex", file=filename):
                lex_start = time.perf_counter()
                lines = lex_logical_lines(text, filename)
                self.lex_seconds += time.perf_counter() - lex_start
            for line in lines:
                if not line:
                    continue
                if line[0].kind is TokenKind.HASH:
                    self._directive(line, filename)
                else:
                    self._text_line(line)
        if len(self._frames) != entry_depth:
            raise PreprocessorError(
                f"conditional opened in {filename} is not closed there")
        self._file_stack.pop()

    def _abs_condition(self) -> BDDNode:
        if self._frames:
            return self._frames[-1].current_cond
        return self.manager.true

    def _hoist(self, condition: BDDNode, items: Any) -> Any:
        """Hoist via the module-level ``hoist`` (patchable in tests),
        recording the expansion factor when tracing."""
        branches = hoist(condition, items)
        if self.tracer.enabled:
            self.tracer.record("hoist.expansion", len(branches))
        return branches

    # -- error confinement ----------------------------------------------------

    def _record_error(self, condition: BDDNode, message: str, phase: str,
                      token: Optional[Token] = None) -> None:
        """Record a confined, condition-scoped error: its configurations
        join ``error_conditions`` (pruning them from
        ``feasible_condition``) and a structured diagnostic is kept."""
        for known_cond, known_msg in self._errors:
            if known_cond is condition and known_msg == message:
                return  # already recorded (e.g. hoist-retry re-expansion)
        self._errors.append((condition, message))
        self.diagnostics.append(
            Diagnostic(condition, SEVERITY_CONFIG, phase, message,
                       origin_of(token)))
        if self.tracer.enabled:
            self.tracer.event("diagnostic", phase=phase,
                              origin=origin_of(token))
            self.tracer.count("cpp.confined_errors")

    def _confine_or_raise(self, error: PreprocessorError,
                          condition: BDDNode, phase: str) -> None:
        """Confine ``error`` to ``condition`` like an ``#error`` branch,
        or re-raise when every configuration is affected."""
        if condition.is_true():
            raise error
        self._record_error(condition, str(error), phase,
                           getattr(error, "token", None))
        if self._frames:
            frame = self._frames[-1]
            current = frame.current_cond
            if condition is current or condition.equiv(current).is_true():
                # The whole open branch is broken: prune its tokens.
                frame.erroneous = True
                frame.buffer = []

    def _expansion_sink(self, condition: BDDNode,
                        error: PreprocessorError) -> bool:
        """Expander callback: absorb macro-expansion failures occurring
        under a non-TRUE condition (the invocation is dropped)."""
        if condition.is_true():
            return False
        self._record_error(condition, str(error), PHASE_EXPANSION,
                           getattr(error, "token", None))
        return True

    def _buffer(self) -> TokenTree:
        if self._frames:
            return self._frames[-1].buffer
        return self._root

    def _text_line(self, line: List[Token]) -> None:
        if self._frames and self._frames[-1].erroneous:
            return
        if self._abs_condition().is_false():
            return
        buffer = self._buffer()
        version = self.table.version
        for index, token in enumerate(line):
            token.version = version
            if index == 0 and self._pending_annotations:
                token.annotations = token.annotations + \
                    self._pending_annotations
                self._pending_annotations = ()
            buffer.append(token)

    # -- directives ---------------------------------------------------------------

    def _directive(self, line: List[Token], filename: str) -> None:
        if len(line) < 2 or line[1].kind is not TokenKind.IDENTIFIER:
            if len(line) == 1:
                return  # the null directive '#'
            self._warnings.append(
                (self._abs_condition(),
                 f"{filename}: malformed directive"))
            return
        keyword = line[1].text
        rest = line[2:]
        handler = getattr(self, f"_dir_{keyword}", None)
        if handler is None:
            self._warnings.append(
                (self._abs_condition(),
                 f"{filename}: unknown directive #{keyword}"))
            return
        if keyword in _SELF_CONFINED:
            # Conditional structure must stay balanced, so the if-family
            # confines inside its handlers (a frame is always pushed);
            # #error manages its own recording.
            handler(line[1], rest, filename)
            return
        condition = self._abs_condition()
        try:
            handler(line[1], rest, filename)
        except PreprocessorError as error:
            self._confine_or_raise(error, condition,
                                   getattr(error, "phase",
                                           PHASE_PREPROCESS))

    # conditionals

    def _dir_if(self, origin: Token, rest: List[Token],
                filename: str) -> None:
        self.stats.conditionals += 1
        condition = self._eval_expr(rest, self._abs_condition())
        self._frames.append(
            _Frame(self._abs_condition(), condition, filename))
        self.stats.max_conditional_depth = max(
            self.stats.max_conditional_depth, self._real_depth())

    def _dir_ifdef(self, origin: Token, rest: List[Token],
                   filename: str) -> None:
        self.stats.conditionals += 1
        condition = self._ifdef_condition(origin, rest, negate=False)
        self._frames.append(
            _Frame(self._abs_condition(), condition, filename))
        self.stats.max_conditional_depth = max(
            self.stats.max_conditional_depth, self._real_depth())

    def _dir_ifndef(self, origin: Token, rest: List[Token],
                    filename: str) -> None:
        self.stats.conditionals += 1
        condition = self._ifdef_condition(origin, rest, negate=True)
        self._frames.append(
            _Frame(self._abs_condition(), condition, filename))
        self.stats.max_conditional_depth = max(
            self.stats.max_conditional_depth, self._real_depth())

    def _ifdef_condition(self, origin: Token, rest: List[Token],
                         negate: bool) -> BDDNode:
        absolute = self._abs_condition()
        if not rest or rest[0].kind is not TokenKind.IDENTIFIER:
            error = PreprocessorError("#ifdef/#ifndef requires a name",
                                      origin, phase=PHASE_CONDITION)
            if absolute.is_true():
                raise error
            # Confined: the frame is still pushed (keeping #endif
            # balanced) with a false branch condition, and the whole
            # surrounding branch is recorded erroneous.
            self._record_error(absolute, str(error), PHASE_CONDITION,
                               origin)
            return self.manager.false
        defined = self._defined_bdd(rest[0].text, absolute)
        return (absolute & ~defined) if negate else defined

    def _dir_elif(self, origin: Token, rest: List[Token],
                  filename: str) -> None:
        frame = self._require_frame(origin, "#elif")
        if frame.seen_else:
            raise PreprocessorError("#elif after #else", origin)
        self._finish_branch(frame)
        condition = self._eval_expr(rest, frame.remaining)
        frame.current_cond = condition
        frame.remaining = frame.remaining & ~condition
        frame.buffer = []
        frame.erroneous = False

    def _dir_else(self, origin: Token, rest: List[Token],
                  filename: str) -> None:
        frame = self._require_frame(origin, "#else")
        if frame.seen_else:
            raise PreprocessorError("duplicate #else", origin)
        self._finish_branch(frame)
        frame.seen_else = True
        frame.current_cond = frame.remaining
        frame.remaining = self.manager.false
        frame.buffer = []
        frame.erroneous = False

    def _dir_endif(self, origin: Token, rest: List[Token],
                   filename: str) -> None:
        frame = self._require_frame(origin, "#endif")
        self._finish_branch(frame)
        self._frames.pop()
        branches = [(cond, buffer) for cond, buffer in frame.branches
                    if not cond.is_false()]
        if not branches or all(not buffer for _, buffer in branches):
            return
        if len(branches) == 1 and branches[0][0] is frame.outer_abs:
            # The conditional is vacuous here (e.g. `#if 1`, or a guard's
            # #ifndef on first inclusion): splice the branch inline.
            self._buffer().extend(branches[0][1])
            return
        self._buffer().append(Conditional(branches))

    def _require_frame(self, origin: Token, what: str) -> _Frame:
        if not self._frames:
            raise PreprocessorError(f"{what} without #if", origin)
        return self._frames[-1]

    def _finish_branch(self, frame: _Frame) -> None:
        if not frame.erroneous:
            frame.branches.append((frame.current_cond, frame.buffer))

    def _real_depth(self) -> int:
        return sum(1 for frame in self._frames if not frame.synthetic)

    # macros

    def _dir_define(self, origin: Token, rest: List[Token],
                    filename: str) -> None:
        if not rest or rest[0].kind is not TokenKind.IDENTIFIER:
            raise PreprocessorError("#define requires a name", origin)
        name_token = rest[0]
        name = name_token.text
        condition = self._abs_condition()
        if condition.is_false():
            return
        if self._frames:
            # Table 3: syntactic containment (most definitions sit
            # inside a header's include guard).
            self.stats.definitions_in_conditionals += 1
        if len(rest) > 1 and rest[1].is_punctuator("(") \
                and not rest[1].has_space_before:
            params, variadic, va_name, body_start = \
                self._parse_params(origin, rest, 2)
            body = rest[body_start:]
            definition = MacroDefinition(name, body, params, variadic,
                                         va_name=va_name)
        else:
            definition = MacroDefinition(name, rest[1:])
        self.table.define(definition, condition)

    def _parse_params(self, origin: Token, rest: List[Token],
                      start: int) -> Tuple[List[str], bool,
                                           Optional[str], int]:
        params: List[str] = []
        variadic = False
        va_name: Optional[str] = None
        index = start
        expect_name = True
        while index < len(rest):
            token = rest[index]
            if token.is_punctuator(")"):
                return params, variadic, va_name, index + 1
            if token.is_punctuator(","):
                index += 1
                expect_name = True
                continue
            if token.is_punctuator("..."):
                variadic = True
            elif token.kind is TokenKind.IDENTIFIER and expect_name:
                if index + 1 < len(rest) and \
                        rest[index + 1].is_punctuator("..."):
                    # GNU named variadic: args... collects the rest.
                    variadic = True
                    va_name = token.text
                    index += 1
                else:
                    params.append(token.text)
                expect_name = False
            else:
                raise PreprocessorError(
                    f"malformed macro parameter list near {token.text!r}",
                    origin)
            index += 1
        raise PreprocessorError("unterminated macro parameter list",
                                origin)

    def _dir_undef(self, origin: Token, rest: List[Token],
                   filename: str) -> None:
        if not rest or rest[0].kind is not TokenKind.IDENTIFIER:
            raise PreprocessorError("#undef requires a name", origin)
        self.table.undefine(rest[0].text, self._abs_condition())

    # includes

    def _dir_include(self, origin: Token, rest: List[Token],
                     filename: str) -> None:
        condition = self._abs_condition()
        if condition.is_false() or \
                (self._frames and self._frames[-1].erroneous):
            return
        operand = self._header_operand(rest)
        if operand is not None:
            name, quoted = operand
            self.stats.includes += 1
            self._do_include(origin, name, quoted, condition, filename)
            return
        # Computed include: expand, hoist, include per branch.
        self.stats.computed_includes += 1
        version = self.table.version
        for token in rest:
            token.version = version
        expanded = self.directive_expander.expand(list(rest), condition)
        branches = self._hoist(condition, expanded)
        if len(branches) > 1:
            self.stats.hoisted_includes += 1
        for branch_cond, tokens in branches:
            if branch_cond.is_false():
                continue
            try:
                operand = self._header_operand(tokens)
                if operand is None:
                    raise PreprocessorError(
                        "computed include does not name a header",
                        origin, phase=PHASE_INCLUDE)
                name, quoted = operand
                self.stats.includes += 1
                self._do_include(origin, name, quoted, branch_cond,
                                 filename)
            except PreprocessorError as error:
                # Confine to this hoisted branch (narrower than the
                # whole directive's condition); the other branches'
                # includes still happen.
                self._confine_or_raise(error, branch_cond, PHASE_INCLUDE)

    @staticmethod
    def _header_operand(tokens: Sequence[Token]) \
            -> Optional[Tuple[str, bool]]:
        if not tokens:
            return None
        first = tokens[0]
        if first.kind is TokenKind.STRING and len(tokens) == 1:
            return first.text[1:-1], True
        if first.is_punctuator("<"):
            parts: List[str] = []
            for token in tokens[1:]:
                if token.is_punctuator(">"):
                    return "".join(parts), False
                parts.append(token.text)
        return None

    def _do_include(self, origin: Token, name: str, quoted: bool,
                    condition: BDDNode, includer: str) -> None:
        """Resolve and process one include.  A failure anywhere inside
        (unresolvable file, depth-budget trip, or an error raised while
        processing the included file) unwinds the conditional and file
        stacks to their state at this include, so the caller can confine
        the error and keep processing the includer."""
        frames_depth = len(self._frames)
        files_depth = len(self._file_stack)
        try:
            path = self.resolver.resolve(name, quoted, includer)
            if path is None:
                raise PreprocessorError(
                    f"cannot find include file {name!r}", origin,
                    phase=PHASE_INCLUDE)
            text = self.fs.read(path)
            if path in self._included:
                guard = self._included[path]
                if guard is not None:
                    already = self.table.defined_condition(guard,
                                                           condition)
                    if (condition & ~already).is_false():
                        return  # guard satisfied everywhere: skip
                self.stats.reincluded_headers += 1
            else:
                guard = detect_guard(text, path)
                self._included[path] = guard
                if guard is not None:
                    self.guard_macros.add(guard)
            if condition is self._abs_condition() or \
                    condition.equiv(self._abs_condition()).is_true():
                self._process_file(path, text)
                return
            # Include under a narrower condition (computed-include
            # branch): wrap the file's output in a synthetic
            # conditional.
            frame = _Frame(self._abs_condition(), condition, path,
                           synthetic=True)
            self._frames.append(frame)
            self._process_file(path, text)
            self._frames.pop()
            if frame.buffer:
                self._buffer().append(
                    Conditional([(condition, frame.buffer)]))
        except PreprocessorError:
            # Unwind anything the failed include left open so the
            # caller can confine the error and keep processing the
            # includer.
            del self._frames[frames_depth:]
            del self._file_stack[files_depth:]
            raise
        except LexerError as error:
            # A lexically broken header is an include failure of this
            # include site: rewrap so the caller's confinement applies
            # (an unguarded broken header still fails hard).
            del self._frames[frames_depth:]
            del self._file_stack[files_depth:]
            raise PreprocessorError(f"broken include file {name!r}: "
                                    f"{error}", origin,
                                    phase=PHASE_LEX) from error

    # diagnostics and annotations

    def _dir_error(self, origin: Token, rest: List[Token],
                   filename: str) -> None:
        message = " ".join(token.text for token in rest)
        condition = self._abs_condition()
        self.stats.error_directives += 1
        if condition.is_false():
            return
        if condition.is_true():
            # Every configuration hits the #error: the unit is unusable.
            raise PreprocessorError(f"#error {message}", origin)
        self._record_error(condition, message, PHASE_PREPROCESS, origin)
        if self._frames:
            frame = self._frames[-1]
            frame.erroneous = True
            frame.buffer = []

    def _dir_warning(self, origin: Token, rest: List[Token],
                     filename: str) -> None:
        message = " ".join(token.text for token in rest)
        if not self._abs_condition().is_false():
            self._warnings.append((self._abs_condition(), message))

    def _dir_pragma(self, origin: Token, rest: List[Token],
                    filename: str) -> None:
        text = "#pragma " + " ".join(token.text for token in rest)
        self._pending_annotations = self._pending_annotations + (text,)

    def _dir_line(self, origin: Token, rest: List[Token],
                  filename: str) -> None:
        text = "#line " + " ".join(token.text for token in rest)
        self._pending_annotations = self._pending_annotations + (text,)

    # -- conditional expressions ------------------------------------------------

    def _eval_expr(self, tokens: List[Token],
                   condition: BDDNode) -> BDDNode:
        """Expand, hoist, parse, fold, and convert a #if expression."""
        if condition.is_false():
            return self.manager.false
        if not tokens:
            error = PreprocessorError("#if with no expression",
                                      phase=PHASE_CONDITION)
            if condition.is_true():
                raise error
            self._record_error(condition, str(error), PHASE_CONDITION)
            return self.manager.false
        version = self.table.version
        for token in tokens:
            token.version = version
        try:
            expanded = self.directive_expander.expand(list(tokens),
                                                      condition)
            branches = self._hoist(condition, expanded)
        except PreprocessorError as error:
            # Expansion/hoisting of the controlling expression failed;
            # the caller still pushes its frame (with a false branch
            # condition), keeping #endif balanced.
            if condition.is_true():
                raise
            self._record_error(condition, str(error),
                               getattr(error, "phase", PHASE_CONDITION),
                               tokens[0])
            return self.manager.false
        if len(branches) > 1:
            self.stats.hoisted_conditionals += 1
        result = self.manager.false
        for branch_cond, branch_tokens in branches:
            if branch_cond.is_false():
                continue
            converter = ConditionConverter(
                self.manager,
                defined_condition=self._make_defined_oracle(branch_cond))
            try:
                expr = parse_expression(branch_tokens)
                branch_bdd = converter.to_bdd(expr)
            except ExprError as error:
                # Parse errors and evaluation errors (e.g. division by
                # zero during constant folding) are hard only when the
                # branch covers every configuration; otherwise the
                # branch is recorded erroneous and contributes false.
                wrapped = PreprocessorError(
                    f"bad conditional expression: {error}",
                    tokens[0], phase=PHASE_CONDITION)
                if branch_cond.is_true():
                    raise wrapped from error
                self._record_error(branch_cond, str(wrapped),
                                   PHASE_CONDITION, tokens[0])
                continue
            result = result | (branch_cond & branch_bdd)
            self.stats.non_boolean_expressions += \
                converter.non_boolean_count
        return result

    def _make_defined_oracle(self, condition: BDDNode):
        def defined_condition(name: str) -> BDDNode:
            return self._defined_bdd(name, condition)
        return defined_condition

    def _defined_bdd(self, name: str, condition: BDDNode) -> BDDNode:
        """The sub-condition of ``condition`` where ``name`` is defined,
        treating free names as config variables (or false for guards)."""
        result = self.manager.false
        for sub_cond, entry in self.table.lookup(name, condition):
            if isinstance(entry, MacroDefinition):
                result = result | sub_cond
            elif entry is FREE and name not in self.guard_macros:
                result = result | \
                    (sub_cond & self.manager.var(defined_var(name)))
            # UNDEFINED and free guards contribute false.
        return result

    # -- stats ---------------------------------------------------------------------

    def _merge_stats(self, tree: TokenTree) -> None:
        stats = self.stats
        expansion = self._expansion_stats
        stats.macro_definitions = self.table.definition_count
        stats.redefinitions = self.table.redefinition_count
        stats.trimmed = self.table.trimmed_count
        stats.invocations = expansion.invocations
        stats.nested_invocations = expansion.nested_invocations
        stats.builtin_invocations = expansion.builtin_invocations
        stats.hoisted_invocations = expansion.hoisted_invocations
        stats.token_pastings = expansion.token_pastings
        stats.hoisted_pastings = expansion.hoisted_pastings
        stats.stringifications = expansion.stringifications
        stats.hoisted_stringifications = expansion.hoisted_stringifications
        stats.max_conditional_depth = max(stats.max_conditional_depth,
                                          max_depth(tree))
