"""Tests for the variability-aware rename library."""

import pytest

from repro.analysis import (RenameConflict, apply_edits, occurrences,
                            plan_rename, rename_in_files)
from repro.superc import parse_c
from tests.support import simple_preprocess, texts

SOURCE = """\
#ifdef CONFIG_ACCEL
static int read_input(int ch) { return accel_read(ch); }
#else
static int read_input(int ch) { return poll_read(ch); }
#endif

int sample(void)
{
    return read_input(0) + read_input(1);
}
"""


class TestOccurrences:
    def test_all_configurations_found(self):
        result = parse_c(SOURCE)
        found = occurrences(result.ast, "read_input")
        # Two definitions (one per branch) + two uses.
        assert len(found) == 4
        lines = sorted(t.line for t in found)
        assert lines == [2, 4, 9, 9]

    def test_shared_tokens_not_duplicated(self):
        # A token parsed in several configurations appears once.
        result = parse_c("#ifdef A\nint x;\n#endif\nint shared;\n")
        found = occurrences(result.ast, "shared")
        assert len(found) == 1

    def test_no_match(self):
        result = parse_c("int x;\n")
        assert occurrences(result.ast, "nope") == []


class TestPlan:
    def test_plan_rename(self):
        result = parse_c(SOURCE)
        plan = plan_rename(result.ast, "read_input", "acquire")
        assert len(plan) == 4
        assert plan.files == ["<input>"]

    def test_conflict_detected(self):
        result = parse_c(SOURCE)
        with pytest.raises(RenameConflict):
            plan_rename(result.ast, "read_input", "sample")

    def test_conflict_in_disabled_branch_detected(self):
        # The conflicting name exists only in a disabled branch:
        # single-configuration tools would miss it.
        source = ("#ifdef A\nint target;\n#endif\nint original;\n")
        result = parse_c(source)
        with pytest.raises(RenameConflict):
            plan_rename(result.ast, "original", "target")

    def test_allow_conflicts(self):
        result = parse_c(SOURCE)
        plan = plan_rename(result.ast, "read_input", "sample",
                           allow_conflicts=True)
        assert len(plan) == 4

    def test_invalid_identifier_rejected(self):
        result = parse_c(SOURCE)
        with pytest.raises(ValueError):
            plan_rename(result.ast, "read_input", "1bad")
        with pytest.raises(ValueError):
            plan_rename(result.ast, "read_input", "")


class TestApply:
    def test_roundtrip(self):
        result = parse_c(SOURCE)
        plan = plan_rename(result.ast, "read_input", "acquire")
        renamed = apply_edits(SOURCE, plan.edits)
        assert "read_input" not in renamed
        assert renamed.count("acquire") == 4
        # The renamed source still parses in every configuration.
        check = parse_c(renamed)
        assert check.ok

    def test_semantics_preserved_per_configuration(self):
        result = parse_c(SOURCE)
        plan = plan_rename(result.ast, "read_input", "acquire")
        renamed = apply_edits(SOURCE, plan.edits)
        for config in ({}, {"CONFIG_ACCEL": "1"}):
            before = texts(simple_preprocess(SOURCE, config))
            after = texts(simple_preprocess(renamed, config))
            assert [t for t in after if t != "acquire"] == \
                [t for t in before if t != "read_input"]

    def test_position_drift_detected(self):
        result = parse_c(SOURCE)
        plan = plan_rename(result.ast, "read_input", "acquire")
        with pytest.raises(ValueError):
            apply_edits("completely different text\n", plan.edits)

    def test_rename_in_files(self):
        result = parse_c(SOURCE)
        plan = plan_rename(result.ast, "read_input", "acquire")
        changed = rename_in_files(plan, {"<input>": SOURCE,
                                         "other.c": "int y;\n"})
        assert set(changed) == {"<input>"}
        assert "acquire" in changed["<input>"]

    def test_rename_across_header(self):
        files = {"include/dev.h":
                 "#ifdef CONFIG_X\nint dev_reset(void);\n#endif\n"}
        source = ("#include <dev.h>\n"
                  "int run(void) {\n"
                  "#ifdef CONFIG_X\n"
                  "  return dev_reset();\n"
                  "#endif\n"
                  "  return 0;\n"
                  "}\n")
        result = parse_c(source, files=files)
        plan = plan_rename(result.ast, "dev_reset", "dev_restart")
        assert sorted(plan.files) == ["<input>", "include/dev.h"]
        changed = rename_in_files(plan, {"<input>": source, **files})
        assert "dev_restart" in changed["include/dev.h"]
        assert "dev_restart" in changed["<input>"]
