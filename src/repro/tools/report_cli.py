"""Command-line interface: preprocessor-usage report for a source tree.

Usage::

    python -m repro.tools.report_cli SRC_DIR [-I DIR]... [--units GLOB]

Walks a directory of C sources and prints the paper's Table 2
(developer's view) and, if units parse, Table 3 percentiles (tool's
view).
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import sys
from typing import Dict, List, Optional

from repro.corpus import KernelCorpus, KernelSpec
from repro.eval import (TOOLS_VIEW_ROWS, developers_view, tools_view,
                        top_included_headers)
from repro.superc import SuperC


def load_tree(root: str) -> Dict[str, str]:
    files: Dict[str, str] = {}
    for directory, _subdirs, names in os.walk(root):
        for name in names:
            if not name.endswith((".c", ".h")):
                continue
            path = os.path.join(directory, name)
            relative = os.path.relpath(path, root)
            try:
                with open(path, "r", encoding="utf-8",
                          errors="replace") as handle:
                    files[relative.replace(os.sep, "/")] = handle.read()
            except OSError:
                continue
    return files


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="superc-report",
        description="Preprocessor-usage survey (Tables 2-3).")
    parser.add_argument("root", help="source tree root directory")
    parser.add_argument("-I", "--include", action="append", default=[],
                        metavar="DIR",
                        help="include path, relative to the root")
    parser.add_argument("--units", default="*.c", metavar="GLOB",
                        help="glob selecting compilation units")
    parser.add_argument("--skip-tools-view", action="store_true",
                        help="only the cheap developer's view")
    parser.add_argument("--trace", metavar="FILE",
                        help="trace the tool's-view parses with "
                             "repro.obs and write Chrome trace_event "
                             "JSON")
    parser.add_argument("--profile", action="store_true",
                        help="print the aggregate observability "
                             "profile of the tool's-view parses")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    files = load_tree(args.root)
    if not files:
        print(f"error: no C sources under {args.root}",
              file=sys.stderr)
        return 2
    units = [path for path in sorted(files)
             if path.endswith(".c")
             and fnmatch.fnmatch(path, args.units)]
    corpus = KernelCorpus(KernelSpec(), files, units, [])

    dev = developers_view(corpus)
    print("Table 2a: directives vs lines of code")
    labels = {"loc": "LoC", "all_directives": "All Directives",
              "define": "#define",
              "conditional": "#if,#ifdef,#ifndef",
              "include": "#include"}
    print(f"{'construct':<22}{'total':>8}{'C files':>10}{'headers':>10}")
    for key, label in labels.items():
        row = dev[key]
        print(f"{label:<22}{row.total:>8}{row.pct_c:>9.0f}%"
              f"{row.pct_headers:>9.0f}%")
    print("\nTable 2b: most frequently included headers")
    for header, count, pct in top_included_headers(corpus):
        print(f"  {header:<44}{count:>4} C files ({pct:.0f}%)")

    if args.skip_tools_view or not units:
        return 0
    include_paths = args.include or ["include", "."]
    tracer = None
    if args.trace or args.profile:
        from repro.obs import Tracer
        tracer = Tracer()
    superc = SuperC(corpus.filesystem(), include_paths=include_paths,
                    tracer=tracer)
    parseable: List[str] = []
    for unit in units:
        try:
            superc.parse_file(unit)
            parseable.append(unit)
        except Exception as error:
            print(f"  (skipping {unit}: {error})", file=sys.stderr)
    if not parseable:
        print("\n(no unit preprocessed cleanly; tool's view skipped)")
        return 0
    print(f"\nTable 3: tool's view over {len(parseable)} unit(s) "
          "(50th/90th/100th)")
    table = tools_view(superc, parseable)
    for label, _attr in TOOLS_VIEW_ROWS:
        p50, p90, p100 = table[label]
        print(f"{label:<38}{p50:>8.0f} · {p90:>6.0f} · {p100:>6.0f}")
    if args.trace:
        from repro.obs import to_chrome_trace, write_chrome_trace
        write_chrome_trace(args.trace, to_chrome_trace(tracer))
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.profile:
        from repro.obs import Profile
        profile = Profile.from_window(tracer, ())
        print()
        print(profile.format_summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
