"""Crash-surviving warm-state journal for the parse daemon.

The daemon's parse *records* already survive restarts in the on-disk
:class:`repro.engine.ResultCache`; what used to die with the process
was the metadata that makes the warm tiers work — which key each unit
was last published under, its include-closure membership (the
invalidation index's unit list), and its layout-insensitive token
fingerprint (the tier-3 short-circuit).  :class:`ParseJournal`
persists exactly that :class:`~repro.serve.state.ParseEntry` metadata
as JSON lines beside the result cache, so a restarted daemon resumes
memory/disk/token-tier short-circuiting immediately instead of
re-parsing its whole working set cold.

Design points:

* **Append-only with compaction.**  Every publish appends one line;
  the newest line per unit wins on load.  When the file grows past
  ~4x the live entry count it is compacted by an atomic
  write-temp-then-rename, so a crash mid-compaction leaves the old
  journal intact.
* **Per-record validation.**  A torn final line (the process died
  mid-append) or a corrupted record is discarded *individually* —
  counted by ``serve.journal.discard`` — and every other line still
  resumes.  A journal must never take down the daemon it exists to
  protect.
* **Best-effort writes.**  Append and compaction failures (``ENOSPC``,
  permissions) are swallowed: the daemon keeps serving from memory and
  simply resumes colder next time.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, Optional

from repro import chaos
from repro.obs.tracer import NULL_TRACER


class ParseJournal:
    """JSON-lines journal of per-unit warm-entry metadata."""

    def __init__(self, path: str, tracer: object = None):
        self.path = path
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._lock = threading.Lock()
        self._entries: Dict[str, dict] = {}
        self._appends = 0
        self.discarded = 0
        self.writes = 0
        self.compactions = 0

    # -- load ----------------------------------------------------------

    @staticmethod
    def _validate(meta: object) -> Optional[dict]:
        """The journal-record shape, or None for anything else."""
        if not isinstance(meta, dict):
            return None
        unit = meta.get("unit")
        key = meta.get("key")
        closure = meta.get("closure")
        token_fp = meta.get("token_fp")
        if not isinstance(unit, str) or not isinstance(key, str):
            return None
        if not isinstance(closure, list) \
                or not all(isinstance(path, str) for path in closure):
            return None
        if token_fp is not None and not isinstance(token_fp, str):
            return None
        return {"unit": unit, "key": key, "closure": closure,
                "token_fp": token_fp}

    def load(self) -> Dict[str, dict]:
        """Validated entries from disk, newest line per unit winning.
        Corrupt or torn lines are discarded individually (counted by
        ``serve.journal.discard``), never raised."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except OSError:
            return {}
        entries: Dict[str, dict] = {}
        for line in data.splitlines():
            if not line.strip():
                continue
            meta = None
            try:
                meta = self._validate(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                meta = None
            if meta is None:
                self.discarded += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.journal.discard")
                continue
            entries[meta["unit"]] = meta
        with self._lock:
            self._entries = dict(entries)
            self._appends = len(entries)
        return entries

    # -- write ---------------------------------------------------------

    def append(self, unit: str, key: str, closure: Iterable[str],
               token_fp: Optional[str]) -> None:
        """Record one publish (best effort; never raises)."""
        meta = {"unit": unit, "key": key,
                "closure": sorted(closure), "token_fp": token_fp}
        with self._lock:
            self._entries[unit] = meta
            self._appends += 1
            try:
                if chaos.ACTIVE is not None:
                    chaos.fire("journal.append", path=self.path)
                os.makedirs(os.path.dirname(self.path) or ".",
                            exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(meta) + "\n")
                self.writes += 1
            except OSError:
                return
            if self._appends > 4 * len(self._entries) + 64:
                self._compact_locked()

    def forget(self, unit: str) -> None:
        """Drop a unit from the live set (takes effect at the next
        compaction; the append-only tail still names it until then)."""
        with self._lock:
            self._entries.pop(unit, None)

    def _compact_locked(self) -> None:
        tmp = self.path + f".tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for meta in self._entries.values():
                    handle.write(json.dumps(meta) + "\n")
            os.replace(tmp, self.path)
            self._appends = len(self._entries)
            self.compactions += 1
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            entries = len(self._entries)
        return {"path": self.path, "entries": entries,
                "writes": self.writes, "discarded": self.discarded,
                "compactions": self.compactions}
