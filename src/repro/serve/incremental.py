"""Incremental re-parse support: invalidation and token fingerprints.

Two mechanisms keep re-parse latency after an edit proportional to
what actually changed:

* **Reverse include invalidation** — :class:`InvalidationIndex` keeps
  the resolver-accurate include graph of every file the server has
  read (``repro.analysis.includes_graph.build_resolved_include_graph``)
  and answers "which units does editing ``path`` affect?" as the
  reverse transitive closure.  ``invalidate(header)`` then drops
  exactly the dependent units' warm entries — the paper's Table 2
  observation that single headers reach thousands of units is exactly
  why the walk must be precise rather than "drop everything".
* **Token-level fingerprints** — :func:`token_fingerprint` hashes the
  lexed token stream (kind + text) of a unit and its include closure,
  ignoring layout: whitespace and comments live in token ``layout``
  and newline tokens are skipped.  After an edit the content digest
  changes, but if the token fingerprint is unchanged (comment or
  formatting edit — the common case while typing documentation), the
  previous parse is provably still valid and the server re-serves it
  without re-parsing.  Line numbers inside cached diagnostics may then
  be stale; that is the usual incremental-parsing trade, and a
  ``fresh=true`` request field forces a real re-parse.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Sequence, Set

from repro.analysis.includes_graph import (build_resolved_include_graph,
                                           dependent_files)
from repro.lexer import lex
from repro.lexer.tokens import TokenKind

_SKIPPED_KINDS = (TokenKind.NEWLINE, TokenKind.EOF)


def file_token_digest(text: str, filename: str = "<input>") \
        -> Optional[str]:
    """Layout-insensitive digest of one file's token stream; None when
    the file does not lex (fingerprinting then falls back to content
    digests, which never short-circuit)."""
    digest = hashlib.sha256()
    try:
        for token in lex(text, filename):
            if token.kind in _SKIPPED_KINDS:
                continue
            digest.update(token.kind.value.encode())
            digest.update(b"\x00")
            digest.update(token.text.encode())
            digest.update(b"\x01")
    except Exception:
        return None
    return digest.hexdigest()


def token_fingerprint(read, unit: str,
                      closure_files: Iterable[str]) -> Optional[str]:
    """Combined token digest of ``unit``'s whole include closure.

    ``read`` is a ``path -> Optional[str]`` callable (a FileSystem
    ``read`` method).  Closure membership itself is part of the
    fingerprint — an edit that adds or removes an ``#include`` changes
    the member list even if every surviving file's tokens are
    unchanged.  Returns None whenever any member fails to lex.
    """
    combined = hashlib.sha256()
    for path in sorted(set(closure_files) | {unit}):
        text = read(path)
        if text is None:
            combined.update(f"<missing:{path}>".encode())
            continue
        file_digest = file_token_digest(text, path)
        if file_digest is None:
            return None
        combined.update(path.encode())
        combined.update(file_digest.encode())
    return combined.hexdigest()


class InvalidationIndex:
    """Reverse include-dependency index over the server's file view.

    Rebuilt lazily from the file store's known contents: mutating
    operations (a new unit parsed, a file invalidated or overlaid)
    call :meth:`mark_dirty`, and the next :meth:`dependents` query
    rebuilds the resolver-accurate graph once.  With a few thousand
    known files the rebuild is milliseconds — far cheaper than the
    re-parses it saves — and keeps the index trivially consistent.
    """

    def __init__(self, include_paths: Sequence[str] = ()):
        self.include_paths = list(include_paths)
        self._graph = None
        self._dirty = True

    def mark_dirty(self) -> None:
        self._dirty = True

    def refresh(self, files: Dict[str, str]) -> None:
        self._graph = build_resolved_include_graph(files,
                                                   self.include_paths)
        self._dirty = False

    def dependents(self, files: Dict[str, str], path: str) -> Set[str]:
        """All known files whose parse could change when ``path``
        changes (``path`` included when known)."""
        if self._dirty or self._graph is None:
            self.refresh(files)
        return dependent_files(self._graph, path)

    def affected_units(self, files: Dict[str, str], path: str,
                       units: Iterable[str]) -> Set[str]:
        """The subset of ``units`` whose include closure reaches
        ``path``."""
        dependents = self.dependents(files, path)
        return {unit for unit in units if unit in dependents}
