"""A plain table-driven LR parser engine.

This is the single-configuration baseline: it parses one fully
preprocessed token stream (no static conditionals) with the same tables
and AST machinery FMLR uses.  The gcc-like baseline (§6.3's performance
floor) and the per-configuration differential oracle both run on it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.lexer.tokens import Token, TokenKind
from repro.parser.ast import build_value
from repro.parser.context import ParserContext
from repro.parser.grammar import END
from repro.parser.lalr import ACCEPT, REDUCE, SHIFT, Tables


class ParseError(Exception):
    """Raised when the input is not in the language."""

    def __init__(self, message: str, token: Optional[Token] = None,
                 expected: Optional[List[str]] = None):
        where = ""
        if token is not None:
            where = f"{token.file}:{token.line}:{token.col}: "
        detail = ""
        if expected:
            shown = ", ".join(expected[:12])
            if len(expected) > 12:
                shown += ", ..."
            detail = f" (expected one of: {shown})"
        super().__init__(f"{where}{message}{detail}")
        self.token = token
        self.expected = expected or []


class LRParser:
    """Parses token sequences using generated LALR tables."""

    def __init__(self, tables: Tables,
                 classify: Callable[[Token], str],
                 context_factory: Callable[[], ParserContext] = ParserContext,
                 condition: Any = True):
        self.tables = tables
        self.classify = classify
        self.context_factory = context_factory
        # The "presence condition" handed to context callbacks; plain LR
        # parses a single configuration, so it is a constant.
        self.condition = condition

    def parse(self, tokens: Iterable[Token]) -> Any:
        """Parse and return the start symbol's semantic value."""
        tables = self.tables
        grammar = tables.grammar
        context = self.context_factory()
        # Stack of (state, value); state 0 has no value.
        stack: List[Tuple[int, Any]] = [(0, None)]
        stream = iter(tokens)
        token, exhausted = self._next_token(stream)
        while True:
            state = stack[-1][0]
            # Classify the lookahead afresh on every action: a reduce
            # may have just registered a typedef name (the lexer hack
            # must see symbol-table updates from the current token's
            # own declaration).
            terminal = self._terminal(token, exhausted, context)
            action = tables.action[state].get(terminal)
            if action is None:
                raise ParseError(
                    f"unexpected {terminal!r}", token,
                    tables.expected_terminals(state))
            if action[0] == SHIFT:
                stack.append((action[1], token))
                token, exhausted = self._next_token(stream)
            elif action[0] == REDUCE:
                production = grammar.productions[action[1]]
                count = len(production.rhs)
                values = [entry[1] for entry in stack[-count:]] \
                    if count else []
                if count:
                    del stack[-count:]
                value = build_value(production, values, context)
                context.on_reduce(production, value, self.condition)
                goto_state = tables.goto[stack[-1][0]].get(production.lhs)
                if goto_state is None:
                    raise ParseError(
                        f"internal: no goto for {production.lhs!r}", token)
                stack.append((goto_state, value))
            else:  # ACCEPT
                return stack[-1][1]

    @staticmethod
    def _next_token(stream) -> Tuple[Optional[Token], bool]:
        try:
            return next(stream), False
        except StopIteration:
            return None, True

    def _terminal(self, token: Optional[Token], exhausted: bool,
                  context) -> str:
        if exhausted:
            return END
        if token.kind is TokenKind.EOF:
            return END
        base = self.classify(token)
        classifications = context.reclassify(token, base, self.condition)
        if len(classifications) != 1:
            raise ParseError(
                "ambiguous token classification in single-configuration "
                f"parse: {token.text!r}", token)
        return classifications[0][1]
