"""Command-line interface: parse a whole corpus in parallel.

Usage::

    python -m repro.tools.batch_cli TREE [-I DIR]... [--workers N]
    python -m repro.tools.batch_cli --generate --scale 2 --workers 4

The first form scans a source tree for ``*.c`` compilation units; the
second generates the synthetic kernel corpus in memory (optionally
materializing it with ``--write-tree``).  Either way the units are
scheduled over a worker pool with per-unit deadlines and retries,
results are served from the persistent result cache when sources are
unchanged, and a corpus-level report (status counts, cache hits,
Figure 8 subparser rollup, latency totals) is printed.  ``--metrics``
streams per-unit JSON-lines events; ``--json`` prints the aggregate
report as JSON.

Exit status: 0 when every unit produced a usable result — ``ok`` or
``degraded`` (partial AST with condition-scoped diagnostics; confined
errors and dropped configurations count as coverage, not failure) —
1 when any unit parse-failed, errored, timed out, or was abandoned by
the crash-loop circuit breaker (``crashed``), 2 for usage errors (no
units found).  The report's ``diagnostics:`` line is the corpus-wide
``phase/severity`` histogram of confined errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.engine import (BatchEngine, CorpusJob, EngineConfig,
                          MetricsStream, format_report)
from repro.parser.fmlr import OPTIMIZATION_LEVELS
from repro.tools.parse_cli import parse_defines


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="superc-batch",
        description="Corpus-scale configuration-preserving C parsing "
                    "(SuperC batch engine).")
    parser.add_argument("tree", nargs="?",
                        help="source tree to scan for *.c units "
                             "(omit with --generate)")
    parser.add_argument("--generate", action="store_true",
                        help="use the synthetic kernel corpus instead "
                             "of a source tree")
    parser.add_argument("--scale", type=int, default=1, metavar="N",
                        help="synthetic corpus scale factor")
    parser.add_argument("--seed", type=int, default=42,
                        help="synthetic corpus seed")
    parser.add_argument("--write-tree", metavar="DIR",
                        help="materialize the generated corpus to DIR "
                             "and parse it from disk")
    parser.add_argument("-I", "--include", action="append",
                        default=[], metavar="DIR",
                        help="add an include search directory "
                             "(relative to the tree root)")
    parser.add_argument("-D", "--define", action="append", default=[],
                        metavar="NAME[=VALUE]",
                        help="predefine an object-like macro")
    parser.add_argument("--glob", default="**/*.c", metavar="PATTERN",
                        help="unit glob relative to the tree root")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (1 = in-process serial)")
    parser.add_argument("--timeout", type=float, default=0.0,
                        metavar="SECONDS",
                        help="per-unit deadline (0 disables)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="retries for crashed/timed-out units")
    parser.add_argument("--optimization",
                        default="Shared, Lazy, & Early",
                        choices=sorted(OPTIMIZATION_LEVELS),
                        help="FMLR optimization level")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="cache directory (default: "
                             "$REPRO_CACHE_DIR or "
                             "~/.cache/repro-superc)")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="always reparse; skip the result cache")
    parser.add_argument("--metrics", metavar="FILE",
                        help="append JSON-lines unit events to FILE "
                             "('-' for stderr)")
    parser.add_argument("--json", action="store_true",
                        help="print the aggregate report as JSON")
    parser.add_argument("--verbose", action="store_true",
                        help="include the Table 3 preprocessor rollup")
    parser.add_argument("--profile", action="store_true",
                        help="give every worker an enabled repro.obs "
                             "tracer: each unit record carries a "
                             "profile and the report gains a corpus "
                             "profile rollup")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Chrome trace_event JSON of the "
                             "run: one lane per unit (from record "
                             "timings) plus the engine's own spans")
    return parser


def _make_job(args) -> Optional[CorpusJob]:
    defines = parse_defines(args.define)
    if args.generate:
        from repro.corpus import KernelSpec, generate_kernel
        spec = KernelSpec(seed=args.seed)
        if args.scale > 1:
            spec = spec.scaled(args.scale)
        corpus = generate_kernel(spec)
        if args.write_tree:
            corpus.write_to_directory(args.write_tree)
            return CorpusJob.from_directory(
                args.write_tree, include_paths=corpus.include_paths,
                extra_definitions=defines or None)
        return CorpusJob.from_corpus(corpus,
                                     extra_definitions=defines or None)
    if not args.tree:
        return None
    return CorpusJob.from_directory(
        args.tree, include_paths=args.include or ["include"],
        pattern=args.glob, extra_definitions=defines or None)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    job = _make_job(args)
    if job is None:
        print("error: give a source tree or --generate",
              file=sys.stderr)
        return 2
    if not job.units:
        print("error: no compilation units found", file=sys.stderr)
        return 2

    config = EngineConfig(workers=args.workers,
                          timeout_seconds=args.timeout,
                          retries=args.retries,
                          optimization=args.optimization,
                          cache_dir=args.cache_dir,
                          use_result_cache=not args.no_result_cache,
                          profile=args.profile)
    tracer = None
    if args.trace:
        from repro.obs import Tracer
        tracer = Tracer()
    sink = None
    if args.metrics == "-":
        sink = sys.stderr
    elif args.metrics:
        sink = args.metrics
    with MetricsStream(sink) as metrics:
        report = BatchEngine(config).run(job, metrics, tracer=tracer)

    if args.trace:
        from repro.obs import records_to_chrome_trace, \
            write_chrome_trace
        write_chrome_trace(args.trace,
                           records_to_chrome_trace(report.records,
                                                   tracer=tracer))
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.json:
        payload = report.summary()
        payload["latency"] = report.latency_rollup()
        if args.verbose:
            payload["preprocessor"] = report.preprocessor_rollup()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(report, verbose=args.verbose))
        rollup = report.profile_rollup()
        if rollup is not None:
            phases = rollup.get("phases") or {}
            counters = rollup.get("counters") or {}
            print("profile rollup: " + ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in phases.items()))
            interesting = ("fmlr.forks", "fmlr.merges",
                           "fmlr.kill_switch_trips", "bdd.nodes_created",
                           "bdd.apply_calls", "cpp.conditionals")
            shown = {key: counters[key] for key in interesting
                     if key in counters}
            if shown:
                print("profile counters: " + ", ".join(
                    f"{key}={value}" for key, value in shown.items()))
    return 0 if report.all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
