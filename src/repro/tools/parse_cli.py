"""Command-line interface: parse one C file in all configurations.

Usage::

    python -m repro.tools.parse_cli FILE.c [-I DIR]... [options]

Prints a parse summary; optionally dumps the preprocessed token tree
(``--preprocess-only``), the AST (``--dump-ast``), preprocessor
statistics (``--stats``), per-configuration projections
(``--project defined:CONFIG_X ...``), or a machine-readable summary
(``--json``, including per-phase timing and the observability profile
when tracing).  ``--trace FILE`` writes a Chrome trace_event JSON of
the run (load in chrome://tracing or Perfetto); ``--profile`` prints
the per-unit profile (phase wall times, FMLR/BDD/cpp counters).

Exit status:

====  ==========================================================
code  meaning
====  ==========================================================
0     every configuration parsed cleanly
1     some configuration failed to parse (no degradation)
2     partial result — configurations were confined or dropped
      (``degraded``); also: the input file cannot be read
3     fatal error — a TRUE-condition preprocessor or lexer error
      (no configuration survives)
====  ==========================================================
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.baselines import FormulaManager
from repro.cpp import PreprocessorError, RealFileSystem, render
from repro.lexer.lexer import LexerError
from repro.parser.ast import dump, iter_tokens, project
from repro.parser.fmlr import OPTIMIZATION_LEVELS
from repro.superc import (STATUS_DEGRADED, STATUS_OK,
                          STATUS_PARSE_FAILED, SuperC)

EXIT_BY_STATUS = {STATUS_OK: 0, STATUS_PARSE_FAILED: 1,
                  STATUS_DEGRADED: 2}


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="superc-parse",
        description="Configuration-preserving C parsing (SuperC).")
    parser.add_argument("file", help="C source file to parse")
    parser.add_argument("-I", "--include", action="append",
                        default=[], metavar="DIR",
                        help="add an include search directory")
    parser.add_argument("-D", "--define", action="append", default=[],
                        metavar="NAME[=VALUE]",
                        help="predefine an object-like macro")
    parser.add_argument("--preprocess-only", action="store_true",
                        help="stop after preprocessing; print the "
                             "conditional token tree")
    parser.add_argument("--dump-ast", action="store_true",
                        help="print the AST with static choice nodes")
    parser.add_argument("--stats", action="store_true",
                        help="print preprocessor and parser statistics")
    parser.add_argument("--project", action="append", default=[],
                        metavar="VAR", dest="projections",
                        help="project onto a configuration enabling "
                             "the given BDD variable (repeatable)")
    parser.add_argument("--optimization", default="Shared, Lazy, & Early",
                        choices=sorted(OPTIMIZATION_LEVELS),
                        help="FMLR optimization level")
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable JSON summary "
                             "instead of the text report")
    parser.add_argument("--trace", metavar="FILE",
                        help="record the run with repro.obs and write "
                             "a Chrome trace_event JSON file "
                             "(chrome://tracing / Perfetto)")
    parser.add_argument("--profile", action="store_true",
                        help="print the per-unit observability "
                             "profile (per-phase wall time, FMLR/BDD/"
                             "preprocessor counters)")
    return parser


def parse_defines(pairs: List[str]) -> dict:
    defines = {}
    for pair in pairs:
        name, _sep, value = pair.partition("=")
        defines[name] = value or "1"
    return defines


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    tracer = None
    if args.trace or args.profile:
        from repro.obs import Tracer
        tracer = Tracer()
    superc = SuperC(RealFileSystem(), include_paths=args.include,
                    extra_definitions=parse_defines(args.define),
                    options=OPTIMIZATION_LEVELS[args.optimization],
                    tracer=tracer)
    if args.preprocess_only:
        text = superc.fs.read(args.file)
        if text is None:
            print(f"error: cannot read {args.file}", file=sys.stderr)
            return 2
        unit = superc.preprocess_source(text, args.file)
        print(render(unit.tree))
        if args.stats:
            _print_stats(unit.stats.as_dict())
        return 0
    try:
        result = superc.parse_file(args.file)
    except FileNotFoundError:
        if args.json:
            print(json.dumps({"unit": args.file, "status": "error",
                              "error": "cannot read file"}))
        print(f"error: cannot read {args.file}", file=sys.stderr)
        return 2
    except (PreprocessorError, LexerError) as error:
        # A hard failure: the error holds under the TRUE condition, so
        # no configuration survives confinement.
        if args.json:
            print(json.dumps({"unit": args.file, "status": "error",
                              "error": str(error)}))
        print(f"error: {error}", file=sys.stderr)
        return 3
    if args.trace:
        from repro.obs import to_chrome_trace, write_chrome_trace
        write_chrome_trace(args.trace, to_chrome_trace(tracer))
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.json:
        from repro.engine.results import record_from_result
        record = record_from_result(args.file, result,
                                    seconds=result.timing.total)
        print(json.dumps(record, indent=2, sort_keys=True))
        return EXIT_BY_STATUS.get(record["status"], 1)
    if result.status == STATUS_OK:
        status = "ok"
    elif result.status == STATUS_DEGRADED:
        status = ("degraded — some configurations confined or "
                  "dropped; partial AST")
    else:
        status = "FAILED in some configurations"
    print(f"{args.file}: {status}")
    print(f"  configurations accepted: {len(result.parse.accepted)} "
          f"subparser group(s); failures: {len(result.failures)}")
    print(f"  subparsers (max): {result.parse.stats.max_subparsers}; "
          f"forks: {result.parse.stats.forks}; "
          f"merges: {result.parse.stats.merges}")
    print(f"  latency: lex {result.timing.lex:.3f}s, preprocess "
          f"{result.timing.preprocess:.3f}s, parse "
          f"{result.timing.parse:.3f}s")
    for failure in result.failures[:5]:
        print(f"  error: {failure}")
    for diag in result.diagnostics[:8]:
        origin = f" at {diag.origin}" if diag.origin else ""
        print(f"  {diag.severity} [{diag.phase}]{origin} under "
              f"{diag.condition.to_expr_string()}: {diag.message}")
    if args.profile and result.profile is not None:
        print(result.profile.format_summary())
    if args.stats:
        _print_stats(result.unit.stats.as_dict())
    if args.dump_ast:
        print(dump(result.ast))
    for variable in args.projections:
        assignment = {variable: True}
        projected = project(result.ast, assignment)
        tokens = " ".join(t.text for t in iter_tokens(projected))
        print(f"--- projection [{variable}] ---")
        print(tokens)
    return EXIT_BY_STATUS.get(result.status, 1)


def _print_stats(stats: dict) -> None:
    print("  preprocessor statistics:")
    for key, value in stats.items():
        print(f"    {key}: {value}")


if __name__ == "__main__":
    sys.exit(main())
