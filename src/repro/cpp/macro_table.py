"""The conditional macro table (§2.1, Table 1 "Macro (Un)Definition").

Definitions and undefinitions for one macro may appear in different
branches of static conditionals, creating multiply-defined macros whose
meaning depends on the configuration (Figure 2).  The table therefore
records, per name, a *history* of events, each tagged with the presence
condition of its ``#define``/``#undef`` directive; a lookup replays the
history up to the requesting token's table version, trimming infeasible
entries, and returns a partition of the lookup condition into entries:

* a :class:`MacroDefinition` — the macro is defined this way here,
* ``UNDEFINED`` — explicitly ``#undef``'ed,
* ``FREE`` — never defined nor undefined: a configuration variable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lexer.tokens import Token


class MacroDefinition:
    """One ``#define`` body, object-like or function-like."""

    __slots__ = ("name", "params", "variadic", "body", "is_builtin",
                 "va_name")

    def __init__(self, name: str, body: Sequence[Token],
                 params: Optional[Sequence[str]] = None,
                 variadic: bool = False, is_builtin: bool = False,
                 va_name: Optional[str] = None):
        self.name = name
        self.body = list(body)
        self.params = list(params) if params is not None else None
        self.variadic = variadic
        self.is_builtin = is_builtin
        # GNU named variadic (`args...`): the name that collects the
        # rest arguments instead of __VA_ARGS__.
        self.va_name = va_name

    @property
    def is_function_like(self) -> bool:
        return self.params is not None

    def same_definition(self, other: "MacroDefinition") -> bool:
        """Token-wise equality, used to detect benign redefinition."""
        if (self.params is None) != (other.params is None):
            return False
        if self.params != other.params or self.variadic != other.variadic:
            return False
        if len(self.body) != len(other.body):
            return False
        return all(a.same_text(b) for a, b in zip(self.body, other.body))

    def __repr__(self) -> str:
        if self.is_function_like:
            params = ", ".join(self.params +
                               (["..."] if self.variadic else []))
            return f"#define {self.name}({params}) <{len(self.body)} tokens>"
        return f"#define {self.name} <{len(self.body)} tokens>"


class _State:
    """Sentinel entry states for undefined/free names."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __repr__(self) -> str:
        return self.label


UNDEFINED = _State("UNDEFINED")
FREE = _State("FREE")


class MacroTable:
    """Versioned, condition-tagged macro definitions.

    Every mutation bumps ``version``; lookups take the version of the
    *use site* so that text whose expansion is deferred (e.g. across a
    pending function-like invocation) still sees the right state.
    """

    def __init__(self, bdd_manager: Any):
        self._mgr = bdd_manager
        # name -> list of (version, condition, MacroDefinition|UNDEFINED)
        self._events: Dict[str, List[Tuple[int, Any, Any]]] = {}
        self.version = 0
        # Instrumentation (Table 3 rows).
        self.definition_count = 0
        self.redefinition_count = 0
        self.trimmed_count = 0

    # -- mutation ----------------------------------------------------------

    def define(self, definition: MacroDefinition, condition: Any) -> int:
        """Record a definition under ``condition``; returns new version."""
        if condition.is_false():
            return self.version
        self.version += 1
        events = self._events.setdefault(definition.name, [])
        if any(isinstance(entry, MacroDefinition)
               for _, prior_cond, entry in events
               if not (prior_cond & condition).is_false()):
            self.redefinition_count += 1
        events.append((self.version, condition, definition))
        self.definition_count += 1
        return self.version

    def undefine(self, name: str, condition: Any) -> int:
        """Record an ``#undef`` under ``condition``."""
        if condition.is_false():
            return self.version
        self.version += 1
        self._events.setdefault(name, []).append(
            (self.version, condition, UNDEFINED))
        return self.version

    def define_builtin(self, name: str, body_text: str = "",
                       params: Optional[Sequence[str]] = None) -> None:
        """Install a compiler built-in (ground truth, §2.1)."""
        from repro.lexer import lex
        from repro.lexer.tokens import TokenKind
        body = [t for t in lex(body_text, filename=f"<builtin:{name}>")
                if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
        self.define(MacroDefinition(name, body, params, is_builtin=True),
                    self._mgr.true)

    # -- lookup ------------------------------------------------------------

    def lookup(self, name: str, condition: Any,
               version: Optional[int] = None) \
            -> List[Tuple[Any, Any]]:
        """Partition ``condition`` into macro states at ``version``.

        Returns ``[(sub-condition, entry)]`` where entry is a
        MacroDefinition, UNDEFINED, or FREE; sub-conditions are mutually
        exclusive, non-false, and disjoin to ``condition``.  Infeasible
        entries are trimmed (and counted).
        """
        if condition.is_false():
            return []
        if version is None:
            version = self.version
        remaining = condition
        entries: List[Tuple[Any, Any]] = []
        events = self._events.get(name, ())
        # Later events shadow earlier ones, so replay newest-first
        # against the still-unclaimed condition.
        for event_version, event_cond, entry in reversed(events):
            if event_version > version:
                continue
            claimed = remaining & event_cond
            if claimed.is_false():
                self.trimmed_count += 1
                continue
            entries.append((claimed, entry))
            remaining = remaining & ~event_cond
            if remaining.is_false():
                break
        if not remaining.is_false():
            entries.append((remaining, FREE))
        return entries

    def is_free(self, name: str, condition: Any,
                version: Optional[int] = None) -> bool:
        """True if the name is free (a config variable) everywhere in
        ``condition``."""
        entries = self.lookup(name, condition, version)
        return all(entry is FREE for _, entry in entries)

    def defined_condition(self, name: str, condition: Any,
                          version: Optional[int] = None) -> Any:
        """The sub-condition of ``condition`` under which the name has
        a definition (used for ``defined(M)`` with non-free M)."""
        defined = self._mgr.false
        for sub_cond, entry in self.lookup(name, condition, version):
            if isinstance(entry, MacroDefinition):
                defined = defined | sub_cond
        return defined

    def known_names(self) -> List[str]:
        """All names that have any definition or undefinition events."""
        return sorted(self._events)
