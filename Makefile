# Developer/CI entry points.  PYTHONPATH=src keeps everything runnable
# without installation.
PY := PYTHONPATH=src python

.PHONY: test smoke-batch fuzz-smoke robustness-smoke trace-smoke \
	serve-smoke http-smoke chaos-smoke bench clean-cache

# Tier 1: the full unit-test suite (must stay green).
test:
	$(PY) -m pytest -x -q

# Tier 2: batch-engine smoke — generate the synthetic kernel corpus,
# fan it out over 2 workers with a deadline and retries, and require
# every unit to parse.  Catches engine/scheduler regressions in
# seconds without running the full benchmarks.
smoke-batch:
	$(PY) -m repro.tools.batch_cli --generate --seed 42 \
	    --workers 2 --timeout 60 --retries 1 --no-result-cache \
	    --metrics -

# Tier 2: differential-fuzzing smoke — generate 50 adversarial units
# and require the configuration-preserving pipeline and the
# single-configuration oracle to agree on every sampled configuration
# (tokens, errors, parses, ASTs).  Any disagreement is ddmin-shrunk
# and exits nonzero.
fuzz-smoke:
	$(PY) -m repro.tools.fuzz_cli --seed 0 --units 50 --timeout 60

# Tier 2: degradation smoke — run the fault-injection suite, then fuzz
# with the guarded-failure features (conditional #error / missing
# include) cranked up.  Confined failures must come back "degraded"
# with error agreement intact — never "crashed" — so the run exits 0.
robustness-smoke:
	$(PY) -m pytest -x -q tests/test_robustness.py
	$(PY) -m repro.tools.fuzz_cli --seed 0 --units 12 --timeout 60 \
	    --weight guarded_error=4 --weight guarded_missing_include=3

# Tier 2: observability smoke — trace the paper's Figure 1 mousedev
# example end-to-end with the repro.obs layer, check the emitted
# Chrome trace_event JSON against the format validator, and print the
# per-unit profile.  Catches tracer/exporter regressions in seconds.
trace-smoke:
	$(PY) -m repro.tools.parse_cli examples/mousedev.c \
	    -I examples/include --profile \
	    --trace /tmp/repro-trace-smoke.json
	$(PY) -c "import json, sys; \
	  from repro.obs import validate_chrome_trace; \
	  trace = json.load(open('/tmp/repro-trace-smoke.json')); \
	  problems = validate_chrome_trace(trace); \
	  sys.exit('invalid trace: ' + '; '.join(problems) \
	           if problems else 0); \
	  " && echo "trace-smoke: trace valid"

# Tier 2: parse-daemon smoke — start a real repro.serve server on a
# Unix socket and drive the whole serve contract through the client:
# warm cache hit on the second identical request, reverse-invalidation
# re-parse after a shared-header edit, status=shed under an over-depth
# burst, and a graceful draining shutdown.  Exits nonzero on the first
# violated expectation.
serve-smoke:
	$(PY) -m repro.tools.serve_cli --smoke examples/mousedev.c \
	    -I examples/include

# Tier 2: HTTP-frontend smoke — start one daemon with a Unix socket
# *and* an HTTP listener off the same warm state, then drive
# parse/invalidate/stats/healthz over HTTP: 200 on /healthz, cache hit
# on the re-parse, and the socket client answering a byte-identical
# record for the unit HTTP warmed.  Exits nonzero on the first
# violated expectation.
http-smoke:
	$(PY) -m repro.tools.serve_cli --http-smoke examples/mousedev.c \
	    -I examples/include

# Tier 2: fault-tolerance smoke — run a pooled (2-worker) server under
# the deterministic repro.chaos fault plan: worker crash on request,
# hang past the deadline, corrupt cache blob, dropped client socket,
# ENOSPC on cache put, and a torn HTTP response body, then hard-kill
# the daemon and require the restarted one to resume warm-state
# short-circuiting from the journal (checked over HTTP).  Exits
# nonzero on the first violated expectation.
chaos-smoke:
	$(PY) -m repro.tools.serve_cli --chaos-smoke examples/mousedev.c \
	    -I examples/include

# Full benchmark suite (Tables 2-3, Figures 8-10, scaling + speedup).
bench:
	$(PY) -m pytest benchmarks -q

# Persistent caches (grammar tables, batch results) are derived data.
clean-cache:
	rm -rf $${REPRO_CACHE_DIR:-$$HOME/.cache/repro-superc}
