"""Persistent caches for corpus-scale runs.

Two caches, both living under ``repro.cgrammar.cache_root()`` (or an
explicit ``cache_dir``), both derived data that is safe to delete:

* the **grammar-table cache** — versioned LALR table blobs
  (``repro.parser.lalr.to_blob``) keyed by a content hash of the C
  grammar, so worker processes deserialize prebuilt tables instead of
  regenerating the LR(0) automaton and DeRemer–Pennello lookaheads;
* the **result cache** — per-unit parse summaries keyed by the source
  file's hash, the hash of its include closure, and a fingerprint of
  the job configuration (include paths, builtin/extra macros,
  optimization level), so a re-run over an unchanged corpus skips
  straight to the recorded statistics.

Cached result records are the engine's summary dicts (status, timing
breakdown, subparser counts, preprocessor statistics) — not ASTs — so
hits are cheap JSON reads.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro import chaos
from repro.cgrammar import c_tables, c_tables_cache_path, cache_root
from repro.cpp import FileSystem, IncludeResolver
from repro.obs.tracer import NULL_TRACER
from repro.parser.lalr import to_blob

# Bump to invalidate every cached result record (schema or semantics
# change in what the engine records per unit).
# 2: records gained "diagnostics"/"invalid_configs"; guarded failures
#    became STATUS_DEGRADED.
# 3: timing gained "total"; records gained "profile" (repro.obs
#    per-unit profile summary, None when not profiling).
RESULT_CACHE_VERSION = 3

_INCLUDE_RE = re.compile(
    r'^[ \t]*#[ \t]*include\w*[ \t]+([<"])([^>"\n]+)[>"]', re.MULTILINE)


def warm_grammar_tables() -> str:
    """Ensure the C table blob exists on disk; return its path.

    Called in the parent before starting a worker pool, so every
    worker takes the deserialize path rather than racing to
    regenerate.  Writes the blob even when the parent already has
    in-process tables (e.g. the cache directory was wiped)."""
    tables = c_tables()
    path = c_tables_cache_path()
    if not os.path.exists(path):
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + f".tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(to_blob(tables))
            os.replace(tmp, path)
        except OSError:
            pass
    return path


def config_fingerprint(include_paths: Sequence[str],
                       builtins: Optional[Dict[str, str]],
                       extra_definitions: Optional[Dict[str, str]],
                       optimization: str) -> str:
    """Hash of everything besides the sources that shapes a parse."""
    payload = json.dumps({
        "version": RESULT_CACHE_VERSION,
        "include_paths": list(include_paths),
        "builtins": builtins,
        "extra_definitions": extra_definitions,
        "optimization": optimization,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def include_closure(fs: FileSystem, unit: str,
                    include_paths: Sequence[str]) \
        -> Tuple[str, FrozenSet[str]]:
    """Digest *and* member set of ``unit``'s transitive include closure.

    A conservative textual approximation: every ``#include`` operand is
    chased regardless of the conditionals around it (computed includes
    contribute their operand text instead of a file).  Over-approximate
    is the safe direction for a cache key — editing any header a unit
    could see in any configuration invalidates the unit's entry.

    The member set (every path visited, the unit included) is what the
    serve layer's reverse-invalidation index consumes: ``invalidate(h)``
    must drop exactly the units whose closure contains ``h``.
    """
    resolver = IncludeResolver(fs, include_paths)
    digest = hashlib.sha256()
    seen = set()
    stack = [unit]
    while stack:
        path = stack.pop()
        if path in seen:
            continue
        seen.add(path)
        text = fs.read(path)
        if text is None:
            continue
        digest.update(path.encode())
        digest.update(hashlib.sha256(text.encode()).digest())
        for match in sorted(_INCLUDE_RE.findall(text)):
            delim, name = match
            resolved = resolver.resolve(name, delim == '"', path)
            if resolved is None:
                digest.update(f"<unresolved:{name}>".encode())
            else:
                stack.append(resolved)
    return digest.hexdigest(), frozenset(seen)


def include_closure_digest(fs: FileSystem, unit: str,
                           include_paths: Sequence[str]) -> str:
    """Hash the transitive include closure of ``unit`` (digest only)."""
    return include_closure(fs, unit, include_paths)[0]


class ResultCache:
    """On-disk per-unit result records, one JSON file per key.

    Every read is fault-confined: a truncated, corrupt, or
    wrong-shaped record — a crashed writer, a full disk, manual
    tampering — is treated as a miss, the bad blob is deleted so it
    cannot poison later runs, and ``engine.result_cache.corrupt``
    counts the event.  A cache must never raise into a parse.
    """

    def __init__(self, cache_dir: Optional[str], fingerprint: str,
                 tracer: object = None):
        root = cache_dir or cache_root()
        self.directory = os.path.join(root, "results", fingerprint)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def key_for(self, unit: str, source_text: str,
                closure_digest: str) -> str:
        digest = hashlib.sha256()
        digest.update(unit.encode())
        digest.update(hashlib.sha256(source_text.encode()).digest())
        digest.update(closure_digest.encode())
        return digest.hexdigest()[:32]

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        path = self._path(key)
        if chaos.ACTIVE is not None:
            chaos.fire("cache.get", path=path)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self.misses += 1
            return None
        try:
            record = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            record = None
        if not isinstance(record, dict):
            # Truncated write, bit rot, or a non-record blob: miss,
            # and delete the evidence so it cannot poison later runs.
            self.corrupt += 1
            self.misses += 1
            if self.tracer.enabled:
                self.tracer.count("engine.result_cache.corrupt")
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        """Atomically publish one record.

        The record is serialized to a private temp file first and only
        then renamed over the final path (``os.replace`` is atomic on
        POSIX), so a concurrent reader — a daemon sharing the cache
        with a ``superc-batch`` run — either sees the previous complete
        entry or the new complete entry, never interleaved partial
        JSON.  Failures (including unserializable records) are
        swallowed and leave no temp litter behind: cache writes are
        best-effort.
        """
        tmp = self._path(key) + f".tmp.{os.getpid()}"
        try:
            if chaos.ACTIVE is not None:
                chaos.fire("cache.put", path=self._path(key))
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
            os.replace(tmp, self._path(key))
        except (OSError, TypeError, ValueError):
            try:
                os.remove(tmp)
            except OSError:
                pass

    def delete(self, key: str) -> bool:
        """Drop one record (serve-layer invalidation); True if it
        existed."""
        try:
            os.remove(self._path(key))
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Delete this fingerprint's records; return how many."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.remove(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed
