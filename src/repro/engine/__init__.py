"""Corpus-scale batch parsing engine.

The paper's evaluation is a corpus run — all 7,665 compilation units
of the x86 Linux kernel.  This subsystem is the reproduction's driver
for runs of that shape: a :class:`BatchEngine` schedules compilation
units across a process worker pool with per-unit deadlines, retries,
and error isolation; persistent caches (``repro.engine.cache``) keep
LALR tables and unchanged units' results across runs; a JSON-lines
metrics stream (``repro.engine.metrics``) reports progress; and
``repro.engine.results`` rolls per-unit records up into the paper's
Table 3 / Figure 8 / Figure 10 aggregates.

Typical use::

    from repro.corpus import generate_kernel
    from repro.engine import BatchEngine, CorpusJob, EngineConfig

    job = CorpusJob.from_corpus(generate_kernel())
    report = BatchEngine(EngineConfig(workers=4)).run(job)
    report.all_ok, report.cache_hit_rate, report.subparser_rollup()

The ``superc-batch`` CLI (``repro.tools.batch_cli``) fronts this
module for directory trees and generated corpora.
"""

from repro.engine.cache import (RESULT_CACHE_VERSION, ResultCache,
                                config_fingerprint, include_closure,
                                include_closure_digest,
                                warm_grammar_tables)
from repro.engine.metrics import STREAM_SCHEMA_VERSION, MetricsStream
from repro.engine.results import (RETRYABLE_STATUSES, STATUS_CRASHED,
                                  STATUS_DEGRADED, STATUS_DISAGREE,
                                  STATUS_ERROR, STATUS_OK,
                                  STATUS_PARSE_FAILED, STATUS_TIMEOUT,
                                  CorpusReport, UnitResult,
                                  error_record, format_report,
                                  percentile, record_from_result)
from repro.engine.scheduler import (DEFAULT_OPTIMIZATION, BatchEngine,
                                    CorpusJob, CrashLoopBreaker,
                                    DeadlineExceeded, EngineConfig,
                                    attempt_deadline)

__all__ = [
    "BatchEngine", "CorpusJob", "CorpusReport", "CrashLoopBreaker",
    "DEFAULT_OPTIMIZATION", "DeadlineExceeded",
    "EngineConfig", "MetricsStream", "RESULT_CACHE_VERSION",
    "RETRYABLE_STATUSES", "ResultCache", "STATUS_CRASHED",
    "STATUS_DEGRADED", "STATUS_DISAGREE",
    "STATUS_ERROR", "STATUS_OK",
    "STATUS_PARSE_FAILED", "STATUS_TIMEOUT", "STREAM_SCHEMA_VERSION",
    "UnitResult", "attempt_deadline",
    "config_fingerprint", "error_record", "format_report",
    "include_closure", "include_closure_digest", "percentile",
    "record_from_result", "warm_grammar_tables",
]
