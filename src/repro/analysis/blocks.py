"""Conditional-block analyses over configuration-preserving output.

These are the downstream analyses the paper motivates (§1, §8): once a
compilation unit carries presence conditions everywhere, questions
that would otherwise need exponentially many compiler runs become BDD
queries:

* :func:`collect_blocks` — every conditional code block with its full
  presence condition;
* :func:`configuration_coverage` — which fraction of blocks one
  configuration enables (the paper's intro cites Tartler et al. [37]:
  Linux ``allyesconfig`` covers less than 80% of conditional blocks);
* :func:`dead_blocks` — blocks infeasible under given constraints;
* :func:`mutually_exclusive` / :func:`always_together` — relations
  between blocks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cpp.conditions import defined_var
from repro.cpp.tree import Conditional, TokenTree
from repro.lexer.tokens import Token


class Block:
    """One conditional code block: tokens under a presence condition."""

    __slots__ = ("condition", "tokens", "depth")

    def __init__(self, condition: Any, tokens: List[Token], depth: int):
        self.condition = condition
        self.tokens = tokens
        self.depth = depth

    @property
    def first_line(self) -> Optional[int]:
        return self.tokens[0].line if self.tokens else None

    @property
    def file(self) -> Optional[str]:
        return self.tokens[0].file if self.tokens else None

    def preview(self, width: int = 6) -> str:
        return " ".join(t.text for t in self.tokens[:width])

    def __repr__(self) -> str:
        where = f"{self.file}:{self.first_line}" if self.tokens else "?"
        return f"Block({where}, {self.condition.to_expr_string()})"


def collect_blocks(tree: TokenTree, enclosing: Any) -> List[Block]:
    """All conditional blocks with their *full* (conjoined) presence
    conditions, in document order."""
    blocks: List[Block] = []

    def walk(subtree: TokenTree, condition: Any, depth: int) -> None:
        for item in subtree:
            if isinstance(item, Conditional):
                for branch_cond, branch in item.branches:
                    joint = condition & branch_cond
                    if joint.is_false():
                        continue
                    tokens = [t for t in branch
                              if isinstance(t, Token)]
                    blocks.append(Block(joint, tokens, depth + 1))
                    walk(branch, joint, depth + 1)

    walk(tree, enclosing, 0)
    return blocks


def configuration_coverage(blocks: Sequence[Block],
                           assignment: Dict[str, bool]) -> float:
    """Fraction of conditional blocks enabled by one configuration."""
    if not blocks:
        return 1.0
    enabled = sum(1 for block in blocks
                  if block.condition.evaluate(assignment))
    return enabled / len(blocks)


def allyes_assignment(config_variables: Sequence[str]) \
        -> Dict[str, bool]:
    """The allyesconfig analogue: every defined:VAR true."""
    return {defined_var(name): True for name in config_variables}


def max_coverage_bound(blocks: Sequence[Block]) -> float:
    """Upper bound on single-configuration coverage: blocks that are
    pairwise compatible could in principle all be enabled, but any
    #else pair caps coverage below 1.  Computed greedily: the largest
    set of blocks whose conjunction stays satisfiable."""
    if not blocks:
        return 1.0
    # Greedy: conjoin block conditions while satisfiable.
    chosen = 0
    if not blocks:
        return 1.0
    manager_true = None
    for block in blocks:
        manager_true = block.condition
        break
    accumulated = None
    for block in blocks:
        candidate = block.condition if accumulated is None \
            else (accumulated & block.condition)
        if not candidate.is_false():
            accumulated = candidate
            chosen += 1
    return chosen / len(blocks)


def dead_blocks(blocks: Sequence[Block], constraint: Any) \
        -> List[Block]:
    """Blocks unreachable under a constraint (e.g. an architecture's
    forced configuration choices)."""
    return [block for block in blocks
            if (block.condition & constraint).is_false()]


def mutually_exclusive(left: Block, right: Block) -> bool:
    """No configuration enables both blocks."""
    return (left.condition & right.condition).is_false()


def always_together(left: Block, right: Block) -> bool:
    """Every configuration enables both or neither."""
    return left.condition.equiv(right.condition).is_true()


def block_histogram(blocks: Sequence[Block]) -> Dict[int, int]:
    """Blocks per nesting depth (Table 3's 'Max. depth' context)."""
    histogram: Dict[int, int] = {}
    for block in blocks:
        histogram[block.depth] = histogram.get(block.depth, 0) + 1
    return histogram
