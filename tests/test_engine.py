"""Tests for the corpus-scale batch engine (``repro.engine``)."""

import json
import os

import pytest

from repro.corpus import KernelSpec, generate_kernel
from repro.cpp import DictFileSystem
from repro.engine import (BatchEngine, CorpusJob, CorpusReport,
                          EngineConfig, MetricsStream, ResultCache,
                          STATUS_DEGRADED,
                          STATUS_ERROR, STATUS_OK, STATUS_TIMEOUT,
                          format_report, include_closure,
                          include_closure_digest, percentile)

# Statuses that count as a usable result: the synthetic corpus's
# drivers carry guarded #error directives (mutually exclusive config
# options), which error confinement now reports as "degraded".
USABLE = (STATUS_OK, STATUS_DEGRADED)

# Small but real: 2 compilation units with the full Table 1 feature mix.
SMALL_SPEC = KernelSpec(seed=11, subsystems=1, drivers_per_subsystem=2,
                        functions_per_driver=3, figure6_entries=4,
                        extra_headers_per_subsystem=1)

# Fault hooks must be importable by name so worker processes can
# resolve them under any multiprocessing start method; the target unit
# travels through the environment (inherited by workers).
BAD_UNIT_ENV = "REPRO_ENGINE_TEST_BAD_UNIT"


def slow_unit_hook(unit):
    import time
    if os.environ.get(BAD_UNIT_ENV) == unit:
        time.sleep(10)


def raising_unit_hook(unit):
    if os.environ.get(BAD_UNIT_ENV) == unit:
        raise RuntimeError("injected failure")


@pytest.fixture(scope="module")
def small_corpus():
    return generate_kernel(SMALL_SPEC)


def make_config(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return EngineConfig(**kwargs)


class TestSerialRun:
    def test_all_units_parse(self, small_corpus, tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        report = BatchEngine(make_config(tmp_path)).run(job)
        assert report.units == len(small_corpus.units)
        assert report.all_ok
        assert set(report.by_status) <= set(USABLE)
        assert report.ok + report.degraded == report.units
        # The drivers' mutually-exclusive-options #error is confined,
        # not fatal: those units come back degraded with diagnostics.
        assert report.degraded > 0
        assert report.diagnostic_rollup()

    def test_record_schema(self, small_corpus, tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        report = BatchEngine(make_config(tmp_path)).run(job)
        record = report.records[0]
        for key in ("unit", "status", "attempt", "cache", "seconds",
                    "timing", "subparsers", "preprocessor", "profile",
                    "failures", "error"):
            assert key in record
        assert set(record["timing"]) == {"lex", "preprocess", "parse",
                                         "total"}
        assert record["timing"]["total"] >= record["timing"]["parse"]
        # Profiles only appear on EngineConfig(profile=True) runs.
        assert record["profile"] is None
        assert set(record["subparsers"]) == {"max", "forks", "merges"}
        assert record["subparsers"]["max"] >= 1
        assert record["preprocessor"]["macro_definitions"] > 0
        # Records are the JSON currency of the metrics stream and the
        # result cache: they must round-trip.
        assert json.loads(json.dumps(record)) == record

    def test_parse_failure_status(self, tmp_path):
        # Unconditionally broken: no configuration parses, so this is
        # a hard parse failure, not a degraded partial result.
        job = CorpusJob(["broken.c"],
                        files={"broken.c": "int x = ;\nint y;\n"})
        report = BatchEngine(make_config(tmp_path)).run(job)
        assert report.by_status == {"parse-failed": 1}
        assert not report.all_ok
        assert report.records[0]["failures"]

    def test_conditional_parse_failure_degrades(self, tmp_path):
        # Broken only under A: the !A configuration still yields an
        # AST, so the unit is degraded rather than parse-failed.
        job = CorpusJob(["partial.c"],
                        files={"partial.c": "#ifdef A\nint x = ;\n"
                                            "#endif\nint y;\n"})
        report = BatchEngine(make_config(tmp_path)).run(job)
        assert report.by_status == {STATUS_DEGRADED: 1}
        assert report.all_ok
        record = report.records[0]
        assert record["failures"]
        assert record["invalid_configs"]

    def test_unreadable_unit_is_error(self, tmp_path):
        job = CorpusJob(["missing.c"], files={})
        report = BatchEngine(make_config(tmp_path)).run(job)
        assert report.by_status == {STATUS_ERROR: 1}


class TestParallelRun:
    def test_matches_serial(self, small_corpus, tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        serial = BatchEngine(make_config(
            tmp_path / "a", use_result_cache=False)).run(job)
        parallel = BatchEngine(make_config(
            tmp_path / "b", workers=2, use_result_cache=False)).run(job)
        assert serial.statuses() == parallel.statuses()
        assert serial.subparser_rollup() == parallel.subparser_rollup()

    def test_crash_isolated_to_one_unit(self, small_corpus, tmp_path,
                                        monkeypatch):
        job = CorpusJob.from_corpus(small_corpus)
        bad = job.units[0]
        monkeypatch.setenv(BAD_UNIT_ENV, bad)
        config = make_config(
            tmp_path, workers=2, retries=1, use_result_cache=False,
            fault_hook="tests.test_engine:raising_unit_hook")
        report = BatchEngine(config).run(job)
        statuses = report.statuses()
        assert statuses[bad] == STATUS_ERROR
        for unit in job.units[1:]:
            assert statuses[unit] in USABLE
        bad_record = [r for r in report.records if r["unit"] == bad][0]
        assert bad_record["attempt"] == 2  # retried once
        assert "injected failure" in bad_record["error"]


class TestTimeoutAndRetry:
    def test_slow_unit_times_out_and_retries(self, small_corpus,
                                             tmp_path, monkeypatch):
        job = CorpusJob.from_corpus(small_corpus)
        bad = job.units[-1]
        monkeypatch.setenv(BAD_UNIT_ENV, bad)
        config = make_config(
            tmp_path, timeout_seconds=0.2, retries=1,
            use_result_cache=False,
            fault_hook="tests.test_engine:slow_unit_hook")
        report = BatchEngine(config).run(job)
        statuses = report.statuses()
        assert statuses[bad] == STATUS_TIMEOUT
        for unit in job.units[:-1]:
            assert statuses[unit] in USABLE
        bad_record = [r for r in report.records if r["unit"] == bad][0]
        assert bad_record["attempt"] == 2
        assert "deadline" in bad_record["error"]

    def test_zero_retries(self, small_corpus, tmp_path, monkeypatch):
        job = CorpusJob.from_corpus(small_corpus)
        bad = job.units[0]
        monkeypatch.setenv(BAD_UNIT_ENV, bad)
        config = make_config(
            tmp_path, timeout_seconds=0.2, retries=0,
            use_result_cache=False,
            fault_hook="tests.test_engine:slow_unit_hook")
        report = BatchEngine(config).run(job)
        bad_record = [r for r in report.records if r["unit"] == bad][0]
        assert bad_record["status"] == STATUS_TIMEOUT
        assert bad_record["attempt"] == 1


class TestResultCache:
    def test_second_run_hits(self, small_corpus, tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        config = make_config(tmp_path)
        cold = BatchEngine(config).run(job)
        warm = BatchEngine(config).run(job)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.units
        assert warm.cache_hit_rate == 1.0
        assert cold.statuses() == warm.statuses()
        assert cold.subparser_rollup() == warm.subparser_rollup()

    def test_source_edit_invalidates_unit(self, small_corpus, tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        config = make_config(tmp_path)
        BatchEngine(config).run(job)
        edited = dict(small_corpus.files)
        target = job.units[0]
        edited[target] += "\nint engine_cache_probe;\n"
        edited_job = CorpusJob(job.units, job.include_paths,
                               files=edited)
        warm = BatchEngine(config).run(edited_job)
        by_unit = {r["unit"]: r["cache"] for r in warm.records}
        assert by_unit[target] == "miss"
        for unit in job.units[1:]:
            assert by_unit[unit] == "hit"

    def test_header_edit_invalidates_includers(self, small_corpus,
                                               tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        config = make_config(tmp_path)
        BatchEngine(config).run(job)
        edited = dict(small_corpus.files)
        # kernel.h is included (transitively) by every driver.
        edited["include/linux/kernel.h"] += "\nint cache_probe;\n"
        warm = BatchEngine(config).run(
            CorpusJob(job.units, job.include_paths, files=edited))
        assert warm.cache_hits == 0

    def test_timeouts_stay_uncached(self, small_corpus, tmp_path,
                                    monkeypatch):
        job = CorpusJob.from_corpus(small_corpus)
        bad = job.units[0]
        monkeypatch.setenv(BAD_UNIT_ENV, bad)
        config = make_config(
            tmp_path, timeout_seconds=0.2, retries=0,
            fault_hook="tests.test_engine:slow_unit_hook")
        BatchEngine(config).run(job)
        # Second run without the fault: the previously timed-out unit
        # must be reparsed (miss), not answered from the cache.
        monkeypatch.delenv(BAD_UNIT_ENV)
        warm = BatchEngine(config).run(job)
        by_unit = {r["unit"]: r for r in warm.records}
        assert by_unit[bad]["cache"] == "miss"
        assert by_unit[bad]["status"] in USABLE


class TestResultCacheDurability:
    """Result-cache publication must be atomic and litter-free: a
    concurrent reader (a serve daemon sharing the cache with a batch
    run) sees the previous complete entry or the new complete entry,
    never partial JSON, and failed writes leave nothing behind."""

    RECORD = {"unit": "a.c", "status": "ok", "cache": "miss"}

    def cache_and_key(self, tmp_path):
        cache = ResultCache(str(tmp_path), "fp")
        return cache, cache.key_for("a.c", "int a;\n", "digest")

    def test_put_writes_temp_then_replaces(self, tmp_path,
                                           monkeypatch):
        cache, key = self.cache_and_key(tmp_path)
        final = os.path.join(cache.directory, f"{key}.json")
        observed = {}
        real_dump = json.dump

        def spying_dump(obj, handle, **kwargs):
            observed["target"] = handle.name
            observed["final_visible"] = os.path.exists(final)
            return real_dump(obj, handle, **kwargs)

        monkeypatch.setattr("repro.engine.cache.json.dump",
                            spying_dump)
        cache.put(key, dict(self.RECORD))
        assert observed["target"] != final
        assert observed["final_visible"] is False
        assert cache.get(key) == self.RECORD

    def test_interrupted_write_leaves_no_artifacts(self, tmp_path,
                                                   monkeypatch):
        cache, key = self.cache_and_key(tmp_path)

        def exploding_dump(obj, handle, **kwargs):
            handle.write('{"partial": ')
            raise OSError("disk full")

        with monkeypatch.context() as patch:
            patch.setattr("repro.engine.cache.json.dump",
                          exploding_dump)
            cache.put(key, dict(self.RECORD))  # must not raise
        assert cache.get(key) is None
        assert os.listdir(cache.directory) == []

    def test_interrupted_write_preserves_previous_entry(
            self, tmp_path, monkeypatch):
        cache, key = self.cache_and_key(tmp_path)
        cache.put(key, dict(self.RECORD))

        def exploding_dump(obj, handle, **kwargs):
            handle.write('{"partial": ')
            raise OSError("disk full")

        with monkeypatch.context() as patch:
            patch.setattr("repro.engine.cache.json.dump",
                          exploding_dump)
            cache.put(key, {"unit": "a.c", "status": "error"})
        assert cache.get(key) == self.RECORD

    def test_unserializable_record_leaves_no_artifacts(self, tmp_path):
        cache, key = self.cache_and_key(tmp_path)
        cache.put(key, {"bad": {1, 2, 3}})  # sets are not JSON
        assert cache.get(key) is None
        assert os.listdir(cache.directory) == []

    def test_delete(self, tmp_path):
        cache, key = self.cache_and_key(tmp_path)
        cache.put(key, dict(self.RECORD))
        assert cache.delete(key)
        assert not cache.delete(key)
        assert cache.get(key) is None


class TestResultCacheRoundTrip:
    """Cached records replay diagnostics, profile, and timing verbatim
    — a warm answer is indistinguishable from the fresh parse except
    for its ``cache`` field."""

    FILES = {
        "bad.c": "#if defined(CONFIG_X)\n#error conditional failure\n"
                 "#endif\nint ok_part;\n",
        "good.c": "int g;\n",
    }

    def run_twice(self, tmp_path):
        job = CorpusJob(["bad.c", "good.c"], files=dict(self.FILES))
        config = make_config(tmp_path, profile=True)
        cold = BatchEngine(config).run(job)
        warm = BatchEngine(config).run(job)
        return cold, warm

    def test_identical_modulo_cache_field(self, tmp_path):
        cold, warm = self.run_twice(tmp_path)
        assert warm.cache_hits == 2
        cold_by = {r["unit"]: dict(r) for r in cold.records}
        warm_by = {r["unit"]: dict(r) for r in warm.records}
        for unit, cold_record in cold_by.items():
            warm_record = warm_by[unit]
            assert cold_record.pop("cache") == "miss"
            assert warm_record.pop("cache") == "hit"
            assert warm_record == cold_record

    def test_diagnostics_and_profile_survive(self, tmp_path):
        from repro.engine import UnitResult
        cold, warm = self.run_twice(tmp_path)
        cold_by = {r["unit"]: UnitResult(r) for r in cold.records}
        warm_by = {r["unit"]: UnitResult(r) for r in warm.records}
        fresh, cached = cold_by["bad.c"], warm_by["bad.c"]
        # The guarded #error makes the test non-vacuous: there is a
        # real diagnostic and a real profile to round-trip.
        assert fresh.status == STATUS_DEGRADED
        assert len(fresh.diagnostics) == 1
        assert fresh.profile is not None
        assert cached.status == fresh.status
        assert cached.diagnostics == fresh.diagnostics
        assert cached.profile == fresh.profile
        assert cached.record["timing"] == fresh.record["timing"]


class TestEngineExactInvalidation:
    """Editing a header shared by N units invalidates exactly those N
    units and no others, driven through the batch engine directly
    (the serve-side twin lives in tests/test_serve.py)."""

    FILES = {
        "include/shared.h": "#define SHARED 1\n",
        "include/only_a.h": "#include <shared.h>\n#define ONLY_A 2\n",
        "a.c": "#include <only_a.h>\nint a = SHARED + ONLY_A;\n",
        "b.c": "#include <shared.h>\nint b = SHARED;\n",
        "c.c": "int c = 3;\n",
    }
    UNITS = ["a.c", "b.c", "c.c"]

    def run(self, tmp_path, files):
        job = CorpusJob(self.UNITS, include_paths=["include"],
                        files=dict(files))
        return BatchEngine(make_config(tmp_path)).run(job)

    def cache_by_unit(self, report):
        return {r["unit"]: r["cache"] for r in report.records}

    def test_shared_header_edit_hits_exactly_its_dependents(
            self, tmp_path):
        self.run(tmp_path, self.FILES)
        edited = dict(self.FILES)
        edited["include/shared.h"] = "#define SHARED 9\n"
        warm = self.run(tmp_path, edited)
        assert self.cache_by_unit(warm) == {
            "a.c": "miss", "b.c": "miss", "c.c": "hit"}

    def test_second_level_header_edit_hits_only_its_chain(
            self, tmp_path):
        self.run(tmp_path, self.FILES)
        edited = dict(self.FILES)
        edited["include/only_a.h"] = \
            "#include <shared.h>\n#define ONLY_A 7\n"
        warm = self.run(tmp_path, edited)
        assert self.cache_by_unit(warm) == {
            "a.c": "miss", "b.c": "hit", "c.c": "hit"}

    def test_closure_members_match_the_resolver(self):
        _digest, members = include_closure(
            DictFileSystem(dict(self.FILES)), "a.c", ["include"])
        assert members == frozenset(
            {"a.c", "include/only_a.h", "include/shared.h"})


class TestIncludeClosureDigest:
    FILES = {
        "a.c": '#include <x.h>\nint a;\n',
        "include/x.h": '#include "y.h"\nint x;\n',
        "include/y.h": "int y;\n",
        "include/z.h": "int z;\n",
    }

    def digest(self, files):
        return include_closure_digest(DictFileSystem(files), "a.c",
                                      ["include"])

    def test_stable(self):
        assert self.digest(self.FILES) == self.digest(dict(self.FILES))

    def test_transitive_header_edit_changes_digest(self):
        edited = dict(self.FILES)
        edited["include/y.h"] = "long y;\n"
        assert self.digest(edited) != self.digest(self.FILES)

    def test_unrelated_header_ignored(self):
        edited = dict(self.FILES)
        edited["include/z.h"] = "long z;\n"
        assert self.digest(edited) == self.digest(self.FILES)


class TestMetricsStream:
    def test_event_sequence_and_schema(self, small_corpus, tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        stream = MetricsStream(keep_events=True)
        BatchEngine(make_config(tmp_path)).run(job, stream)
        events = stream.events
        assert events[0]["event"] == "run-start"
        assert events[0]["units"] == len(job.units)
        assert events[-1]["event"] == "run-end"
        unit_events = [e for e in events if e["event"] == "unit"]
        assert len(unit_events) == len(job.units)
        for event in unit_events:
            for key in ("unit", "status", "attempt", "cache",
                        "seconds", "timing", "subparsers", "ts",
                        "schema"):
                assert key in event
        by_status = events[-1]["summary"]["by_status"]
        assert set(by_status) <= set(USABLE)
        assert sum(by_status.values()) == len(job.units)
        assert "diagnostics" in events[-1]["summary"]

    def test_jsonl_file_sink(self, small_corpus, tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        path = tmp_path / "metrics.jsonl"
        with MetricsStream(str(path)) as stream:
            BatchEngine(make_config(tmp_path)).run(job, stream)
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["event"] == "run-start"
        assert parsed[-1]["event"] == "run-end"
        assert all("ts" in event for event in parsed)


class TestFromDirectory:
    def test_scan_and_parse(self, small_corpus, tmp_path):
        root = tmp_path / "tree"
        small_corpus.write_to_directory(str(root))
        job = CorpusJob.from_directory(str(root),
                                       include_paths=["include"])
        assert len(job.units) == len(small_corpus.units)
        assert all(os.path.isabs(unit) for unit in job.units)
        report = BatchEngine(make_config(tmp_path)).run(job)
        assert report.all_ok


class TestReportRollups:
    def test_percentile(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.9) == 3.0
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3
        assert percentile([1, 2, 3, 4, 5], 1.0) == 5

    def test_rollups_and_format(self, small_corpus, tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        report = BatchEngine(make_config(tmp_path)).run(job)
        sub = report.subparser_rollup()
        assert sub["p100"] >= sub["p90"] >= sub["p50"] >= 1
        assert sub["forks"] == sub["merges"] > 0
        latency = report.latency_rollup()
        assert set(latency) == {"lex", "preprocess", "parse"}
        assert latency["parse"]["total"] > 0
        pp = report.preprocessor_rollup()
        assert pp["macro_definitions"]["p100"] >= \
            pp["macro_definitions"]["p50"] > 0
        text = format_report(report, verbose=True)
        assert "units:" in text and "subparsers:" in text
        assert "macro_definitions" in text

    def test_summary_is_json_serializable(self, small_corpus, tmp_path):
        job = CorpusJob.from_corpus(small_corpus)
        report = BatchEngine(make_config(tmp_path)).run(job)
        json.dumps(report.summary())


class TestEngineConfig:
    def test_unknown_optimization_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(optimization="Turbo")

    def test_worker_floor(self):
        assert EngineConfig(workers=0).workers == 1
