"""SuperC reproduction: parsing all of C by taming the preprocessor.

A from-scratch Python implementation of Gazzillo & Grimm's SuperC
(PLDI 2012): a configuration-preserving preprocessor that resolves
includes and macros while leaving static conditionals intact, and a
Fork-Merge LR parser that produces a single AST — with static choice
nodes — covering every configuration of a C compilation unit.

Quick start::

    import repro

    result = repro.parse('''
    #ifdef CONFIG_SMP
    int nr_cpus = 8;
    #else
    int nr_cpus = 1;
    #endif
    ''')
    result.ast          # AST with a StaticChoice for the conditional
    result.ok           # every configuration parsed
    result.status       # Result protocol: ok | degraded | parse-failed

``repro.parse`` / ``repro.Session`` / ``repro.Config`` (from
:mod:`repro.api`) are the unified facade; ``parse_c`` remains as the
legacy convenience.  Pass ``tracer=repro.obs.Tracer()`` to observe the
pipeline (spans, counters, Chrome-traceable events — see
:mod:`repro.obs`).

Package map: :mod:`repro.bdd` (presence conditions),
:mod:`repro.lexer`, :mod:`repro.cpp` (configuration-preserving
preprocessing), :mod:`repro.parser` (LALR + FMLR engines),
:mod:`repro.cgrammar` (the C grammar and typedef context),
:mod:`repro.baselines` (MAPR / TypeChef-proxy / gcc-like),
:mod:`repro.corpus` (the synthetic kernel), :mod:`repro.eval`
(the paper's tables and figures), :mod:`repro.engine` (corpus-scale
batch runs), :mod:`repro.serve` (the warm parse daemon and its
supervised worker pool), and :mod:`repro.chaos` (deterministic fault
injection behind the ``chaos-smoke`` check).
"""

from repro.api import Config, Session, connect, is_result, parse
from repro.bdd import BDDManager
from repro.cpp import (CompilationUnit, Conditional, DictFileSystem,
                       Preprocessor, PreprocessorError,
                       RealFileSystem, SimplePreprocessor)
from repro.errors import (Diagnostic, ResourceBudget, SEVERITY_CONFIG,
                          SEVERITY_FATAL, SEVERITY_WARNING)
from repro.parser import Node, ParseError, StaticChoice
from repro.parser.fmlr import (FMLROptions, FMLRParser,
                               OPTIMIZATION_LEVELS, SubparserExplosion)
from repro.superc import (STATUS_DEGRADED, STATUS_OK,
                          STATUS_PARSE_FAILED, SuperC, SuperCResult,
                          Timing, parse_c)

__version__ = "1.0.0"

__all__ = [
    "BDDManager", "CompilationUnit", "Conditional", "Config",
    "Diagnostic", "DictFileSystem",
    "FMLROptions", "FMLRParser", "Node", "OPTIMIZATION_LEVELS",
    "ParseError", "Preprocessor", "PreprocessorError",
    "RealFileSystem", "ResourceBudget", "SEVERITY_CONFIG",
    "SEVERITY_FATAL", "SEVERITY_WARNING", "STATUS_DEGRADED",
    "STATUS_OK", "STATUS_PARSE_FAILED", "Session",
    "SimplePreprocessor", "StaticChoice", "SuperC",
    "SuperCResult", "SubparserExplosion", "Timing", "connect",
    "is_result", "parse", "parse_c",
]
