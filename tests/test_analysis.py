"""Tests for the variability-aware analyses."""

import pytest

from repro.analysis import (allyes_assignment, always_together,
                            block_histogram, collect_blocks,
                            conditional_symbols, configuration_coverage,
                            dead_blocks, file_scope_symbols,
                            multiply_declared, mutually_exclusive)
from repro.cpp.conditions import defined_var
from repro.superc import parse_c
from tests.support import preprocess

SOURCE = """\
#ifdef CONFIG_A
int a_only;
#else
int not_a;
#endif
#ifdef CONFIG_B
int b_only;
#endif
int always;
"""


class TestBlocks:
    def test_collect_blocks(self):
        unit = preprocess(SOURCE)
        blocks = collect_blocks(unit.tree, unit.manager.true)
        previews = [block.preview(3) for block in blocks]
        assert "int a_only ;" in previews
        assert "int not_a ;" in previews
        assert "int b_only ;" in previews
        # `always` is not inside a conditional.
        assert not any("always" in p for p in previews)

    def test_conditions_conjoined(self):
        source = ("#ifdef CONFIG_A\n#ifdef CONFIG_B\nint ab;\n"
                  "#endif\n#endif\n")
        unit = preprocess(source)
        blocks = collect_blocks(unit.tree, unit.manager.true)
        inner = [b for b in blocks if b.preview(2) == "int ab"]
        assert len(inner) == 1
        condition = inner[0].condition
        assert condition.evaluate({defined_var("CONFIG_A"): True,
                                   defined_var("CONFIG_B"): True})
        assert not condition.evaluate({defined_var("CONFIG_A"): True})

    def test_coverage_allyes(self):
        unit = preprocess(SOURCE)
        blocks = collect_blocks(unit.tree, unit.manager.true)
        allyes = allyes_assignment(["CONFIG_A", "CONFIG_B"])
        coverage = configuration_coverage(blocks, allyes)
        # allyes enables a_only and b_only but NOT the #else block:
        # like the paper's intro claim, a maximal configuration cannot
        # cover conditionals with more than one branch.
        assert coverage == pytest.approx(2 / 3)
        assert configuration_coverage(blocks, {}) == \
            pytest.approx(1 / 3)

    def test_coverage_empty_blocks(self):
        assert configuration_coverage([], {}) == 1.0

    def test_dead_blocks(self):
        unit = preprocess(SOURCE)
        blocks = collect_blocks(unit.tree, unit.manager.true)
        constraint = unit.manager.var(defined_var("CONFIG_A"))
        dead = dead_blocks(blocks, constraint)
        assert [b.preview(2) for b in dead] == ["int not_a"]

    def test_block_relations(self):
        unit = preprocess(SOURCE)
        blocks = collect_blocks(unit.tree, unit.manager.true)
        a_only = next(b for b in blocks if "a_only" in b.preview())
        not_a = next(b for b in blocks if "not_a" in b.preview())
        b_only = next(b for b in blocks if "b_only" in b.preview())
        assert mutually_exclusive(a_only, not_a)
        assert not mutually_exclusive(a_only, b_only)
        assert always_together(a_only, a_only)
        assert not always_together(a_only, b_only)

    def test_histogram(self):
        source = ("#ifdef A\nint x;\n#ifdef B\nint y;\n#endif\n#endif\n")
        unit = preprocess(source)
        blocks = collect_blocks(unit.tree, unit.manager.true)
        histogram = block_histogram(blocks)
        assert histogram.get(1, 0) >= 1
        assert histogram.get(2, 0) >= 1


class TestSymbols:
    SOURCE = """\
typedef unsigned long ulong_t;
#ifdef CONFIG_WIDE
typedef unsigned long long wide_t;
#endif
int shared_counter;
#ifdef CONFIG_A
static int helper(void) { return 1; }
#else
static int helper(void) { return 2; }
#endif
struct device { int id; };
"""

    def test_file_scope_symbols(self):
        result = parse_c(self.SOURCE)
        symbols = file_scope_symbols(result.ast, result.unit.manager)
        names = {s.name for s in symbols}
        assert {"ulong_t", "wide_t", "shared_counter", "helper",
                "device"} <= names

    def test_kinds(self):
        result = parse_c(self.SOURCE)
        symbols = file_scope_symbols(result.ast, result.unit.manager)
        kinds = {s.name: s.kind for s in symbols}
        assert kinds["ulong_t"] == "typedef"
        assert kinds["shared_counter"] == "variable"
        assert kinds["helper"] == "function"
        assert kinds["device"] == "tag"

    def test_conditional_symbols(self):
        result = parse_c(self.SOURCE)
        symbols = file_scope_symbols(result.ast, result.unit.manager)
        conditional = {s.name for s in conditional_symbols(symbols)}
        assert "wide_t" in conditional
        assert "shared_counter" not in conditional

    def test_multiply_declared(self):
        result = parse_c(self.SOURCE)
        symbols = file_scope_symbols(result.ast, result.unit.manager)
        multi = multiply_declared(symbols)
        assert "helper" in multi
        assert len(multi["helper"]) == 2
        # The two helper definitions live in disjoint configurations.
        first, second = multi["helper"]
        assert (first.condition & second.condition).is_false()

    def test_presence_conditions(self):
        result = parse_c(self.SOURCE)
        symbols = file_scope_symbols(result.ast, result.unit.manager)
        wide = next(s for s in symbols if s.name == "wide_t")
        assert wide.condition.evaluate(
            {defined_var("CONFIG_WIDE"): True})
        assert not wide.condition.evaluate({})
