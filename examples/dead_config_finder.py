#!/usr/bin/env python3
"""A configuration-aware dead-code finder built on the SuperC API.

This is the class of tool the paper motivates: analyses that must see
*all* configurations at once.  Given architectural constraints (some
CONFIG variables forced on/off, dependencies between variables), it
reports:

* conditional code blocks that become unreachable under the
  constraints (their presence condition is infeasible), and
* ``#error`` configurations, i.e. build-breaking variable
  combinations.

A per-configuration tool (like a compiler) would need exponentially
many runs to find these; here one parse suffices because every block
carries its presence condition as a BDD.

Run:  python examples/dead_config_finder.py
"""

from repro import BDDManager, StaticChoice, parse_c
from repro.cpp.conditions import defined_var
from repro.parser.ast import Node, iter_tokens

SOURCE = '''\
#ifdef CONFIG_64BIT
#define BITS_PER_LONG 64
#else
#define BITS_PER_LONG 32
#endif

#if defined(CONFIG_HIGHMEM) && defined(CONFIG_64BIT)
#error "highmem is pointless on 64-bit"
#endif

long read_counter(void)
{
#ifdef CONFIG_HIGHMEM
    long v = remap_and_read();
#else
    long v = direct_read();
#endif
#if BITS_PER_LONG == 64
    return v;
#else
    return v & 0xffffffff;
#endif
}
'''


def collect_choices(value, enclosing, out):
    """All (presence condition, first tokens) per choice branch."""
    if isinstance(value, StaticChoice):
        for condition, branch in value.branches:
            joint = enclosing & condition
            tokens = [t.text for t in iter_tokens(branch)][:6]
            out.append((joint, tokens))
            collect_choices(branch, joint, out)
    elif isinstance(value, Node):
        for child in value.children:
            collect_choices(child, enclosing, out)
    elif isinstance(value, tuple):
        for child in value:
            collect_choices(child, enclosing, out)


def main() -> None:
    result = parse_c(SOURCE)
    unit = result.unit
    manager = unit.manager

    # Architectural constraint: we only build 64-bit targets.
    constraint = manager.var(defined_var("CONFIG_64BIT"))
    print("constraint: CONFIG_64BIT is always enabled\n")

    print("--- build-breaking configurations (#error) ---")
    for condition, message in unit.error_conditions:
        print(f"  {condition.to_expr_string()}: {message}")
        under_constraint = condition & constraint
        if not under_constraint.is_false():
            print("    -> still reachable under the constraint: "
                  f"{under_constraint.to_expr_string()}")

    print("\n--- dead code blocks under the constraint ---")
    choices = []
    collect_choices(result.ast, manager.true, choices)
    feasible = constraint & unit.feasible_condition
    for condition, tokens in choices:
        if (condition & feasible).is_false():
            print(f"  unreachable when {constraint.to_expr_string()}: "
                  f"{' '.join(tokens)} ...")
            print(f"    (block condition: "
                  f"{condition.to_expr_string()})")

    print("\n--- per-block configuration counts ---")
    variables = [v for v in manager.variable_names]
    for condition, tokens in choices[:4]:
        count = condition.sat_count(variables)
        total = 2 ** len(variables)
        print(f"  {' '.join(tokens[:4]):<36} enabled in "
              f"{count}/{total} configurations")


if __name__ == "__main__":
    main()
