"""Grammar representation with SuperC-style AST annotations.

SuperC reuses Roskind's C grammar and feeds it to Bison; AST
construction is controlled by five annotations placed on productions
(§5.1): ``layout``, ``passthrough``, ``list``, ``action``, and
``complete``.  This module provides the same model: a grammar is a set
of productions, each carrying an annotation that tells the engines how
to build its semantic value, and a set of *complete* nonterminals that
bound where FMLR subparsers may merge with static choice nodes.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

END = "$end"          # the end-of-input terminal
AUGMENTED = "$accept"  # the augmented start symbol


class Build(enum.Enum):
    """How a production constructs its semantic value (§5.1)."""

    NODE = "node"                # generic AST node named by the production
    LAYOUT = "layout"            # no value (punctuation-only productions)
    PASSTHROUGH = "passthrough"  # reuse the single child's value
    LIST = "list"                # flatten left-recursion into a tuple
    ACTION = "action"            # run arbitrary user code


class Assoc(enum.Enum):
    LEFT = "left"
    RIGHT = "right"
    NONASSOC = "nonassoc"


class Production:
    """One grammar production ``lhs -> rhs`` with its annotation."""

    __slots__ = ("index", "lhs", "rhs", "build", "action", "node_name",
                 "prec_symbol")

    def __init__(self, index: int, lhs: str, rhs: Tuple[str, ...],
                 build: Build = Build.NODE,
                 action: Optional[Callable] = None,
                 node_name: Optional[str] = None,
                 prec_symbol: Optional[str] = None):
        self.index = index
        self.lhs = lhs
        self.rhs = rhs
        self.build = build
        self.action = action
        self.node_name = node_name or lhs
        self.prec_symbol = prec_symbol

    def __repr__(self) -> str:
        return f"{self.lhs} -> {' '.join(self.rhs) or '<empty>'}"


class GrammarError(Exception):
    """Raised for malformed grammars (unknown symbols, bad annotations)."""


class Grammar:
    """A context-free grammar plus annotations and precedence.

    Usage::

        g = Grammar("S")
        g.rule("S", ["S", "a"], build=Build.LIST)
        g.rule("S", [])
        g.finish()
    """

    def __init__(self, start: str):
        self.start = start
        self.productions: List[Production] = [
            Production(0, AUGMENTED, (start, END))]
        self.by_lhs: Dict[str, List[Production]] = {
            AUGMENTED: [self.productions[0]]}
        self.complete: set = set()
        self._prec: Dict[str, Tuple[int, Assoc]] = {}
        self._prec_level = 0
        self._finished = False
        self.nonterminals: set = {AUGMENTED}
        self.terminals: set = set()

    # -- construction ----------------------------------------------------

    def rule(self, lhs: str, rhs: Sequence[str],
             build: Build = Build.NODE,
             action: Optional[Callable] = None,
             node_name: Optional[str] = None,
             prec: Optional[str] = None) -> Production:
        """Add a production.  ``rhs`` entries are symbol names."""
        if self._finished:
            raise GrammarError("grammar already finished")
        production = Production(len(self.productions), lhs, tuple(rhs),
                                build, action, node_name, prec)
        if build is Build.ACTION and action is None:
            raise GrammarError(f"{production}: ACTION build requires a "
                               "callable")
        self.productions.append(production)
        self.by_lhs.setdefault(lhs, []).append(production)
        self.nonterminals.add(lhs)
        return production

    def rules(self, lhs: str, alternatives: Iterable[Sequence[str]],
              build: Build = Build.NODE) -> None:
        """Add several alternatives for one nonterminal."""
        for rhs in alternatives:
            self.rule(lhs, rhs, build=build)

    def mark_complete(self, *nonterminals: str) -> None:
        """Mark nonterminals as complete syntactic units (§5.1).

        FMLR merges subparsers only when differing semantic values sit
        under a complete nonterminal, wrapping them in a static choice
        node.
        """
        self.complete.update(nonterminals)

    def precedence(self, assoc: Assoc, symbols: Sequence[str]) -> None:
        """Declare one precedence level (later calls bind tighter)."""
        self._prec_level += 1
        for symbol in symbols:
            self._prec[symbol] = (self._prec_level, assoc)

    def prec_of(self, symbol: str) -> Optional[Tuple[int, Assoc]]:
        return self._prec.get(symbol)

    def production_prec(self, production: Production) \
            -> Optional[Tuple[int, Assoc]]:
        """Bison-style: %prec override, else last terminal of the RHS."""
        if production.prec_symbol is not None:
            return self._prec.get(production.prec_symbol)
        for symbol in reversed(production.rhs):
            if symbol in self.terminals:
                return self._prec.get(symbol)
        return None

    # -- finalization ------------------------------------------------------

    def finish(self) -> "Grammar":
        """Classify symbols and validate the grammar."""
        if self._finished:
            return self
        self.terminals = set()
        for production in self.productions:
            for symbol in production.rhs:
                if symbol not in self.by_lhs:
                    self.terminals.add(symbol)
        self.terminals.add(END)
        if self.start not in self.nonterminals:
            raise GrammarError(f"start symbol {self.start!r} has no "
                               "productions")
        for nonterminal in self.complete:
            if nonterminal not in self.nonterminals:
                raise GrammarError(
                    f"complete mark on unknown nonterminal {nonterminal!r}")
        self._check_productive()
        self._finished = True
        return self

    def _check_productive(self) -> None:
        """Reject nonterminals that can never derive a terminal string."""
        productive: set = set()
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                if production.lhs in productive:
                    continue
                if all(symbol in self.terminals or symbol in productive
                       for symbol in production.rhs):
                    productive.add(production.lhs)
                    changed = True
        dead = self.nonterminals - productive
        if dead:
            raise GrammarError(
                "unproductive nonterminals: " + ", ".join(sorted(dead)))

    # -- queries ------------------------------------------------------------

    def is_terminal(self, symbol: str) -> bool:
        return symbol in self.terminals

    def is_complete(self, symbol: str) -> bool:
        return symbol in self.complete

    def __repr__(self) -> str:
        return (f"Grammar(start={self.start!r}, "
                f"{len(self.productions)} productions)")
