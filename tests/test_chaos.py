"""Tests for fault injection (``repro.chaos``) and the fault-tolerant
serve machinery it exercises: the supervised worker pool, the
crash-surviving journal, and the hardened result cache."""

import json
import os
import time

import pytest

from repro import chaos
from repro.api import Config
from repro.engine import CrashLoopBreaker
from repro.engine.cache import ResultCache
from repro.obs import Tracer
from repro.serve import Deadline, ParseJournal, PoolConfig, ServerState
from repro.serve.pool import WorkerPool

FILES = {
    "include/shared.h": "#define SHARED 1\n",
    "a.c": "#include <shared.h>\nint a = SHARED;\n",
    "b.c": "int b = 2;\n",
}
INCLUDE_PATHS = ("include",)


def make_state(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    return ServerState(
        Config(files=dict(FILES), include_paths=INCLUDE_PATHS),
        **kwargs)


def parse_unit(state, unit):
    text = state.files.read(unit)
    key, _digest, members = state.unit_key(unit, text)
    record, tier = state.lookup(unit, key, members)
    if record is None:
        record = state.parse(unit, text, key, members)
    return record, tier


@pytest.fixture(autouse=True)
def no_leftover_plan():
    chaos.uninstall()
    yield
    chaos.uninstall()


# -- the harness itself ------------------------------------------------


class TestFaultPlan:
    def test_disabled_by_default(self):
        assert chaos.ACTIVE is None
        chaos.fire("anything", path="x")  # no plan: must be a no-op

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            chaos.Fault("site", "meteor-strike")

    def test_arm_fires_on_next_invocation_only(self):
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            marker = RuntimeError("boom")
            plan.arm("site", "raise", exc=marker)
            with pytest.raises(RuntimeError):
                chaos.fire("site")
            chaos.fire("site")  # consumed: fires exactly once
        assert plan.fired("raise") == 1
        assert plan.counts["site"] == 2

    def test_arm_after_skips_invocations(self):
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            plan.arm("site", "raise", after=2, exc=RuntimeError("x"))
            chaos.fire("site")
            chaos.fire("site")
            with pytest.raises(RuntimeError):
                chaos.fire("site")

    def test_sites_are_independent(self):
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            plan.arm("one", "raise", exc=RuntimeError("x"))
            chaos.fire("other")  # different site: untouched
            assert plan.fired() == 0
            with pytest.raises(RuntimeError):
                chaos.fire("one")

    def test_seeded_schedule_is_deterministic(self):
        schedules = []
        for _ in range(2):
            plan = chaos.FaultPlan(
                [chaos.Fault("s", "raise"), chaos.Fault("s", "raise")],
                seed=7, window=5)
            schedules.append([fault.at for fault in plan.pending])
        assert schedules[0] == schedules[1]

    def test_log_records_each_injection(self):
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            plan.arm("site", "worker-crash")
            request = {"op": "parse"}
            chaos.fire("site", request=request)
        assert request["_chaos"] == "crash"
        assert plan.log == [{"site": "site", "kind": "worker-crash",
                             "at": 1}]

    def test_corrupt_blob_truncates_file(self, tmp_path):
        path = tmp_path / "record.json"
        path.write_text(json.dumps({"status": "ok"}))
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            plan.arm("site", "corrupt-blob")
            chaos.fire("site", path=str(path))
        with pytest.raises(ValueError):
            json.loads(path.read_text())

    def test_enospc_raises_oserror(self):
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            plan.arm("site", "enospc")
            with pytest.raises(OSError):
                chaos.fire("site")


# -- satellite: hardened ResultCache.get -------------------------------


class TestResultCacheCorruption:
    def make_cache(self, tmp_path, tracer=None):
        return ResultCache(str(tmp_path / "cache"), "fp", tracer=tracer)

    def test_truncated_blob_is_a_miss_and_deleted(self, tmp_path):
        tracer = Tracer()
        cache = self.make_cache(tmp_path, tracer=tracer)
        cache.put("k", {"status": "ok"})
        # Hand-truncate the blob mid-JSON (a crashed writer).
        path = cache._path("k")
        with open(path, "r+b") as handle:
            handle.truncate(5)
        assert cache.get("k") is None
        assert cache.corrupt == 1
        assert not os.path.exists(path), "bad blob must be quarantined"
        assert tracer.counters["engine.result_cache.corrupt"] == 1
        # Subsequent reads are plain misses, not repeat corruption.
        assert cache.get("k") is None
        assert cache.corrupt == 1

    def test_non_dict_blob_is_a_miss(self, tmp_path):
        cache = self.make_cache(tmp_path)
        os.makedirs(cache.directory, exist_ok=True)
        with open(cache._path("k"), "w") as handle:
            handle.write('["not", "a", "record"]')
        assert cache.get("k") is None
        assert cache.corrupt == 1

    def test_binary_garbage_is_a_miss(self, tmp_path):
        cache = self.make_cache(tmp_path)
        os.makedirs(cache.directory, exist_ok=True)
        with open(cache._path("k"), "wb") as handle:
            handle.write(b"\xff\xfe\x00garbage")
        assert cache.get("k") is None
        assert cache.corrupt == 1

    def test_intact_records_still_hit(self, tmp_path):
        cache = self.make_cache(tmp_path)
        cache.put("k", {"status": "ok"})
        assert cache.get("k") == {"status": "ok"}
        assert cache.corrupt == 0


# -- the journal -------------------------------------------------------


class TestParseJournal:
    def test_roundtrip_newest_wins(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = ParseJournal(path)
        journal.append("a.c", "key1", ["a.c", "include/shared.h"], "fp1")
        journal.append("b.c", "key2", ["b.c"], None)
        journal.append("a.c", "key3", ["a.c"], "fp3")
        entries = ParseJournal(path).load()
        assert entries["a.c"]["key"] == "key3"
        assert entries["a.c"]["token_fp"] == "fp3"
        assert entries["b.c"]["token_fp"] is None
        assert entries["b.c"]["closure"] == ["b.c"]

    def test_corrupt_lines_discarded_individually(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = ParseJournal(path)
        journal.append("a.c", "key1", ["a.c"], "fp1")
        journal.append("b.c", "key2", ["b.c"], "fp2")
        with open(path, "a") as handle:
            handle.write('{"torn": tru')          # torn final append
            handle.write("\n[1, 2, 3]\n")         # wrong shape
            handle.write('{"unit": 5, "key": "x", "closure": [],'
                         ' "token_fp": null}\n')  # wrong types
        tracer = Tracer()
        loaded = ParseJournal(path, tracer=tracer)
        entries = loaded.load()
        assert set(entries) == {"a.c", "b.c"}
        assert loaded.discarded == 3
        assert tracer.counters["serve.journal.discard"] == 3

    def test_missing_file_loads_empty(self, tmp_path):
        journal = ParseJournal(str(tmp_path / "nope.jsonl"))
        assert journal.load() == {}
        assert journal.discarded == 0

    def test_compaction_preserves_live_entries(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = ParseJournal(path)
        for round_number in range(200):
            journal.append("a.c", f"key{round_number}", ["a.c"], "fp")
        assert journal.compactions >= 1
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) < 200
        entries = ParseJournal(path).load()
        assert entries["a.c"]["key"] == "key199"

    def test_append_failure_is_swallowed(self, tmp_path):
        journal = ParseJournal(str(tmp_path / "journal.jsonl"))
        plan = chaos.FaultPlan()
        with chaos.injected(plan):
            plan.arm("journal.append", "enospc")
            journal.append("a.c", "key1", ["a.c"], "fp1")  # must not raise
            journal.append("a.c", "key2", ["a.c"], "fp2")
        entries = ParseJournal(journal.path).load()
        assert entries["a.c"]["key"] == "key2"


class TestJournalResume:
    def test_restart_resumes_disk_tier(self, tmp_path):
        state = make_state(tmp_path)
        record, tier = parse_unit(state, "a.c")
        assert tier is None and record["status"] == "ok"
        # Same cache dir, fresh process-worth of state: the journal
        # must bring back the entry metadata and the first lookup must
        # short-circuit from disk, not re-parse.
        tracer = Tracer()
        resumed = make_state(tmp_path, tracer=tracer)
        assert resumed.journal_resumed == 1
        assert tracer.counters["serve.journal.resume"] == 1
        record, tier = parse_unit(resumed, "a.c")
        assert tier == "disk"
        assert resumed.parses == 0

    def test_restart_resumes_token_tier(self, tmp_path):
        state = make_state(tmp_path)
        parse_unit(state, "b.c")
        resumed = make_state(tmp_path)
        # Layout-only edit: new content digest (so no memory/disk key
        # match) but identical token fingerprint.  The resumed entry
        # has no in-memory record — it must be lazily fetched from the
        # old key's disk blob.
        resumed.files.put("b.c", "int   b /* layout */ = 2;\n")
        resumed.index.mark_dirty()
        record, tier = parse_unit(resumed, "b.c")
        assert tier == "token"
        assert resumed.parses == 0
        assert record["status"] == "ok"

    def test_no_journal_when_cache_disabled(self, tmp_path):
        state = make_state(tmp_path, use_result_cache=False)
        assert state.journal is None
        parse_unit(state, "b.c")  # must not crash without a journal

    def test_invalidation_demotion_survives_restart(self, tmp_path):
        state = make_state(tmp_path)
        parse_unit(state, "a.c")
        state.invalidate("include/shared.h",
                         text="#define SHARED 99\n")
        resumed = make_state(tmp_path)
        entry = resumed.entries.get("a.c")
        assert entry is not None and entry.key == "", \
            "restart must not resurrect a pre-edit key"


# -- the worker pool ---------------------------------------------------


def make_pool(state, **kwargs):
    kwargs.setdefault("size", 1)
    kwargs.setdefault("heartbeat_seconds", 0.1)
    pool = WorkerPool(state, PoolConfig(**kwargs))
    pool.start()
    state.executor = pool.execute
    return pool


class TestWorkerPool:
    def test_pooled_parse_matches_inline(self, tmp_path):
        state = make_state(tmp_path)
        pool = make_pool(state)
        try:
            record, _tier = parse_unit(state, "a.c")
            assert record["status"] == "ok"
            assert record["unit"] == "a.c"
            assert pool.spawns >= 1
        finally:
            pool.close()

    def test_worker_crash_recovers_same_request(self, tmp_path):
        state = make_state(tmp_path)
        pool = make_pool(state)
        try:
            plan = chaos.FaultPlan()
            with chaos.injected(plan):
                plan.arm("pool.request", "worker-crash")
                record, _tier = parse_unit(state, "a.c")
            assert record["status"] == "ok", \
                "the crashed request must be retried on a fresh worker"
            assert pool.crashes == 1
            assert pool.restarts >= 1
            assert plan.fired("worker-crash") == 1
        finally:
            pool.close()

    def test_hang_is_killed_at_deadline(self, tmp_path):
        state = make_state(tmp_path)
        pool = make_pool(state)
        try:
            plan = chaos.FaultPlan()
            with chaos.injected(plan):
                plan.arm("pool.request", "worker-hang", seconds=30.0)
                text = state.files.read("b.c")
                key, _d, members = state.unit_key("b.c", text)
                record = state.parse("b.c", text, key, members,
                                     deadline=Deadline(0.5))
            assert record["status"] == "timeout"
            # A failure record must never be published to the caches.
            fresh_record, tier = parse_unit(state, "b.c")
            assert tier is None and fresh_record["status"] == "ok"
        finally:
            pool.close()

    def test_breaker_trips_to_inline_mode(self, tmp_path):
        state = make_state(tmp_path)
        pool = make_pool(state, breaker_threshold=2,
                         breaker_cooldown=3600.0)
        try:
            plan = chaos.FaultPlan()
            with chaos.injected(plan):
                # Both the first attempt and its retry crash: two
                # consecutive worker deaths reach the threshold.
                # (after= is relative to the *current* count, so the
                # second fault must be armed one invocation later.)
                plan.arm("pool.request", "worker-crash")
                plan.arm("pool.request", "worker-crash", after=1)
                record, _tier = parse_unit(state, "a.c")
            assert record["status"] == "ok", \
                "breaker-degraded mode still answers (inline)"
            assert pool.breaker.tripped
            assert pool.inline_parses >= 1
            stats = pool.stats()
            assert stats["breaker"]["tripped"]
            assert stats["breaker"]["trips"] == 1
        finally:
            pool.close()

    def test_recycle_after_max_requests(self, tmp_path):
        state = make_state(tmp_path)
        pool = make_pool(state, max_requests=1,
                         heartbeat_seconds=0.05)
        try:
            record, _tier = parse_unit(state, "b.c")
            assert record["status"] == "ok"
            deadline = Deadline(5.0)
            while pool.recycles == 0 and not deadline.expired():
                time.sleep(0.02)
            assert pool.recycles >= 1
            # The replacement still serves.
            text = state.files.read("b.c")
            key, _digest, members = state.unit_key("b.c", text)
            record = state.parse("b.c", text, key, members)
            assert record["status"] == "ok"
        finally:
            pool.close()

    def test_close_reaps_children(self, tmp_path):
        state = make_state(tmp_path)
        pool = make_pool(state, size=2)
        pids = [worker.pid for worker in pool._workers]
        assert pids
        pool.close()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: no such process


class TestCrashLoopBreaker:
    def test_trips_exactly_at_threshold(self):
        breaker = CrashLoopBreaker(3)
        assert not breaker.failure()
        assert not breaker.failure()
        assert breaker.failure(), "third consecutive failure trips"
        assert breaker.tripped and breaker.trips == 1
        assert not breaker.failure(), "already tripped: no re-trip"

    def test_success_resets_streak(self):
        breaker = CrashLoopBreaker(2)
        breaker.failure()
        breaker.success()
        assert not breaker.failure(), "streak was reset"
        assert not breaker.tripped

    def test_reset_reopens(self):
        breaker = CrashLoopBreaker(1)
        assert breaker.failure()
        breaker.reset()
        assert not breaker.tripped
        assert breaker.failure(), "half-open probe can re-trip"
        assert breaker.trips == 2

    def test_zero_threshold_disables(self):
        breaker = CrashLoopBreaker(0)
        for _ in range(10):
            assert not breaker.failure()
        assert not breaker.tripped
