"""Unit tests for Algorithm 1 (hoisting static conditionals)."""

import pytest

from repro.bdd import BDDManager
from repro.cpp.hoist import branch_count, hoist, unhoist
from repro.cpp.tree import Conditional
from repro.lexer import lex
from repro.lexer.tokens import TokenKind


@pytest.fixture()
def mgr():
    return BDDManager()


def toks(text):
    return [t for t in lex(text)
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


def branch_texts(branches):
    return sorted((cond.to_expr_string(), [t.text for t in tokens])
                  for cond, tokens in branches)


class TestFlatInput:
    def test_tokens_only_single_branch(self, mgr):
        branches = hoist(mgr.true, toks("a b c"))
        assert len(branches) == 1
        cond, tokens = branches[0]
        assert cond.is_true()
        assert [t.text for t in tokens] == ["a", "b", "c"]

    def test_empty_input(self, mgr):
        branches = hoist(mgr.true, [])
        assert len(branches) == 1
        assert branches[0][0].is_true()
        assert branches[0][1] == []

    def test_enclosing_condition_preserved(self, mgr):
        a = mgr.var("A")
        branches = hoist(a, toks("x"))
        assert branches[0][0] is a


class TestSingleConditional:
    def test_two_branches(self, mgr):
        a = mgr.var("A")
        cond = Conditional([(a, toks("x")), (~a, toks("y"))])
        branches = hoist(mgr.true, [cond])
        assert branch_texts(branches) == [("!A", ["y"]), ("A", ["x"])]

    def test_implicit_else_materialized(self, mgr):
        a = mgr.var("A")
        cond = Conditional([(a, toks("x"))])
        branches = hoist(mgr.true, [cond])
        assert branch_texts(branches) == [("!A", []), ("A", ["x"])]

    def test_surrounding_tokens_duplicated(self, mgr):
        # The paper's Figure 4b: (val) is duplicated into each branch.
        a = mgr.var("K")
        cond = Conditional([(a, toks("f")), (~a, toks("g"))])
        items = cond, *toks("( val )")
        branches = hoist(mgr.true, list(items))
        assert branch_texts(branches) == [
            ("!K", ["g", "(", "val", ")"]),
            ("K", ["f", "(", "val", ")"]),
        ]

    def test_infeasible_combination_dropped(self, mgr):
        a = mgr.var("A")
        # Outer condition A, inner branch on !A: infeasible.
        cond = Conditional([(~a, toks("dead")), (a, toks("live"))])
        branches = hoist(a, [cond])
        assert branch_texts(branches) == [("A", ["live"])]


class TestNestedConditionals:
    def test_nested_cross_product(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        inner = Conditional([(b, toks("i")), (~b, toks("j"))])
        outer = Conditional([(a, [toks("x")[0], inner]), (~a, toks("y"))])
        branches = hoist(mgr.true, [outer])
        assert branch_texts(branches) == [
            ("!A", ["y"]),
            ("A && !B", ["x", "j"]),
            ("A && B", ["x", "i"]),
        ]

    def test_sequential_conditionals_multiply(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        one = Conditional([(a, toks("p"))])
        two = Conditional([(b, toks("q"))])
        branches = hoist(mgr.true, [one, two])
        assert len(branches) == 4
        rebuilt = mgr.false
        for cond, _tokens in branches:
            rebuilt = rebuilt | cond
        assert rebuilt.is_true()

    def test_branch_count_estimate(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        one = Conditional([(a, toks("p"))])
        two = Conditional([(b, toks("q"))])
        assert branch_count([one, two], mgr.true) == 4
        assert branch_count(toks("a b"), mgr.true) == 1


class TestInvariants:
    def test_partition(self, mgr):
        """Branch conditions are disjoint and cover the input condition."""
        a, b = mgr.var("A"), mgr.var("B")
        inner = Conditional([(b, toks("i"))])
        outer = Conditional([(a, [inner]), (~a, toks("y"))])
        enclosing = mgr.var("C")
        branches = hoist(enclosing, [outer, *toks("tail")])
        union = mgr.false
        for i, (cond_i, _) in enumerate(branches):
            assert not cond_i.is_false()
            for cond_j, _ in branches[i + 1:]:
                assert (cond_i & cond_j).is_false()
            union = union | cond_i
        assert union is enclosing

    def test_flat_branches(self, mgr):
        a, b = mgr.var("A"), mgr.var("B")
        inner = Conditional([(b, toks("i"))])
        outer = Conditional([(a, [inner])])
        from repro.lexer.tokens import Token
        for _cond, tokens in hoist(mgr.true, [outer]):
            assert all(isinstance(t, Token) for t in tokens)

    def test_projection_equivalence(self, mgr):
        """Per-configuration token sequences are unchanged by hoisting."""
        from repro.cpp.tree import project
        a, b = mgr.var("A"), mgr.var("B")
        inner = Conditional([(b, toks("i")), (~b, toks("j"))])
        tree = [*toks("head"), Conditional([(a, [inner])]), *toks("tail")]
        branches = hoist(mgr.true, tree)
        for assign in ({"A": x, "B": y} for x in (False, True)
                       for y in (False, True)):
            expected = [t.text for t in project(tree, assign)]
            selected = [
                [t.text for t in tokens]
                for cond, tokens in branches if cond.evaluate(assign)]
            assert len(selected) == 1
            assert selected[0] == expected


class TestUnhoist:
    def test_single_branch_splices(self, mgr):
        items = unhoist([(mgr.true, toks("a b"))])
        assert [t.text for t in items] == ["a", "b"]

    def test_multiple_branches_make_conditional(self, mgr):
        a = mgr.var("A")
        items = unhoist([(a, toks("x")), (~a, toks("y"))])
        assert len(items) == 1
        assert isinstance(items[0], Conditional)

    def test_false_branches_dropped(self, mgr):
        items = unhoist([(mgr.false, toks("x")), (mgr.true, toks("y"))])
        assert [t.text for t in items] == ["y"]
