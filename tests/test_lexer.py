"""Unit tests for the C lexer."""

import pytest

from repro.lexer import LexerError, TokenKind, lex, lex_logical_lines, \
    render_tokens


def kinds(text):
    return [t.kind for t in lex(text) if t.kind is not TokenKind.EOF]


def texts(text):
    return [t.text for t in lex(text)
            if t.kind not in (TokenKind.EOF, TokenKind.NEWLINE)]


class TestBasics:
    def test_empty_input(self):
        tokens = lex("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = [t for t in lex("foo_bar2") if t.kind is TokenKind.IDENTIFIER]
        assert tok.text == "foo_bar2"

    def test_keywords_are_identifiers(self):
        assert kinds("if else while")[:3] == [TokenKind.IDENTIFIER] * 3

    def test_simple_declaration(self):
        assert texts("int x = 42;") == ["int", "x", "=", "42", ";"]

    def test_newline_tokens(self):
        assert kinds("a\nb") == [TokenKind.IDENTIFIER, TokenKind.NEWLINE,
                                 TokenKind.IDENTIFIER]


class TestNumbers:
    @pytest.mark.parametrize("literal", [
        "42", "0x1F", "0755", "3.14", "1e10", "1E-5", "0x1p+4",
        "42UL", "1.5f", ".5", "123abc",  # pp-number is permissive
    ])
    def test_pp_numbers(self, literal):
        tokens = [t for t in lex(literal) if t.kind is TokenKind.NUMBER]
        assert len(tokens) == 1
        assert tokens[0].text == literal

    def test_number_then_op(self):
        assert texts("1+2") == ["1", "+", "2"]

    def test_exponent_sign_consumed(self):
        assert texts("1e+5+x") == ["1e+5", "+", "x"]


class TestLiterals:
    def test_string(self):
        (tok,) = [t for t in lex('"hello world"')
                  if t.kind is TokenKind.STRING]
        assert tok.text == '"hello world"'

    def test_string_with_escapes(self):
        (tok,) = [t for t in lex(r'"a\"b\\c"') if t.kind is TokenKind.STRING]
        assert tok.text == r'"a\"b\\c"'

    def test_char(self):
        (tok,) = [t for t in lex("'x'") if t.kind is TokenKind.CHARACTER]
        assert tok.text == "'x'"

    def test_char_escape(self):
        (tok,) = [t for t in lex(r"'\n'") if t.kind is TokenKind.CHARACTER]
        assert tok.text == r"'\n'"

    def test_wide_string(self):
        (tok,) = [t for t in lex('L"wide"') if t.kind is TokenKind.STRING]
        assert tok.text == 'L"wide"'

    def test_wide_char(self):
        (tok,) = [t for t in lex("L'w'") if t.kind is TokenKind.CHARACTER]
        assert tok.text == "L'w'"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            lex('"oops')

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexerError):
            lex("/* never closed")


class TestPunctuators:
    def test_three_char(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("f(x, ...)") == ["f", "(", "x", ",", "...", ")"]

    def test_maximal_munch(self):
        assert texts("a+++b") == ["a", "++", "+", "b"]
        assert texts("a->b") == ["a", "->", "b"]

    def test_hash_kinds(self):
        tokens = lex("# ##")
        assert tokens[0].kind is TokenKind.HASH
        assert tokens[1].kind is TokenKind.HASHHASH


class TestLayout:
    def test_layout_attached(self):
        tokens = lex("a  /* c */ b")
        b = [t for t in tokens if t.text == "b"][0]
        assert b.layout == "  /* c */ "
        assert b.has_space_before

    def test_line_comment_is_layout(self):
        lines = lex_logical_lines("a // comment\nb")
        assert [t.text for t in lines[0]] == ["a"]

    def test_roundtrip_with_layout(self):
        source = "int  main ( void ) { /*x*/ return 0 ; }"
        assert render_tokens(lex(source)) == source

    def test_render_without_layout_inserts_needed_spaces(self):
        rendered = render_tokens(lex("int x"), with_layout=False)
        assert rendered == "int x"

    def test_render_avoids_accidental_glue(self):
        tokens = lex("a + +b")
        rendered = render_tokens(tokens, with_layout=False)
        assert "++" not in rendered


class TestContinuations:
    def test_spliced_identifier(self):
        assert texts("fo\\\no") == ["foo"]

    def test_spliced_directive_line(self):
        lines = lex_logical_lines("#define X \\\n 42\nY")
        assert [t.text for t in lines[0]] == ["#", "define", "X", "42"]
        assert [t.text for t in lines[1]] == ["Y"]

    def test_line_numbers_after_splice(self):
        lines = lex_logical_lines("a \\\n b\nc")
        c = lines[1][0]
        assert c.text == "c"
        assert c.line == 3


class TestPositions:
    def test_line_and_col(self):
        tokens = [t for t in lex("a\n  b")
                  if t.kind is TokenKind.IDENTIFIER]
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_filename_recorded(self):
        (tok,) = [t for t in lex("x", filename="f.c")
                  if t.kind is TokenKind.IDENTIFIER]
        assert tok.file == "f.c"


class TestLogicalLines:
    def test_grouping(self):
        lines = lex_logical_lines("a b\n\nc")
        assert [[t.text for t in line] for line in lines] == \
            [["a", "b"], [], ["c"]]

    def test_directive_line(self):
        lines = lex_logical_lines("#ifdef X\nint a;\n#endif")
        assert lines[0][0].kind is TokenKind.HASH
        assert [t.text for t in lines[0]] == ["#", "ifdef", "X"]
