"""C grammar coverage: single-configuration parses of C constructs.

Uses the plain LR engine with the conditional symbol table in
single-configuration mode (the lexer hack), exercising the breadth of
the grammar: declarations, declarators, statements, expressions,
typedefs, GNU extensions.
"""

import pytest

from repro.bdd import BDDManager
from repro.cgrammar import c_tables, classify, make_context_factory
from repro.lexer import lex
from repro.lexer.tokens import TokenKind
from repro.parser import LRParser, ParseError


@pytest.fixture(scope="module")
def parser():
    manager = BDDManager()
    factory = make_context_factory(manager)
    return LRParser(c_tables(), classify, context_factory=factory,
                    condition=manager.true)


def parse(parser, source):
    tokens = [t for t in lex(source)
              if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
    return parser.parse(tokens)


GOOD = [
    # declarations
    "int x;",
    "int x, y, z;",
    "int x = 5;",
    "unsigned long long big;",
    "static const char *msg = \"hi\";",
    "extern int errno;",
    "char buf[256];",
    "int matrix[4][4];",
    "int *p, **pp, ***ppp;",
    "int (*fp)(int, char *);",
    "int (*handlers[8])(void);",
    "void (*signal(int, void (*)(int)))(int);",
    "volatile int *const ptr;",
    "int f(void);",
    "int g(int, float, char *);",
    "int h(int argc, char *argv[]);",
    "int variadic(const char *fmt, ...);",
    "long factorial(int n);",
    ";",
    # typedefs and their use
    "typedef int myint; myint v;",
    "typedef unsigned long size_t; size_t n = 0;",
    "typedef int pair[2]; pair p;",
    "typedef int (*callback)(void); callback cb;",
    "typedef struct node { int v; struct node *next; } node_t; "
    "node_t *head;",
    "typedef int T; T f(T x);",
    "typedef char c_t; struct c_t { int x; };",  # tag namespace
    # struct / union / enum
    "struct point { int x; int y; };",
    "struct empty_tagless;",
    "union u { int i; float f; char bytes[4]; };",
    "struct flags { unsigned a : 1; unsigned b : 2; unsigned : 5; };",
    "enum color { RED, GREEN, BLUE };",
    "enum state { OK = 0, FAIL = -1, };",
    "enum tag; struct s { enum tag *t; };",
    "struct outer { struct inner { int x; } in; };",
    # initializers
    "int a[] = { 1, 2, 3 };",
    "int b[4] = { 0 };",
    "struct point pt = { 1, 2 };",
    "struct point pt2 = { .x = 1, .y = 2 };",
    "int c[8] = { [0] = 1, [7] = 2 };",
    "char s[] = \"hello\" \" \" \"world\";",
    "int nested[2][2] = { { 1, 2 }, { 3, 4 } };",
    # functions and statements
    "int main(void) { return 0; }",
    "void nop(void) { }",
    "int sum(int n) { int s = 0; while (n) s += n--; return s; }",
    "void loops(void) { for (;;) break; do ; while (0); }",
    "void f(void) { int i; for (i = 0; i < 9; i++) continue; }",
    "void g(void) { if (1) ; else ; }",
    "void dangling(void) { if (1) if (2) ; else ; }",
    "void sw(int v) { switch (v) { case 1: break; default: break; } }",
    "void labels(void) { start: goto start; }",
    "void decls(void) { int x = 1; { int y = x; y++; } }",
    "void c99for(void) { for (int i = 0; i < 3; i++) ; }",
    # expressions
    "int e1 = 1 + 2 * 3 - 4 / 2 % 3;",
    "int e2 = (1 << 4) | (256 >> 2) & 0xFF ^ 7;",
    "int e3 = 1 < 2 && 3 >= 2 || !0;",
    "int e4 = 5 ? 6 : 7;",
    "int e5 = sizeof(int);",
    "int e6 = sizeof e5;",
    "long e7 = (long)42;",
    "int e8 = ~0;",
    "void calls(void) { f(); g(1, 2, 3); }",
    "void members(void) { struct point p; p.x = p.y; }",
    "void arrows(void) { struct point *p; p->x = 1; }",
    "void idx(void) { int a[3]; a[0] = a[1] + a[2]; }",
    "void incs(void) { int i = 0; i++; ++i; i--; --i; }",
    "void addr(void) { int x; int *p = &x; *p = 7; }",
    "void assignops(void) { int x = 1; x += 2; x <<= 1; x |= 4; }",
    "void commas(void) { int x, y; x = (y = 1, y + 1); }",
    "void ternary_chain(void) { int r = 1 ? 2 : 3 ? 4 : 5; }",
    "int str_sub = sizeof(\"abc\");",
    "char chr = 'x';",
    "void casts(void) { void *v = 0; int *ip = (int *)v; }",
    "void compound_lit(void) { struct point p = (struct point){1, 2}; }",
    # GNU extensions
    "static inline int fast(int x) { return x; }",
    "int aligned_var __attribute__((aligned(16)));",
    "struct packed_s { char c; int i; } __attribute__((packed)) pk;",
    "void noret(void) __attribute__((noreturn));",
    "int stmt_expr(void) { return ({ int t = 1; t + 1; }); }",
    "void asms(void) { asm(\"nop\"); }",
    "void asmio(int x) { asm(\"mov %0, %1\" : \"=r\"(x) : \"r\"(x)); }",
    "typedef int word; word w2 = (word)1;",
    "void elvis(void) { int x = 1; int y = x ?: 2; }",
    "void lbladdr(void) { here: ; void *p = &&here; goto *p; }",
    "__extension__ typedef unsigned long long u64; u64 v64;",
    "void typeofdecl(void) { int x = 1; typeof(x) y = x; }",
    "typeof(int) z1;",
    "typeof(unsigned long *) z2;",
    "void ranges(int v) { switch (v) { case 1 ... 5: break; } }",
    "struct off_s { int a; struct { int b; } in; };\n"
    "int off = __builtin_offsetof(struct off_s, in.b);",
    "int off2 = __builtin_offsetof(struct off_s, a);",
    "void locallbl(void) { __label__ out; out: return; }",
    "__thread int per_thread_counter;",
    "_Complex double cplx;",
    "float _Complex cplx2;",
]


@pytest.mark.parametrize("source", GOOD, ids=range(len(GOOD)))
def test_parses(parser, source):
    # A fresh parser per case would be slow; shared module parser keeps
    # typedefs registered across cases, so each case declares its own.
    manager = BDDManager()
    factory = make_context_factory(manager)
    fresh = LRParser(c_tables(), classify, context_factory=factory,
                     condition=manager.true)
    value = parse(fresh, source)
    assert value is not None


BAD = [
    "int",
    "int x",
    "x = 5;",          # no specifiers at file scope... (decl required)
    "int 5;",
    "struct { int; };" ,
    "void f() { return }",
    "void f() { if (1 }",
    "int a[;",
    "void f() { case 1: ; }"[:-3] + "}",  # case outside switch parses ok
]


@pytest.mark.parametrize("source", ["int", "int x", "int 5;",
                                    "void f() { return }",
                                    "void f() { if (1 }",
                                    "int a[;"])
def test_rejects(source):
    manager = BDDManager()
    factory = make_context_factory(manager)
    fresh = LRParser(c_tables(), classify, context_factory=factory,
                     condition=manager.true)
    with pytest.raises(ParseError):
        parse(fresh, source)


class TestTypedefDisambiguation:
    def make(self):
        manager = BDDManager()
        factory = make_context_factory(manager)
        return LRParser(c_tables(), classify, context_factory=factory,
                        condition=manager.true)

    def test_t_star_p_as_declaration(self):
        # `T * p;` declares p as pointer-to-T when T is a typedef.
        value = parse(self.make(), "typedef int T; void f(void) { T *p; }")
        assert value is not None

    def test_t_star_p_as_expression(self):
        # ...and multiplies when T is a variable.
        value = parse(self.make(),
                      "void f(void) { int T, p; T * p; }")
        assert value is not None

    def test_cast_with_typedef(self):
        value = parse(self.make(),
                      "typedef long big; int x = (big)1 + 2;")
        assert value is not None

    def test_typedef_in_params(self):
        value = parse(self.make(),
                      "typedef int T; int f(T a, T b);")
        assert value is not None

    def test_sizeof_typedef(self):
        value = parse(self.make(),
                      "typedef struct { int a; } S; int n = sizeof(S);")
        assert value is not None
