"""Unit tests for #if expression parsing, evaluation, and BDD
conversion (§3.2)."""

import pytest

from repro.bdd import BDDManager
from repro.cpp.conditions import (ConditionConverter, defined_var,
                                  expr_var, value_var)
from repro.cpp.expression import (ExprError, collect_identifiers,
                                  evaluate_int, parse_char, parse_expression,
                                  parse_int)
from repro.lexer import lex
from repro.lexer.tokens import TokenKind


def parse(text):
    return parse_expression(
        [t for t in lex(text)
         if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)])


def ev(text, defined=(), values=None):
    values = values or {}
    return evaluate_int(parse(text),
                        is_defined=lambda n: n in defined,
                        value_of=lambda n: values.get(n, 0))


class TestIntLiterals:
    @pytest.mark.parametrize("text,value", [
        ("42", 42), ("0x1F", 31), ("010", 8), ("0", 0),
        ("42L", 42), ("0xFFUL", 255), ("1u", 1),
    ])
    def test_parse_int(self, text, value):
        assert parse_int(text) == value

    def test_bad_int(self):
        with pytest.raises(ExprError):
            parse_int("12abc")

    @pytest.mark.parametrize("text,value", [
        ("'a'", 97), ("'\\n'", 10), ("'\\0'", 0), ("'\\x41'", 65),
        ("L'a'", 97), ("'\\101'", 65),
    ])
    def test_parse_char(self, text, value):
        assert parse_char(text) == value


class TestEvaluation:
    @pytest.mark.parametrize("text,value", [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("10 / 3", 3),
        ("-7 / 2", -3),        # C truncates toward zero
        ("-7 % 2", -1),
        ("1 << 4", 16),
        ("255 >> 4", 15),
        ("5 & 3", 1),
        ("5 | 3", 7),
        ("5 ^ 3", 6),
        ("!0", 1),
        ("!5", 0),
        ("~0", -1),
        ("-(3)", -3),
        ("+3", 3),
        ("1 < 2", 1),
        ("2 <= 2", 1),
        ("3 > 4", 0),
        ("3 >= 3", 1),
        ("1 == 1", 1),
        ("1 != 1", 0),
        ("1 && 0", 0),
        ("1 || 0", 1),
        ("1 ? 10 : 20", 10),
        ("0 ? 10 : 20", 20),
        ("'A' == 65", 1),
    ])
    def test_arithmetic(self, text, value):
        assert ev(text) == value

    def test_undefined_identifier_is_zero(self):
        assert ev("FOO") == 0
        assert ev("FOO + 1") == 1

    def test_identifier_values(self):
        assert ev("N > 4", values={"N": 8}) == 1

    def test_defined_forms(self):
        assert ev("defined(X)", defined={"X"}) == 1
        assert ev("defined X", defined={"X"}) == 1
        assert ev("defined(X)") == 0
        assert ev("!defined(X) && defined(Y)", defined={"Y"}) == 1

    def test_short_circuit_avoids_division(self):
        assert ev("0 && (1 / 0)") == 0
        assert ev("1 || (1 / 0)") == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(ExprError):
            ev("1 / 0")
        with pytest.raises(ExprError):
            ev("1 % 0")

    def test_precedence_chain(self):
        assert ev("1 | 2 ^ 3 & 4") == (1 | (2 ^ (3 & 4)))
        assert ev("1 + 2 << 3") == ((1 + 2) << 3)


class TestParserErrors:
    @pytest.mark.parametrize("text", [
        "", "1 +", "(1", "1)", "defined", "defined(1)", "? 1 : 2",
        "1 ? 2", ";",
    ])
    def test_malformed(self, text):
        with pytest.raises(ExprError):
            parse(text)

    def test_collect_identifiers(self):
        expr = parse("A && defined(B) || C + A")
        assert sorted(collect_identifiers(expr)) == ["A", "A", "C"]


class TestBDDConversion:
    @pytest.fixture()
    def mgr(self):
        return BDDManager()

    def convert(self, mgr, text, defined_map=None, guards=()):
        defined_map = defined_map or {}

        def defined_condition(name):
            return defined_map.get(name)

        converter = ConditionConverter(
            mgr, defined_condition,
            is_guard=lambda name: name in guards)
        return converter, converter.to_bdd(parse(text))

    def test_constants(self, mgr):
        assert self.convert(mgr, "0")[1].is_false()
        assert self.convert(mgr, "1")[1].is_true()
        assert self.convert(mgr, "42")[1].is_true()

    def test_defined_free_macro(self, mgr):
        _, bdd = self.convert(mgr, "defined(CONFIG_X)")
        assert bdd is mgr.var(defined_var("CONFIG_X"))

    def test_defined_guard_macro_is_false(self, mgr):
        _, bdd = self.convert(mgr, "defined(FOO_H)", guards={"FOO_H"})
        assert bdd.is_false()

    def test_defined_known_macro_uses_table_condition(self, mgr):
        a = mgr.var("A")
        _, bdd = self.convert(mgr, "defined(M)", defined_map={"M": a})
        assert bdd is a

    def test_negation_conjunction(self, mgr):
        _, bdd = self.convert(mgr, "!defined(A) && defined(B)")
        expected = ~mgr.var(defined_var("A")) & mgr.var(defined_var("B"))
        assert bdd is expected

    def test_free_macro_in_boolean_position(self, mgr):
        _, bdd = self.convert(mgr, "CONFIG_N")
        assert bdd is mgr.var(value_var("CONFIG_N"))

    def test_arithmetic_subexpression_is_opaque(self, mgr):
        """NR_CPUS < 256 cannot be decided: it becomes one variable."""
        _, bdd = self.convert(mgr, "NR_CPUS < 256")
        assert bdd is mgr.var(expr_var("NR_CPUS<256"))

    def test_same_text_same_variable(self, mgr):
        _, one = self.convert(mgr, "NR_CPUS < 256")
        _, two = self.convert(mgr, "NR_CPUS  <  256")  # spacing ignored
        assert one is two

    def test_non_boolean_counted(self, mgr):
        converter, _ = self.convert(mgr, "NR_CPUS < 256 && defined(A)")
        assert converter.non_boolean_count == 1

    def test_paper_bits_per_long_example(self, mgr):
        """§3.2: BITS_PER_LONG == 32 hoisted over Figure 2's macro
        simplifies to !defined(CONFIG_64BIT) after constant folding."""
        c64 = mgr.var(defined_var("CONFIG_64BIT"))
        _, left = self.convert(mgr, "64 == 32")
        _, right = self.convert(mgr, "32 == 32")
        combined = (c64 & left) | (~c64 & right)
        assert combined is ~c64

    def test_constant_folding_in_branches(self, mgr):
        _, bdd = self.convert(mgr, "1 ? 1 : NR")
        assert bdd.is_true()

    def test_ternary_boolean(self, mgr):
        _, bdd = self.convert(mgr, "defined(A) ? defined(B) : defined(C)")
        a, b, c = (mgr.var(defined_var(n)) for n in "ABC")
        assert bdd is ((a & b) | (~a & c))

    def test_comparison_of_bool_to_constant(self, mgr):
        _, bdd = self.convert(mgr, "defined(A) == 0")
        assert bdd is ~mgr.var(defined_var("A"))

    def test_opaque_preserves_order_not_folded(self, mgr):
        """Non-boolean subexpressions are never combined or decided."""
        _, one = self.convert(mgr, "N + 1 > 2")
        _, two = self.convert(mgr, "N > 1")  # arithmetically equal-ish
        assert one is not two
