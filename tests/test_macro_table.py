"""Unit tests for the conditional macro table."""

import pytest

from repro.bdd import BDDManager
from repro.cpp.macro_table import (FREE, UNDEFINED, MacroDefinition,
                                   MacroTable)
from repro.lexer import lex
from repro.lexer.tokens import TokenKind


@pytest.fixture()
def mgr():
    return BDDManager()


@pytest.fixture()
def table(mgr):
    return MacroTable(mgr)


def definition(name, body_text="1"):
    body = [t for t in lex(body_text)
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
    return MacroDefinition(name, body)


class TestBasicLookup:
    def test_unknown_name_is_free(self, table, mgr):
        entries = table.lookup("NEVER_SEEN", mgr.true)
        assert entries == [(mgr.true, FREE)]

    def test_unconditional_define(self, table, mgr):
        d = definition("X")
        table.define(d, mgr.true)
        entries = table.lookup("X", mgr.true)
        assert entries == [(mgr.true, d)]

    def test_undefine_shadows_define(self, table, mgr):
        table.define(definition("X"), mgr.true)
        table.undefine("X", mgr.true)
        entries = table.lookup("X", mgr.true)
        assert len(entries) == 1
        assert entries[0][1] is UNDEFINED

    def test_redefine_shadows(self, table, mgr):
        first = definition("X", "1")
        second = definition("X", "2")
        table.define(first, mgr.true)
        table.define(second, mgr.true)
        entries = table.lookup("X", mgr.true)
        assert entries == [(mgr.true, second)]
        assert table.redefinition_count == 1

    def test_lookup_under_false_is_empty(self, table, mgr):
        assert table.lookup("X", mgr.false) == []

    def test_define_under_false_is_noop(self, table, mgr):
        version = table.version
        table.define(definition("X"), mgr.false)
        assert table.version == version
        assert table.lookup("X", mgr.true) == [(mgr.true, FREE)]


class TestConditionalEntries:
    def test_multiply_defined(self, table, mgr):
        """Figure 2: BITS_PER_LONG defined 64 under CONFIG_64BIT else 32."""
        c64 = mgr.var("defined:CONFIG_64BIT")
        d64 = definition("BITS_PER_LONG", "64")
        d32 = definition("BITS_PER_LONG", "32")
        table.define(d64, c64)
        table.define(d32, ~c64)
        entries = dict(
            (entry, cond)
            for cond, entry in table.lookup("BITS_PER_LONG", mgr.true))
        assert entries[d64] is c64
        assert entries[d32] is ~c64

    def test_partial_define_leaves_free_remainder(self, table, mgr):
        a = mgr.var("A")
        d = definition("X")
        table.define(d, a)
        entries = table.lookup("X", mgr.true)
        assert (a, d) in entries
        assert (~a, FREE) in entries

    def test_lookup_narrowed_by_condition(self, table, mgr):
        a = mgr.var("A")
        d = definition("X")
        table.define(d, a)
        assert table.lookup("X", a) == [(a, d)]
        assert table.lookup("X", ~a) == [(~a, FREE)]

    def test_infeasible_entries_trimmed(self, table, mgr):
        a = mgr.var("A")
        table.define(definition("X", "1"), a)
        table.define(definition("X", "2"), ~a)
        before = table.trimmed_count
        entries = table.lookup("X", a)
        assert len(entries) == 1
        assert table.trimmed_count > before

    def test_later_define_shadows_overlap_only(self, table, mgr):
        a = mgr.var("A")
        first = definition("X", "1")
        second = definition("X", "2")
        table.define(first, mgr.true)
        table.define(second, a)
        entries = dict((entry, cond)
                       for cond, entry in table.lookup("X", mgr.true))
        assert entries[second] is a
        assert entries[first] is ~a

    def test_conditional_undef(self, table, mgr):
        a = mgr.var("A")
        d = definition("X")
        table.define(d, mgr.true)
        table.undefine("X", a)
        entries = dict((repr(entry), cond)
                       for cond, entry in table.lookup("X", mgr.true))
        assert entries["UNDEFINED"] is a
        assert entries[repr(d)] is ~a


class TestVersioning:
    def test_lookup_at_old_version(self, table, mgr):
        first = definition("X", "1")
        version_after_first = table.define(first, mgr.true)
        second = definition("X", "2")
        table.define(second, mgr.true)
        assert table.lookup("X", mgr.true, version_after_first) == \
            [(mgr.true, first)]
        assert table.lookup("X", mgr.true) == [(mgr.true, second)]

    def test_version_zero_sees_nothing(self, table, mgr):
        table.define(definition("X"), mgr.true)
        assert table.lookup("X", mgr.true, 0) == [(mgr.true, FREE)]


class TestHelpers:
    def test_is_free(self, table, mgr):
        a = mgr.var("A")
        assert table.is_free("X", mgr.true)
        table.define(definition("X"), a)
        assert not table.is_free("X", mgr.true)
        assert table.is_free("X", ~a)

    def test_defined_condition(self, table, mgr):
        a = mgr.var("A")
        table.define(definition("X"), a)
        assert table.defined_condition("X", mgr.true) is a
        table.undefine("X", mgr.true)
        assert table.defined_condition("X", mgr.true).is_false()

    def test_builtin(self, table, mgr):
        table.define_builtin("__STDC__", "1")
        ((cond, entry),) = table.lookup("__STDC__", mgr.true)
        assert entry.is_builtin
        assert [t.text for t in entry.body] == ["1"]

    def test_known_names(self, table, mgr):
        table.define(definition("B"), mgr.true)
        table.define(definition("A"), mgr.true)
        assert table.known_names() == ["A", "B"]

    def test_function_like_definition(self):
        body = [t for t in lex("x + x")
                if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]
        d = MacroDefinition("DOUBLE", body, params=["x"])
        assert d.is_function_like
        assert not definition("X").is_function_like

    def test_same_definition(self):
        assert definition("X", "a b").same_definition(definition("X", "a b"))
        assert not definition("X", "a").same_definition(
            definition("X", "b"))
        d1 = MacroDefinition("F", [], params=["x"])
        d2 = MacroDefinition("F", [], params=["y"])
        assert not d1.same_definition(d2)
        assert not d1.same_definition(definition("F", ""))
