#!/usr/bin/env python3
"""A configuration-aware bug finder: undeclared identifiers.

The bug class that motivates variability-aware analysis: a declaration
guarded by ``#ifdef CONFIG_FOO`` with a use that is not.  The code
compiles fine in the developer's configuration and breaks someone
else's build.  A per-configuration tool needs 2^n compiles to notice;
one configuration-preserving parse plus BDD algebra finds it directly,
*and names the exact broken configurations*.

Run:  python examples/config_bug_finder.py
"""

from repro.analysis import find_undeclared
from repro.superc import parse_c

SOURCE = '''\
#ifdef CONFIG_HOTPLUG
static int hotplug_slots;
int hotplug_prepare(void);
#endif

#ifdef CONFIG_PM
static int pm_state;
#endif

int bring_up(void)
{
    int ready = 0;

    /* BUG: hotplug_slots is only declared under CONFIG_HOTPLUG. */
    ready += hotplug_slots;

#ifdef CONFIG_PM
    ready += pm_state;              /* fine: matching condition */
#endif

#if defined(CONFIG_PM) && !defined(CONFIG_HOTPLUG)
    /* BUG: calls a function that only exists under CONFIG_HOTPLUG. */
    ready += hotplug_prepare();
#endif

    return ready;
}
'''


def main() -> None:
    result = parse_c(SOURCE)
    assert result.ok
    findings = find_undeclared(result.ast, result.unit.manager)

    print(f"analyzed 1 compilation unit; {len(findings)} "
          "configuration-dependent problem(s):\n")
    for finding in findings:
        token = finding.token
        print(f"{token.file}:{token.line}: {finding.name!r} "
              f"({finding.kind})")
        print("    undeclared when: "
              f"{finding.condition.to_expr_string()}")
        sample = finding.condition.one_sat()
        if sample:
            enabled = [name.split(":", 1)[1]
                       for name, value in sample.items() if value]
            disabled = [name.split(":", 1)[1]
                        for name, value in sample.items() if not value]
            parts = [f"{v}=y" for v in enabled] + \
                [f"{v}=n" for v in disabled]
            print(f"    example broken config: {', '.join(parts)}")
        print()

    print("note: both bugs are invisible to a compiler run under the "
          "developer's\nusual config (CONFIG_HOTPLUG=y) — and to "
          "allyesconfig, which also\nenables CONFIG_HOTPLUG.")


if __name__ == "__main__":
    main()
