"""JSON-lines progress/metrics stream for batch runs.

Every engine run emits a stream of flat JSON objects — one per event —
suitable for tailing during a long corpus run, for dashboards, and for
benchmark post-processing:

* ``{"event": "run-start", "units": N, "workers": W, ...}``
* ``{"event": "unit", "unit": ..., "status": ..., "attempt": ...,
  "cache": "hit"|"miss", "seconds": ..., "timing": {...},
  "subparsers": {...}, "profile": {...}|None}`` — one per attempt per
  unit (``profile`` is the :mod:`repro.obs` per-unit summary when the
  run profiles);
* ``{"event": "run-end", "summary": {...}}`` — the summary carries a
  corpus-wide ``profile`` rollup on profiled runs.

Sinks are pluggable: a file path (line-buffered append), a writable
file object, or any callable taking the event dict.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, List, Optional, Union

STREAM_SCHEMA_VERSION = 1


class MetricsStream:
    """Serializes engine events as JSON lines to an optional sink."""

    def __init__(self, sink: Union[None, str, Callable[[dict], Any],
                                   Any] = None,
                 keep_events: bool = False):
        self._handle = None
        self._owns_handle = False
        self._callable: Optional[Callable[[dict], Any]] = None
        self.events: Optional[List[dict]] = [] if keep_events else None
        if sink is None:
            pass
        elif isinstance(sink, str):
            self._handle = open(sink, "a", encoding="utf-8", buffering=1)
            self._owns_handle = True
        elif callable(sink):
            self._callable = sink
        else:
            self._handle = sink  # writable file object

    def emit(self, event: dict) -> None:
        event.setdefault("ts", round(time.time(), 3))
        event.setdefault("schema", STREAM_SCHEMA_VERSION)
        if self.events is not None:
            self.events.append(event)
        if self._callable is not None:
            self._callable(event)
        if self._handle is not None:
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")

    def run_start(self, units: int, workers: int, **extra) -> None:
        self.emit({"event": "run-start", "units": units,
                   "workers": workers, **extra})

    def unit(self, record: dict) -> None:
        self.emit({"event": "unit", **record})

    def run_end(self, summary: dict) -> None:
        self.emit({"event": "run-end", "summary": summary})

    def close(self) -> None:
        if self._owns_handle and self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MetricsStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
