"""End-to-end SuperC tests: the full pipeline on variability-rich C.

Includes the paper's running examples (Figure 1's mousedev excerpt,
Figure 6's initializer) and the parse-level projection oracle: for each
configuration, the FMLR AST projected onto it equals the plain-LR
parse of the projected token stream.
"""

import itertools

import pytest

from repro.bdd import BDDManager
from repro.cgrammar import c_tables, classify, make_context_factory
from repro.cpp import DictFileSystem, project as project_tree
from repro.parser import LRParser, StaticChoice
from repro.parser.ast import iter_tokens, project as ast_project
from repro.parser.fmlr import OPTIMIZATION_LEVELS
from repro.superc import SuperC, parse_c
from tests.support import assignment_for, ast_signature


def plain_parse(tokens):
    manager = BDDManager()
    factory = make_context_factory(manager)
    parser = LRParser(c_tables(), classify, context_factory=factory,
                      condition=manager.true)
    return parser.parse(tokens)


def check_against_plain_lr(source, files=None, variables=(),
                           values=("1",)):
    """The parse-level projection oracle."""
    result = parse_c(source, files=files)
    assert result.ok, [str(f) for f in result.failures]
    unit = result.unit
    for present in itertools.product([False, True],
                                     repeat=len(variables)):
        config = {name: values[0]
                  for name, here in zip(variables, present) if here}
        assignment = assignment_for(unit, config)
        if not unit.feasible_condition.evaluate(assignment):
            continue
        tokens = project_tree(unit.tree, assignment)
        expected = plain_parse(tokens)
        actual = ast_project(result.ast, assignment)
        assert ast_signature(expected) == ast_signature(actual), config
    return result


class TestFigure1:
    SOURCE = (
        '#include "major.h"\n'
        "#define MOUSEDEV_MIX 31\n"
        "#define MOUSEDEV_MINOR_BASE 32\n"
        "static int mousedev_open(struct inode *inode,"
        " struct file *file)\n"
        "{\n"
        "  int i;\n"
        "#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX\n"
        "  if (imajor(inode) == MISC_MAJOR)\n"
        "    i = MOUSEDEV_MIX;\n"
        "  else\n"
        "#endif\n"
        "  i = iminor(inode) - MOUSEDEV_MINOR_BASE;\n"
        "  return 0;\n"
        "}\n")
    FILES = {"include/major.h": "#define MISC_MAJOR 10\n"}

    def test_parses_both_configurations(self):
        result = check_against_plain_lr(
            self.SOURCE, files=self.FILES,
            variables=["CONFIG_INPUT_MOUSEDEV_PSAUX"])
        # The AST contains a static choice for the conditional.
        found = []

        def walk(v):
            if isinstance(v, StaticChoice):
                found.append(v)
                for _c, b in v.branches:
                    walk(b)
            elif hasattr(v, "children"):
                for c in v.children:
                    walk(c)
            elif isinstance(v, tuple):
                for c in v:
                    walk(c)

        walk(result.ast)
        assert found

    def test_shared_token_both_branches(self):
        """Figure 1b line 10 is parsed twice: once inside the if-else,
        once as a standalone statement — both configurations contain
        the shared assignment."""
        result = parse_c(self.SOURCE, files=self.FILES)
        unit = result.unit
        for config in ({}, {"CONFIG_INPUT_MOUSEDEV_PSAUX": "1"}):
            projected = ast_project(result.ast,
                                    assignment_for(unit, config))
            texts = [t.text for t in iter_tokens(projected)]
            assert "iminor" in texts


class TestFigure6:
    @staticmethod
    def source(n=18):
        lines = ["static int (*check_part[])(struct parsed *) = {"]
        for index in range(n):
            lines += [f"#ifdef CONFIG_ACORN_{index}",
                      f"  adfspart_check_{index},",
                      "#endif"]
        lines += ["  ((void *)0)", "};"]
        return "\n".join(lines)

    def test_exponential_configs_constant_subparsers(self):
        result = parse_c(self.source())
        assert result.ok, [str(f) for f in result.failures]
        # 2^18 configurations, only a handful of subparsers (the paper
        # reports 2 for this example; allow a little slack for the
        # engine's fork-then-act stepping).
        assert result.parse.stats.max_subparsers <= 8

    def test_projection_sample(self):
        result = parse_c(self.source(6))
        unit = result.unit
        for config in ({}, {"CONFIG_ACORN_0": "1"},
                       {"CONFIG_ACORN_2": "1", "CONFIG_ACORN_5": "1"}):
            assignment = assignment_for(unit, config)
            projected = ast_project(result.ast, assignment)
            texts = [t.text for t in iter_tokens(projected)]
            for index in range(6):
                name = f"adfspart_check_{index}"
                if f"CONFIG_ACORN_{index}" in config:
                    assert name in texts
                else:
                    assert name not in texts

    def test_mapr_needs_exponentially_more(self):
        optimized = parse_c(self.source(8))
        mapr = parse_c(self.source(8),
                       options=OPTIMIZATION_LEVELS["MAPR"])
        assert mapr.ok
        assert mapr.parse.stats.max_subparsers >= \
            4 * optimized.parse.stats.max_subparsers


class TestConditionalTypedefs:
    def test_conditionally_defined_typedef_forks(self):
        """An ambiguously defined name makes reclassify fork an extra
        subparser on an implicit conditional (no explicit #ifdef at the
        use site)."""
        source = ("#ifdef CONFIG_WIDE\n"
                  "typedef long T;\n"
                  "#endif\n"
                  "int T;\n")
        # Under CONFIG_WIDE this is `int T;` redeclaring a typedef as a
        # variable — legal C (different declaration), and under !WIDE a
        # plain variable.  Either way it must parse, and the ambiguous
        # name statistic must record the fork.
        result = parse_c(source)
        assert result.ok or result.parse.accepted

    def test_typedef_under_both_branches(self):
        source = ("#ifdef CONFIG_64\n"
                  "typedef unsigned long word;\n"
                  "#else\n"
                  "typedef unsigned int word;\n"
                  "#endif\n"
                  "word w;\n"
                  "word f(word x) { return x + 1; }\n")
        check_against_plain_lr(source, variables=["CONFIG_64"])

    def test_conditional_struct_layout(self):
        source = ("struct dev {\n"
                  "  int id;\n"
                  "#ifdef CONFIG_DEBUG\n"
                  "  const char *label;\n"
                  "#endif\n"
                  "  long flags;\n"
                  "};\n")
        check_against_plain_lr(source, variables=["CONFIG_DEBUG"])


class TestRealisticUnits:
    def test_conditional_function_body(self):
        source = ("int init(void)\n"
                  "{\n"
                  "#ifdef CONFIG_SMP\n"
                  "  int cpus = 8;\n"
                  "  return cpus;\n"
                  "#else\n"
                  "  return 1;\n"
                  "#endif\n"
                  "}\n")
        check_against_plain_lr(source, variables=["CONFIG_SMP"])

    def test_conditional_parameters(self):
        source = ("int probe(struct device *dev\n"
                  "#ifdef CONFIG_PM\n"
                  "  , int pm_state\n"
                  "#endif\n"
                  ");\n")
        check_against_plain_lr(source, variables=["CONFIG_PM"])

    def test_conditional_else_if_chain(self):
        source = ("int pick(int x)\n"
                  "{\n"
                  "  if (x == 0) return 0;\n"
                  "#ifdef CONFIG_A\n"
                  "  else if (x == 1) return 1;\n"
                  "#endif\n"
                  "  else return 2;\n"
                  "}\n")
        check_against_plain_lr(source, variables=["CONFIG_A"])

    def test_macro_driven_variability(self):
        source = ("#ifdef CONFIG_64BIT\n"
                  "#define BITS_PER_LONG 64\n"
                  "#else\n"
                  "#define BITS_PER_LONG 32\n"
                  "#endif\n"
                  "int width = BITS_PER_LONG;\n"
                  "#if BITS_PER_LONG == 64\n"
                  "typedef unsigned long uptr;\n"
                  "#else\n"
                  "typedef unsigned int uptr;\n"
                  "#endif\n"
                  "uptr mask = (uptr)~0;\n")
        check_against_plain_lr(source, variables=["CONFIG_64BIT"])

    def test_multiple_independent_conditionals(self):
        source = ("#ifdef CONFIG_A\nint a;\n#endif\n"
                  "#ifdef CONFIG_B\nint b;\n#endif\n"
                  "#ifdef CONFIG_C\nint c;\n#endif\n"
                  "int tail;\n")
        result = check_against_plain_lr(
            source, variables=["CONFIG_A", "CONFIG_B", "CONFIG_C"])
        assert result.parse.stats.max_subparsers <= 6

    def test_error_branch_excluded_from_parsing(self):
        source = ("#ifdef CONFIG_BROKEN\n"
                  "#error not supported\n"
                  "this is ! not @ C\n"
                  "#endif\n"
                  "int fine;\n")
        result = parse_c(source)
        assert result.ok

    def test_parse_failure_reports_condition(self):
        source = ("#ifdef CONFIG_BAD\n"
                  "int broken = ;\n"
                  "#endif\n"
                  "int fine;\n")
        result = parse_c(source)
        assert not result.ok
        assert result.parse.accepted  # the feasible config parsed
        assert any("CONFIG_BAD" in str(f) for f in result.failures)

    def test_timing_breakdown_present(self):
        result = parse_c("int x;\n")
        timing = result.timing
        assert timing.lex >= 0
        assert timing.preprocess >= 0
        assert timing.parse > 0
        assert timing.total >= timing.parse


class TestSuperCFileAPI:
    def test_parse_file(self):
        fs = DictFileSystem({
            "src/main.c": '#include "util.h"\nint main(void) '
                          '{ return util(); }\n',
            "src/util.h": "int util(void);\n",
        })
        superc = SuperC(fs)
        result = superc.parse_file("src/main.c")
        assert result.ok

    def test_missing_file(self):
        superc = SuperC(DictFileSystem({}))
        with pytest.raises(FileNotFoundError):
            superc.parse_file("nope.c")

    def test_all_optimization_levels_parse_figure6(self):
        source = TestFigure6.source(6)
        baseline = parse_c(source)
        base_unit = baseline.unit
        for level, options in OPTIMIZATION_LEVELS.items():
            result = parse_c(source, options=options)
            assert result.ok, level
            for config in ({}, {"CONFIG_ACORN_1": "1"}):
                expected = ast_project(
                    baseline.ast, assignment_for(base_unit, config))
                actual = ast_project(
                    result.ast, assignment_for(result.unit, config))
                assert ast_signature(expected) == \
                    ast_signature(actual), (level, config)


class TestConstructorInjection:
    """Prebuilt tables / context-factory makers via the constructor
    (the batch engine builds many SuperC instances cheaply)."""

    SOURCE = ("#ifdef CONFIG_SMP\nint nr_cpus = 8;\n#else\n"
              "int nr_cpus = 1;\n#endif\n")

    def test_injected_tables_used(self):
        from repro.parser.lalr import from_blob, to_blob
        clone = from_blob(to_blob(c_tables()))
        superc = SuperC(DictFileSystem({}), tables=clone)
        assert superc.tables is clone
        result = superc.parse_source(self.SOURCE)
        assert result.ok
        baseline = SuperC(DictFileSystem({})).parse_source(self.SOURCE)
        assert ast_signature(result.ast) == ast_signature(baseline.ast)

    def test_injected_context_factory_maker(self):
        calls = []

        def maker(manager, stats=None):
            calls.append(manager)
            return make_context_factory(manager, stats)

        superc = SuperC(DictFileSystem({}),
                        context_factory_maker=maker)
        result = superc.parse_source(self.SOURCE)
        assert result.ok
        assert len(calls) == 1

    def test_shared_tables_across_instances(self):
        tables = c_tables()
        instances = [SuperC(DictFileSystem({}), tables=tables)
                     for _ in range(3)]
        assert all(s.tables is tables for s in instances)
