"""Unified public API: one Config, one Session, one Result shape.

Historically every entry point grew its own knobs — ``SuperC(...)``
took nine positional-ish parameters, ``parse_c(...)`` a different
four, the batch engine an ``EngineConfig`` — and every pipeline
produced a differently-shaped result object.  This module collapses
both sides:

* :class:`Config` is the single keyword-only bag of knobs.  Every
  entry point (``SuperC``, ``parse_c``, :func:`parse`,
  :class:`Session`, the engine workers) funnels through it, so
  defaults resolve identically everywhere.
* :func:`parse` / :class:`Session` are the one-call and reusable
  facades, re-exported at the package root as ``repro.parse`` and
  ``repro.Session``.
* The **Result protocol**: every pipeline result — ``SuperCResult``,
  the engine's ``UnitResult``, and both baselines' results — exposes
  ``status``, ``ok``, ``degraded``, ``diagnostics``, ``timing`` (a
  ``Timing`` with ``lex/preprocess/parse/total``), and ``profile``
  (a :class:`repro.obs.Profile` or None).  :func:`is_result` checks
  conformance structurally; there is no required base class.

Example::

    import repro
    result = repro.parse("int x = 1;")
    result.status, result.timing.total, result.profile

    session = repro.Session(files={"a.c": SRC}, tracer=Tracer())
    result = session.parse_file("a.c")
"""

from __future__ import annotations

import copy
import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import ResourceBudget
from repro.parser.fmlr import FMLROptions
from repro.superc import SuperC, SuperCResult, Timing

# Attributes every pipeline result exposes (the Result protocol).
RESULT_FIELDS: Tuple[str, ...] = ("status", "ok", "degraded",
                                  "diagnostics", "timing", "profile")


def is_result(obj: Any) -> bool:
    """Structural check: does ``obj`` satisfy the Result protocol?"""
    return all(hasattr(obj, name) for name in RESULT_FIELDS)


def result_summary(obj: Any) -> Dict[str, Any]:
    """Uniform JSON-friendly digest of any protocol-conforming result."""
    timing = obj.timing
    return {
        "status": obj.status,
        "ok": obj.ok,
        "degraded": obj.degraded,
        "diagnostics": len(obj.diagnostics),
        "timing": timing.as_dict() if timing is not None else None,
        "profile": (obj.profile.summary_dict()
                    if obj.profile is not None else None),
    }


def deprecated_property(old_name: str, path: str) -> property:
    """A property implementing a renamed-attribute shim.

    Reading it emits a :class:`DeprecationWarning` naming the new
    dotted ``path`` and then resolves that path against ``self`` —
    e.g. ``lex_seconds = deprecated_property("lex_seconds",
    "timing.lex")``.
    """

    def getter(self: Any) -> Any:
        warnings.warn(
            f"{type(self).__name__}.{old_name} is deprecated; "
            f"use .{path} instead",
            DeprecationWarning, stacklevel=2)
        value = self
        for part in path.split("."):
            value = getattr(value, part)
        return value

    getter.__name__ = old_name
    return property(getter, doc=f"Deprecated alias for ``{path}``.")


@dataclass(frozen=True, kw_only=True)
class Config:
    """Every pipeline knob, keyword-only, in one place.

    ``fs``/``files`` are alternatives: pass a ``FileSystem`` or a plain
    ``{path: text}`` mapping (wrapped in a ``DictFileSystem``).
    ``kill_switch``/``hard_kill_switch`` are conveniences that override
    the corresponding fields of ``options`` without constructing an
    ``FMLROptions`` by hand.  ``tracer`` enables observability
    (:mod:`repro.obs`); None keeps the allocation-free null path.
    """

    fs: Any = None
    files: Optional[Mapping[str, str]] = None
    include_paths: Tuple[str, ...] = ()
    builtins: Optional[Dict[str, str]] = None
    extra_definitions: Optional[Dict[str, str]] = None
    options: Optional[FMLROptions] = None
    kill_switch: Optional[int] = None
    hard_kill_switch: Optional[bool] = None
    budget: Optional[ResourceBudget] = None
    tracer: Any = None
    tables: Any = None
    context_factory_maker: Optional[Callable] = None

    def resolved_fs(self) -> Any:
        if self.files is not None:
            from repro.cpp import DictFileSystem
            return DictFileSystem(dict(self.files))
        return self.fs

    def resolved_options(self) -> Optional[FMLROptions]:
        options = self.options
        if self.kill_switch is None and self.hard_kill_switch is None:
            return options
        options = (copy.copy(options) if options is not None
                   else FMLROptions())
        if self.kill_switch is not None:
            options.kill_switch = self.kill_switch
        if self.hard_kill_switch is not None:
            options.hard_kill_switch = self.hard_kill_switch
        return options

    def replace(self, **overrides: Any) -> "Config":
        return dataclasses.replace(self, **overrides)

    def build(self) -> SuperC:
        """Construct the configured front-end."""
        return SuperC(config=self)


class Session:
    """A configured, reusable parsing session.

    Wraps one ``SuperC`` instance (tables built once) so repeated
    parses share setup cost.  Accepts a :class:`Config`, keyword
    overrides, or both (overrides win).
    """

    def __init__(self, config: Optional[Config] = None,
                 **overrides: Any):
        if config is None:
            config = Config(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self.superc = config.build()

    @property
    def tracer(self) -> Any:
        return self.superc.tracer

    def parse(self, text: str,
              filename: str = "<input>") -> SuperCResult:
        return self.superc.parse_source(text, filename)

    def parse_file(self, path: str) -> SuperCResult:
        return self.superc.parse_file(path)

    def preprocess(self, text: str, filename: str = "<input>") -> Any:
        return self.superc.preprocess_source(text, filename)


def parse(text: str, *, filename: str = "<input>",
          config: Optional[Config] = None,
          **overrides: Any) -> SuperCResult:
    """One-call convenience over :class:`Session`.

    ``repro.parse(src, files={...}, tracer=t)`` parses ``src`` under a
    fresh session configured by ``config`` and/or keyword overrides.
    """
    return Session(config, **overrides).parse(text, filename)


def connect(url: str, **options: Any) -> Any:
    """Open a :class:`repro.serve.RemoteSession` to a parse daemon.

    The remote analogue of :class:`Session`: ``url`` names a running
    ``superc-serve`` endpoint — ``unix:/path`` (or a bare socket
    path), ``tcp:host:port``, or ``http://host:port`` — and the
    returned session's ``parse``/``parse_file`` results satisfy the
    same structural Result protocol as local ones.  ``options``
    (``timeout``, ``retries``, ``backoff_*``) tune the transport.

    Imported lazily so the in-process API never pays for the serve
    subsystem.
    """
    from repro.serve.client import connect as _connect
    return _connect(url, **options)


__all__ = [
    "Config", "RESULT_FIELDS", "Session", "SuperC", "SuperCResult",
    "Timing", "connect", "deprecated_property", "is_result", "parse",
    "result_summary",
]
