#ifndef _MAJOR_H
#define _MAJOR_H

#define MISC_MAJOR 10

#endif
