"""Figure 9: SuperC vs TypeChef latency per compilation unit.

Measures the cumulative latency distribution, the per-tool maximum,
and the kernel total for SuperC (BDD presence conditions) and the
TypeChef proxy (the same pipeline over CNF+DPLL formulas — the
mechanism the paper blames for TypeChef's knee and long tail).

Expected shape (paper): SuperC 3.4-3.8x faster at the 50th-80th
percentiles; TypeChef's curve knees and develops a long tail on
complex units; SuperC's does not.
"""

from benchmarks.conftest import emit
from repro.eval import measure_superc, measure_typechef_proxy


def test_figure9_latency(benchmark, sweep_corpus):
    holder = {}

    def run():
        holder["superc"] = measure_superc(sweep_corpus)
        holder["typechef"] = measure_typechef_proxy(sweep_corpus)
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    superc, typechef = holder["superc"], holder["typechef"]

    lines = ["", "=" * 66,
             "Figure 9: latency per compilation unit (seconds)",
             f"{'Percentile':<14}{'SuperC':>12}{'TypeChef-proxy':>16}"
             f"{'ratio':>8}"]
    for p in (0.50, 0.80, 0.90, 1.00):
        s = superc.percentile(p)
        t = typechef.percentile(p)
        ratio = t / s if s else float("inf")
        lines.append(f"{int(p * 100):>3}th"
                     f"{'':<9}{s:>12.3f}{t:>16.3f}{ratio:>8.1f}x")
    lines.append(f"{'Max':<14}{superc.maximum:>12.3f}"
                 f"{typechef.maximum:>16.3f}")
    lines.append(f"{'Total':<14}{superc.total:>12.3f}"
                 f"{typechef.total:>16.3f}")
    lines.append("")
    lines.append("Cumulative distribution (seconds at each unit rank):")
    lines.append("SuperC:         " + " ".join(
        f"{sec:.2f}" for sec, _f in superc.cdf()))
    lines.append("TypeChef-proxy: " + " ".join(
        f"{sec:.2f}" for sec, _f in typechef.cdf()))
    tail_ratio = (typechef.maximum / typechef.percentile(0.5)) / \
        max(superc.maximum / superc.percentile(0.5), 1e-9)
    lines.append(f"(tail spread ratio TypeChef/SuperC: "
                 f"{tail_ratio:.1f}x — the knee)")
    lines.append("=" * 66)
    emit(lines)

    benchmark.extra_info["superc_total"] = superc.total
    benchmark.extra_info["typechef_total"] = typechef.total
    # Shape: SuperC wins overall.
    assert typechef.total > superc.total
