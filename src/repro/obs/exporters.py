"""Trace exporters: Chrome ``trace_event`` JSON and text flamegraphs.

The Chrome exporter emits the JSON Object Format of the Trace Event
specification — ``{"traceEvents": [...]}`` — loadable in
``chrome://tracing`` and Perfetto:

* spans become complete events (``"ph": "X"`` with ``ts``/``dur`` in
  microseconds);
* instant events (FMLR fork/merge, kill-switch trips, diagnostics)
  become ``"ph": "i"`` events with thread scope;
* counters become one trailing ``"ph": "C"`` sample per counter, so
  totals are visible on the timeline.

``validate_chrome_trace`` is the schema check used by the
``trace-smoke`` Make target and ``tests/test_obs.py``; it validates
shape, monotonicity-free requirements (the spec allows unsorted
events), and JSON-serializability.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.tracer import Span, Tracer

_PROCESS_NAME = "superc"


def _span_events(span: Span, origin: float, pid: int, tid: int,
                 out: List[dict]) -> None:
    event = {"name": span.name, "ph": "X", "cat": "pipeline",
             "ts": round((span.start - origin) * 1e6, 3),
             "dur": round(span.seconds * 1e6, 3),
             "pid": pid, "tid": tid}
    if span.args:
        event["args"] = dict(span.args)
    out.append(event)
    for child in span.children:
        _span_events(child, origin, pid, tid, out)


def to_chrome_trace(tracer: Tracer, pid: int = 1, tid: int = 1,
                    extra_events: Optional[Sequence[dict]] = None,
                    lane_per_root: bool = False) -> dict:
    """Export a tracer's spans/events/counters as a Chrome trace dict.

    ``lane_per_root`` gives every root span its own thread lane
    (tid = root index + 1) with a thread_name taken from the span's
    args (request op/unit when present) — the serve layer uses it so a
    traced server run renders one lane per request.
    """
    origin = 0.0
    starts = [root.start for root in tracer.roots]
    starts.extend(event.ts for event in tracer.events)
    if starts:
        origin = min(starts)
    trace_events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": tid,
        "ts": 0, "args": {"name": _PROCESS_NAME}}]
    for index, root in enumerate(tracer.roots):
        root_tid = tid
        if lane_per_root:
            root_tid = index + 1
            args = root.args or {}
            label = " ".join(str(args[key]) for key in
                             ("op", "unit", "file", "path")
                             if key in args) or root.name
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": root_tid, "ts": 0,
                "args": {"name": f"request {index + 1}: {label}"}})
        _span_events(root, origin, pid, root_tid, trace_events)
    for event in tracer.events:
        record = {"name": event.name, "ph": "i", "s": "t",
                  "cat": "event",
                  "ts": round((event.ts - origin) * 1e6, 3),
                  "pid": pid, "tid": tid}
        if event.args:
            record["args"] = dict(event.args)
        trace_events.append(record)
    end_ts = 0.0
    for record in trace_events:
        end_ts = max(end_ts,
                     record.get("ts", 0) + record.get("dur", 0))
    for name in sorted(tracer.counters):
        trace_events.append({
            "name": name, "ph": "C", "cat": "counter",
            "ts": round(end_ts, 3), "pid": pid, "tid": tid,
            "args": {"value": tracer.counters[name]}})
    if extra_events:
        trace_events.extend(extra_events)
    return {"traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"tool": "repro-superc"}}


def records_to_chrome_trace(records: Sequence[dict],
                            tracer: Optional[Tracer] = None) -> dict:
    """Corpus-level trace from engine unit records: each unit becomes
    a lane of per-phase complete events laid out on a synthetic serial
    timeline (records carry durations, not absolute timestamps).  A
    parent-side tracer's spans, when given, ride along on pid 0."""
    trace_events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "ts": 0, "args": {"name": f"{_PROCESS_NAME}-batch"}}]
    cursor = 0.0
    for index, record in enumerate(records):
        tid = index + 1
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "ts": 0, "args": {"name": record.get("unit", f"unit-{tid}")}})
        unit_start = cursor
        timing = record.get("timing") or {}
        offset = unit_start
        for phase in ("lex", "preprocess", "parse"):
            duration = float(timing.get(phase) or 0.0)
            trace_events.append({
                "name": phase, "ph": "X", "cat": "pipeline",
                "ts": round(offset * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "pid": 1, "tid": tid,
                "args": {"unit": record.get("unit"),
                         "status": record.get("status"),
                         "cache": record.get("cache")}})
            offset += duration
        cursor = max(offset, unit_start) + 1e-6
    if tracer is not None and tracer.enabled:
        parent = to_chrome_trace(tracer, pid=0, tid=0)
        trace_events.extend(parent["traceEvents"])
    return {"traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"tool": "repro-superc"}}


def write_chrome_trace(path: str, trace: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")


_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
_KNOWN_PHASES = frozenset("XBEiIMC")


def validate_chrome_trace(trace: Any) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["top level is not an object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    open_b: Dict[tuple, int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        for key in _REQUIRED_KEYS:
            if key not in event:
                problems.append(f"event {index} lacks {key!r}")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"event {index} has unknown ph {phase!r}")
        if phase == "X" and "dur" not in event:
            problems.append(f"event {index} (X) lacks dur")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"event {index} (i) has bad scope")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index} has bad ts {ts!r}")
        if phase == "B":
            key = (event.get("pid"), event.get("tid"))
            open_b[key] = open_b.get(key, 0) + 1
        elif phase == "E":
            key = (event.get("pid"), event.get("tid"))
            open_b[key] = open_b.get(key, 0) - 1
            if open_b[key] < 0:
                problems.append(f"event {index}: E without B")
    for key, depth in open_b.items():
        if depth > 0:
            problems.append(f"unclosed B events on pid/tid {key}")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as error:
        problems.append(f"not JSON-serializable: {error}")
    return problems


def format_flamegraph(tracer: Tracer, width: int = 60) -> str:
    """Plain-text flame view: one line per span, indented by depth,
    with duration, share of its root, and a proportional bar."""
    lines: List[str] = []
    for root in tracer.roots:
        total = root.seconds or 1e-9

        def walk(span: Span, depth: int) -> None:
            share = span.seconds / total
            bar = "#" * max(1, int(round(share * 24)))
            label = "  " * depth + span.name
            lines.append(f"{label:<{width - 36}.{width - 36}} "
                         f"{span.seconds * 1000:9.3f}ms "
                         f"{100 * share:5.1f}%  {bar}")
            for child in span.children:
                walk(child, depth + 1)

        walk(root, 0)
    return "\n".join(lines)
