"""Warm server state: tables, fingerprinted files, parse entries.

Everything a cold ``superc-parse`` run pays per invocation is held
here once, for the life of the daemon:

* **Warm LALR tables** — built (or blob-deserialized) at startup and
  injected into one long-lived :class:`repro.api.Session`, so every
  request skips grammar-table construction entirely.
* **Content-fingerprinted file store** — :class:`FileStore` overlays
  any base :class:`repro.cpp.FileSystem` with a text + SHA-256 cache,
  so include closures of back-to-back requests re-read nothing from
  disk.  ``invalidate``/``put`` are the edit entry points.
* **Parse entries** — per-unit records keyed exactly like the batch
  engine's result cache: ``(source digest, include-closure digest,
  config digest)``.  The in-memory map answers repeat requests in
  microseconds; a :class:`repro.engine.ResultCache` underneath it
  persists every fresh parse, so a daemon warms subsequent
  ``superc-batch`` runs and vice versa — one result cache, two front
  ends.

Lookup resolution order for a ``parse`` request:

1. same key in memory — ``cache=hit, tier=memory``;
2. same key on disk (engine cache) — ``cache=hit, tier=disk``;
3. different key but identical token fingerprint (layout-only edit) —
   ``cache=hit, tier=token``: the old record is re-published under the
   new key without re-parsing;
4. miss — parse with the warm session, publish to memory + disk.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.api import Config, Session
from repro.cpp import FileSystem, RealFileSystem
from repro.engine import DEFAULT_OPTIMIZATION
from repro.engine.cache import (ResultCache, config_fingerprint,
                                include_closure)
from repro.engine.results import record_from_result
from repro.obs.tracer import NULL_TRACER
from repro.parser.fmlr import OPTIMIZATION_LEVELS
from repro.serve.incremental import InvalidationIndex, token_fingerprint
from repro.serve.journal import ParseJournal
# One status taxonomy for the whole service: which statuses may never
# be published to the warm tiers is part of the protocol, not of any
# one transport or cache layer.
from repro.serve.protocol import UNCACHEABLE_STATUSES

TIER_MEMORY = "memory"
TIER_DISK = "disk"
TIER_TOKEN = "token"

JOURNAL_NAME = "serve-journal.jsonl"


class FileStore(FileSystem):
    """Content-fingerprinted overlay over a base file system.

    Reads are served from the in-memory cache after the first access;
    ``put`` installs an overlay text (an editor buffer, a test edit)
    and ``invalidate`` drops both overlay and cache so the next read
    hits the base again.  ``known_files`` is the server's whole file
    view — the input to the resolver-accurate include graph.
    """

    def __init__(self, base: Optional[FileSystem] = None):
        self.base = base if base is not None else RealFileSystem()
        self._text: Dict[str, Optional[str]] = {}
        self._digest: Dict[str, str] = {}
        self._lock = threading.Lock()

    def read(self, path: str) -> Optional[str]:
        with self._lock:
            if path in self._text:
                return self._text[path]
        text = self.base.read(path)
        with self._lock:
            self._text[path] = text
            if text is not None:
                self._digest[path] = \
                    hashlib.sha256(text.encode()).hexdigest()
        return text

    def exists(self, path: str) -> bool:
        return self.read(path) is not None

    def digest(self, path: str) -> Optional[str]:
        if self.read(path) is None:
            return None
        with self._lock:
            return self._digest.get(path)

    def put(self, path: str, text: str) -> None:
        """Overlay ``path`` with new content (in-memory edit)."""
        with self._lock:
            self._text[path] = text
            self._digest[path] = \
                hashlib.sha256(text.encode()).hexdigest()

    def invalidate(self, path: str) -> bool:
        """Forget cached content for ``path``; True if it was known."""
        with self._lock:
            known = path in self._text
            self._text.pop(path, None)
            self._digest.pop(path, None)
            return known

    def known_files(self) -> Dict[str, str]:
        """Every path with known (readable) content."""
        with self._lock:
            return {path: text for path, text in self._text.items()
                    if text is not None}


class ParseEntry:
    """One unit's warm result plus the evidence that keys it.

    ``record`` may be ``None`` for an entry resumed from the on-disk
    journal: the metadata (key, closure, token fingerprint) came back,
    and the record itself is fetched lazily from the result cache the
    first time a tier needs it.
    """

    __slots__ = ("key", "record", "closure_files", "token_fp")

    def __init__(self, key: str, record: Optional[dict],
                 closure_files: FrozenSet[str],
                 token_fp: Optional[str]):
        self.key = key
        self.record = record
        self.closure_files = closure_files
        self.token_fp = token_fp


class ServerState:
    """All warm state behind one running parse server."""

    def __init__(self, config: Optional[Config] = None,
                 optimization: str = DEFAULT_OPTIMIZATION,
                 cache_dir: Optional[str] = None,
                 use_result_cache: bool = True,
                 tracer: object = None,
                 use_journal: bool = True,
                 **overrides: Any):
        if config is None:
            config = Config(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        if optimization not in OPTIMIZATION_LEVELS:
            raise ValueError(f"unknown optimization {optimization!r}")
        if config.options is None:
            config = config.replace(
                options=OPTIMIZATION_LEVELS[optimization])
        self.optimization = optimization
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.files = FileStore(config.resolved_fs())
        # One warm Session: tables built once, reused by every request.
        # The session reads through the fingerprinting store so request
        # N+1 re-reads nothing request N already saw.
        self.session = Session(config.replace(fs=self.files, files=None))
        self.config = self.session.config
        self.fingerprint = config_fingerprint(
            list(config.include_paths), config.builtins,
            config.extra_definitions, optimization)
        self.result_cache = (ResultCache(cache_dir, self.fingerprint,
                                         tracer=self.tracer)
                             if use_result_cache else None)
        self.index = InvalidationIndex(list(config.include_paths))
        self.entries: Dict[str, ParseEntry] = {}
        self._lock = threading.Lock()
        self.parses = 0
        self.token_short_circuits = 0
        # Installed by ParseServer when a worker pool is active: a
        # callable (unit, text, closure_files, deadline) -> record that
        # runs the parse out of process.  None -> parse inline.
        self.executor: Optional[Callable[..., dict]] = None
        # Warm-state journal: lives inside the result cache's
        # fingerprint directory (which clear() leaves alone — it only
        # removes *.json), so journal and records travel together.
        self.journal: Optional[ParseJournal] = None
        self.journal_resumed = 0
        if use_journal and self.result_cache is not None:
            self.journal = ParseJournal(
                os.path.join(self.result_cache.directory, JOURNAL_NAME),
                tracer=self.tracer)
            self._resume_from_journal()

    def _resume_from_journal(self) -> None:
        """Rebuild warm-entry metadata from a previous daemon's life.

        Records stay on disk (the result cache); what comes back here
        is the per-unit key, closure membership, and token fingerprint
        — enough for the disk and token tiers to short-circuit the
        first request after a restart instead of re-parsing cold."""
        entries = self.journal.load()
        if not entries:
            return
        with self._lock:
            for unit, meta in entries.items():
                self.entries[unit] = ParseEntry(
                    meta["key"], None, frozenset(meta["closure"]),
                    meta["token_fp"])
                self.journal_resumed += 1
                if self.tracer.enabled:
                    self.tracer.count("serve.journal.resume")
        self.index.mark_dirty()

    def reset_after_fork(self) -> None:
        """Make inherited state safe inside a freshly forked worker.

        Locks can be forked while held by another thread; replace them
        so the child can't deadlock on a lock nobody will release.  The
        child parses only — it must not write the parent's journal or
        result cache, so both are detached."""
        self._lock = threading.Lock()
        self.files._lock = threading.Lock()
        self.journal = None
        self.result_cache = None
        self.executor = None

    # -- lookup / store ------------------------------------------------

    def unit_key(self, unit: str, text: str) \
            -> Tuple[str, str, FrozenSet[str]]:
        """(cache key, closure digest, closure members) for a unit."""
        closure_digest, members = include_closure(
            self.files, unit, self.config.include_paths)
        cache = self.result_cache
        if cache is not None:
            key = cache.key_for(unit, text, closure_digest)
        else:
            digest = hashlib.sha256()
            digest.update(unit.encode())
            digest.update(hashlib.sha256(text.encode()).digest())
            digest.update(closure_digest.encode())
            key = digest.hexdigest()[:32]
        return key, closure_digest, members

    def lookup(self, unit: str, key: str,
               closure_files: FrozenSet[str],
               allow_token_hit: bool = True) \
            -> Tuple[Optional[dict], Optional[str]]:
        """(record, tier) for a warm answer, or (None, None)."""
        with self._lock:
            entry = self.entries.get(unit)
        if entry is not None and entry.key == key \
                and entry.record is not None:
            return entry.record, TIER_MEMORY
        if self.result_cache is not None:
            record = self.result_cache.get(key)
            if record is not None:
                self._remember(unit, key, record, closure_files)
                return record, TIER_DISK
        if allow_token_hit and entry is not None \
                and entry.token_fp is not None:
            # The content digest moved but maybe only layout changed:
            # compare layout-insensitive token fingerprints over the
            # (new) closure before paying for a re-parse.
            fresh_fp = token_fingerprint(self.files.read, unit,
                                         closure_files)
            if fresh_fp is not None and fresh_fp == entry.token_fp:
                record = entry.record
                if record is None and entry.key \
                        and self.result_cache is not None:
                    # Journal-resumed entry: the metadata matched, the
                    # record itself still lives under the old key on
                    # disk.
                    record = self.result_cache.get(entry.key)
                if record is not None:
                    self.token_short_circuits += 1
                    # Re-publish under the new key so the *next*
                    # request (and any batch run) hits tiers 1-2
                    # directly.
                    self._remember(unit, key, record, closure_files,
                                   token_fp=fresh_fp)
                    if self.result_cache is not None:
                        self.result_cache.put(key, record)
                    return record, TIER_TOKEN
        return None, None

    def parse(self, unit: str, text: str, key: str,
              closure_files: FrozenSet[str],
              deadline: object = None) -> dict:
        """Fresh parse; publishes the record unless it is a failure.

        With an ``executor`` installed (worker pool), the parse runs in
        a supervised child process and the supervisor enforces
        ``deadline``; otherwise it runs inline on the warm session.
        Failure records (error / timeout / crashed) are returned but
        never published to the warm tiers or the journal — they
        describe one attempt, not the unit."""
        if self.executor is not None:
            record = self.executor(unit, text, closure_files, deadline)
        else:
            record = self._parse_inline(unit, text)
        self.parses += 1
        if record.get("status") in UNCACHEABLE_STATUSES:
            return record
        fp = token_fingerprint(self.files.read, unit, closure_files)
        self._remember(unit, key, record, closure_files, token_fp=fp)
        if self.result_cache is not None:
            self.result_cache.put(key, record)
        return record

    def _parse_inline(self, unit: str, text: str) -> dict:
        """One parse on the warm in-process session."""
        result = self.session.parse(text, unit)
        return record_from_result(unit, result,
                                  seconds=result.timing.total)

    def _remember(self, unit: str, key: str, record: Optional[dict],
                  closure_files: FrozenSet[str],
                  token_fp: Optional[str] = None) -> None:
        with self._lock:
            previous = self.entries.get(unit)
            if token_fp is None and previous is not None \
                    and previous.key == key:
                token_fp = previous.token_fp
            self.entries[unit] = ParseEntry(key, record, closure_files,
                                            token_fp)
        self.index.mark_dirty()
        if self.journal is not None:
            self.journal.append(unit, key, closure_files, token_fp)

    # -- invalidation --------------------------------------------------

    def invalidate(self, path: str,
                   text: Optional[str] = None) -> List[str]:
        """Apply an edit to ``path`` and drop exactly the affected
        units' warm entries; returns the dropped unit list (sorted).

        ``text`` installs new content (in-memory edit); without it the
        store just forgets the path so the next read re-hits the base
        file system (on-disk edit).  Entries keep their token
        fingerprint *indirectly*: dropping the entry would defeat the
        layout-only short-circuit, so affected entries are kept but
        demoted — their key is cleared, forcing the next request
        through digest recomputation (and thus the token-fingerprint
        comparison) instead of the memory tier.
        """
        known = self.files.known_files()
        affected = self.index.affected_units(known, path,
                                             list(self.entries))
        if text is not None:
            self.files.put(path, text)
        else:
            self.files.invalidate(path)
        self.index.mark_dirty()
        dropped = []
        demoted = []
        with self._lock:
            for unit in affected:
                entry = self.entries.get(unit)
                if entry is None:
                    continue
                # Demote: keep record + token fingerprint for the
                # tier-3 check, but no key ever matches again.
                self.entries[unit] = ParseEntry(
                    "", entry.record, entry.closure_files,
                    entry.token_fp)
                demoted.append((unit, entry))
                dropped.append(unit)
        if self.journal is not None:
            # Journal the demotion too: a daemon restarted after an
            # edit must not resume the stale pre-edit key.
            for unit, entry in demoted:
                self.journal.append(unit, "", entry.closure_files,
                                    entry.token_fp)
        return sorted(dropped)

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        cache = self.result_cache
        with self._lock:
            units = len(self.entries)
        return {
            "fingerprint": self.fingerprint,
            "optimization": self.optimization,
            "units_warm": units,
            "parses": self.parses,
            "token_short_circuits": self.token_short_circuits,
            "result_cache": (None if cache is None else
                             {"hits": cache.hits,
                              "misses": cache.misses,
                              "corrupt": cache.corrupt,
                              "directory": cache.directory}),
            "journal": (None if self.journal is None else
                        dict(self.journal.stats(),
                             resumed=self.journal_resumed)),
            "files_known": len(self.files.known_files()),
        }
