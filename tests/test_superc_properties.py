"""Property-based end-to-end tests: random conditional C sources.

For arbitrary nestings of conditionals around C fragments, the FMLR
AST projected onto any configuration must match the plain-LR parse of
the equivalently projected token stream (and both pipelines must agree
on which configurations are well-formed).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpp import project as project_tree
from repro.parser.ast import project as ast_project
from repro.superc import parse_c
from tests.support import assignment_for, ast_signature
from tests.test_superc import plain_parse

VARS = ["A", "B", "C"]

# C fragments that are valid external declarations/definitions.
DECLS = [
    "int {n};",
    "static long {n} = 4;",
    "char {n}[8];",
    "int {n}(void) {{ return 1; }}",
    "struct s{n} {{ int f; }};",
    "typedef unsigned {n}_t;",
]

# Statement fragments for inside a function body.
STMTS = [
    "x = x + 1;",
    "if (x) x = 0;",
    "while (x > 4) x--;",
    "return x;",
    "{{ int t = x; x = t; }}",
    ";",
]


@st.composite
def conditional_source(draw):
    counter = itertools.count()
    lines = []

    def emit_block(depth, in_function):
        n = draw(st.integers(min_value=1, max_value=3))
        for _ in range(n):
            kind = draw(st.integers(min_value=0, max_value=3))
            if kind == 0 and depth < 2:
                var = draw(st.sampled_from(VARS))
                form = draw(st.sampled_from(
                    ["#ifdef {v}", "#ifndef {v}",
                     "#if defined({v}) && !defined({w})"]))
                other = draw(st.sampled_from(VARS))
                lines.append(form.format(v=var, w=other))
                emit_block(depth + 1, in_function)
                if draw(st.booleans()):
                    lines.append("#else")
                    emit_block(depth + 1, in_function)
                lines.append("#endif")
            else:
                name = f"g{next(counter)}"
                pool = STMTS if in_function else DECLS
                lines.append(draw(st.sampled_from(pool))
                             .format(n=name))

    emit_block(0, in_function=False)
    # Wrap a second conditional region inside a function.
    lines.append("int body(int x)")
    lines.append("{")
    emit_block(0, in_function=True)
    lines.append("return x;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def all_configs():
    for bits in itertools.product([False, True], repeat=len(VARS)):
        yield {name: "1" for name, bit in zip(VARS, bits) if bit}


@settings(max_examples=40, deadline=None)
@given(conditional_source())
def test_projection_equivalence(source):
    result = parse_c(source)
    unit = result.unit
    for config in all_configs():
        assignment = assignment_for(unit, config)
        tokens = project_tree(unit.tree, assignment)
        accepted = [cond for cond, _v in result.parse.accepted
                    if cond.evaluate(assignment)]
        failed = [f for f in result.failures
                  if f.condition.evaluate(assignment)]
        try:
            expected = plain_parse(tokens)
        except Exception:
            # Plain LR rejects this configuration: FMLR must have
            # recorded a failure (not an accept) for it.
            assert failed or not accepted
            continue
        assert len(accepted) == 1, (config, source)
        actual = ast_project(result.ast, assignment)
        assert ast_signature(actual) == ast_signature(expected), \
            (config, source)


@settings(max_examples=20, deadline=None)
@given(conditional_source())
def test_subparser_partition_invariant(source):
    """Accepted conditions are pairwise disjoint and, with failures,
    cover the whole feasible space."""
    result = parse_c(source)
    manager = result.unit.manager
    conditions = [cond for cond, _v in result.parse.accepted]
    conditions += [f.condition for f in result.failures]
    union = manager.false
    for i, cond in enumerate(conditions):
        for other in conditions[i + 1:]:
            assert (cond & other).is_false()
        union = union | cond
    feasible = result.unit.feasible_condition
    assert (feasible & ~union).is_false()
