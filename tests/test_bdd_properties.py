"""Property-based tests: BDDs against a brute-force truth-table model."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager

VARS = ["A", "B", "C", "D"]


# A boolean expression AST as nested tuples, plus an evaluator and a
# BDD builder, so hypothesis can compare the two semantics.

def exprs():
    leaves = st.sampled_from([("var", v) for v in VARS] +
                             [("const", True), ("const", False)])

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def eval_expr(expr, env):
    tag = expr[0]
    if tag == "var":
        return env[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "not":
        return not eval_expr(expr[1], env)
    left = eval_expr(expr[1], env)
    right = eval_expr(expr[2], env)
    if tag == "and":
        return left and right
    if tag == "or":
        return left or right
    return left != right  # xor


def build_bdd(expr, mgr):
    tag = expr[0]
    if tag == "var":
        return mgr.var(expr[1])
    if tag == "const":
        return mgr.constant(expr[1])
    if tag == "not":
        return ~build_bdd(expr[1], mgr)
    left = build_bdd(expr[1], mgr)
    right = build_bdd(expr[2], mgr)
    if tag == "and":
        return left & right
    if tag == "or":
        return left | right
    return left ^ right


def all_envs():
    for bits in itertools.product([False, True], repeat=len(VARS)):
        yield dict(zip(VARS, bits))


@settings(max_examples=200, deadline=None)
@given(exprs())
def test_bdd_matches_truth_table(expr):
    mgr = BDDManager()
    node = build_bdd(expr, mgr)
    for env in all_envs():
        assert node.evaluate(env) == eval_expr(expr, env)


@settings(max_examples=150, deadline=None)
@given(exprs(), exprs())
def test_canonicity(e1, e2):
    """Two expressions denote the same function iff same BDD node."""
    mgr = BDDManager()
    # Register all variables up front so both builds share an order.
    for v in VARS:
        mgr.var(v)
    n1, n2 = build_bdd(e1, mgr), build_bdd(e2, mgr)
    same_function = all(
        eval_expr(e1, env) == eval_expr(e2, env) for env in all_envs())
    assert (n1 is n2) == same_function


@settings(max_examples=100, deadline=None)
@given(exprs())
def test_negation_is_complement(expr):
    mgr = BDDManager()
    node = build_bdd(expr, mgr)
    neg = ~node
    for env in all_envs():
        assert neg.evaluate(env) == (not node.evaluate(env))
    assert (node | neg).is_tautology()
    assert (node & neg).is_false()


@settings(max_examples=100, deadline=None)
@given(exprs())
def test_sat_count_matches_truth_table(expr):
    mgr = BDDManager()
    node = build_bdd(expr, mgr)
    expected = sum(1 for env in all_envs() if eval_expr(expr, env))
    assert node.sat_count(VARS) == expected


@settings(max_examples=100, deadline=None)
@given(exprs(), st.sampled_from(VARS), st.booleans())
def test_restrict_is_partial_evaluation(expr, var, value):
    mgr = BDDManager()
    node = build_bdd(expr, mgr)
    restricted = node.restrict({var: value})
    for env in all_envs():
        fixed = dict(env)
        fixed[var] = value
        assert restricted.evaluate(env) == node.evaluate(fixed)
    assert var not in restricted.support()


@settings(max_examples=100, deadline=None)
@given(exprs())
def test_one_sat_satisfies(expr):
    mgr = BDDManager()
    node = build_bdd(expr, mgr)
    model = node.one_sat()
    if model is None:
        assert node.is_false()
    else:
        env = {v: model.get(v, False) for v in VARS}
        assert node.evaluate(env)
