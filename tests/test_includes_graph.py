"""Tests for include-dependency graph analytics."""

import pytest

from repro.analysis.includes_graph import (build_include_graph,
                                           include_cycles,
                                           longest_chain,
                                           preprocessing_fanout,
                                           redundant_direct_includes,
                                           transitive_inclusion_counts)
from repro.corpus import KernelSpec, generate_kernel

FILES = {
    "drivers/a.c": '#include <top.h>\n#include "local.h"\n',
    "drivers/b.c": "#include <top.h>\n",
    "drivers/local.h": "#include <base.h>\n",
    "include/top.h": "#include <mid.h>\n#include <base.h>\n",
    "include/mid.h": "#include <base.h>\n",
    "include/base.h": "int base;\n",
}


@pytest.fixture()
def graph():
    return build_include_graph(FILES)


class TestGraph:
    def test_edges(self, graph):
        assert graph.has_edge("drivers/a.c", "include/top.h")
        assert graph.has_edge("drivers/a.c", "drivers/local.h")
        assert graph.has_edge("include/top.h", "include/mid.h")
        assert not graph.has_edge("drivers/b.c", "include/base.h")

    def test_transitive_counts(self, graph):
        counts = transitive_inclusion_counts(graph)
        assert counts["include/base.h"] == 2  # both C files reach it
        assert counts["drivers/local.h"] == 1

    def test_longest_chain(self, graph):
        chain = longest_chain(graph)
        # a.c -> top.h -> mid.h -> base.h
        assert len(chain) == 4
        assert chain[0].endswith(".c")
        assert chain[-1] == "include/base.h"

    def test_no_cycles(self, graph):
        assert include_cycles(graph) == []

    def test_cycle_detection(self):
        files = {"include/x.h": "#include <y.h>\n",
                 "include/y.h": "#include <x.h>\n"}
        cycles = include_cycles(build_include_graph(files))
        assert cycles == [["include/x.h", "include/y.h"]]

    def test_redundant_direct_include(self, graph):
        redundant = redundant_direct_includes(graph)
        # top.h includes base.h directly, but mid.h already pulls it.
        assert ("include/top.h", "include/base.h",
                "include/mid.h") in redundant

    def test_preprocessing_fanout(self, graph):
        counts = transitive_inclusion_counts(graph)
        assert preprocessing_fanout(graph) == sum(counts.values())


class TestOnCorpus:
    def test_corpus_graph(self):
        corpus = generate_kernel(KernelSpec(subsystems=2,
                                            drivers_per_subsystem=2))
        graph = build_include_graph(corpus.files)
        counts = transitive_inclusion_counts(graph)
        # Core headers reach every driver.
        assert counts["include/linux/kernel.h"] == len(corpus.units)
        chain = longest_chain(graph)
        assert len(chain) >= 3  # module.h -> kernel.h -> types.h
        assert include_cycles(graph) == []
        assert preprocessing_fanout(graph) > \
            len(corpus.units) * 5  # headers re-preprocessed per unit
