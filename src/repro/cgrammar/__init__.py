"""The C grammar, token classification, and typedef context."""

from __future__ import annotations

import hashlib
import os
from typing import Optional

from repro.cgrammar.classify import (CONSTANT, IDENTIFIER, STRING,
                                     TYPEDEF_NAME, classify)
from repro.cgrammar.grammar_def import (C_KEYWORDS, GNU_ALIASES,
                                        build_c_grammar)
from repro.cgrammar.typedefs import (CContext, SymbolStats,
                                     make_context_factory)
from repro.parser.lalr import (TABLE_BLOB_VERSION, TableBlobError,
                               Tables, from_blob, generate, to_blob)

_TABLES: Optional[Tables] = None


def cache_root() -> str:
    """Directory for persistent caches (grammar tables, batch results).

    ``REPRO_CACHE_DIR`` overrides the default ``~/.cache/repro-superc``;
    everything inside is derived data and safe to delete."""
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-superc")


def _cache_path(key: str) -> str:
    return os.path.join(cache_root(),
                        f"ctables-{key}-v{TABLE_BLOB_VERSION}.tables")


def _grammar_key(grammar) -> str:
    digest = hashlib.sha256()
    for production in grammar.productions:
        digest.update(repr((production.lhs, production.rhs,
                            production.build.value,
                            production.node_name)).encode())
    digest.update(repr(sorted(grammar.complete)).encode())
    return digest.hexdigest()[:16]


def c_tables_key() -> str:
    """Content hash of the C grammar (the table cache key)."""
    return _grammar_key(build_c_grammar())


def c_tables_cache_path() -> str:
    """Where the C grammar's table blob lives on disk."""
    return _cache_path(c_tables_key())


def c_tables(use_cache: bool = True) -> Tables:
    """LALR tables for the C grammar (generated once per process and
    cached on disk — versioned blobs, see ``repro.parser.lalr`` — so
    other processes, e.g. ``repro.engine`` workers, deserialize instead
    of regenerating)."""
    global _TABLES
    if _TABLES is not None:
        return _TABLES
    grammar = build_c_grammar()
    key = _grammar_key(grammar)
    path = _cache_path(key)
    if use_cache and os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                _TABLES = from_blob(handle.read())
            return _TABLES
        except (TableBlobError, OSError):
            pass  # fall through to regeneration
    _TABLES = generate(grammar)
    if use_cache:
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + f".tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(to_blob(_TABLES))
            os.replace(tmp, path)  # atomic: concurrent workers race safely
        except OSError:
            pass
    return _TABLES


__all__ = [
    "CContext", "CONSTANT", "C_KEYWORDS", "GNU_ALIASES", "IDENTIFIER",
    "STRING", "SymbolStats", "TYPEDEF_NAME", "build_c_grammar",
    "c_tables", "c_tables_cache_path", "c_tables_key", "cache_root",
    "classify", "make_context_factory",
]
