"""Tests for the evaluation instrumentation (Tables 2-3, Figures 8-10)."""

import pytest

from repro.corpus import KernelSpec, generate_kernel
from repro.eval import (developers_view, figure8, measure_gcc_like,
                        measure_level, measure_superc,
                        measure_typechef_proxy, percentiles, tools_view,
                        top_included_headers, unit_size_bytes,
                        unit_statistics)
from repro.superc import SuperC


@pytest.fixture(scope="module")
def corpus():
    return generate_kernel(KernelSpec(subsystems=2,
                                      drivers_per_subsystem=2,
                                      figure6_entries=5))


@pytest.fixture(scope="module")
def superc(corpus):
    return SuperC(corpus.filesystem(),
                  include_paths=corpus.include_paths)


class TestPercentiles:
    def test_empty(self):
        assert percentiles([]) == (0, 0, 0)

    def test_single(self):
        assert percentiles([7]) == (7, 7, 7)

    def test_ordering(self):
        p50, p90, p100 = percentiles(list(range(101)))
        assert p50 == 50
        assert p90 == 90
        assert p100 == 100

    def test_max_is_max(self):
        assert percentiles([5, 1, 9, 3])[2] == 9


class TestTable2:
    def test_developers_view_rows(self, corpus):
        table = developers_view(corpus)
        assert set(table) == {"loc", "all_directives", "define",
                              "conditional", "include"}
        assert table["loc"].total > 300
        assert table["all_directives"].total > 50
        # Most macro definitions live in headers (the paper: 84%).
        assert table["define"].pct_headers > 50
        # C files dominate include directives (the paper: 85%).
        assert table["include"].pct_c > 50

    def test_counts_consistent(self, corpus):
        table = developers_view(corpus)
        assert table["all_directives"].total >= (
            table["define"].total + table["conditional"].total +
            table["include"].total)
        for row in table.values():
            assert row.total == row.in_c + row.in_headers
            assert abs(row.pct_c + row.pct_headers - 100.0) < 1e-6

    def test_top_included_headers(self, corpus):
        top = top_included_headers(corpus, count=12)
        assert len(top) == 12
        names = [name for name, _count, _pct in top]
        # kernel.h, types.h, and module.h are pulled in by every
        # driver (the paper: module.h reaches 49% of C files).
        assert any("types.h" in name for name in names)
        assert any("module.h" in name for name in names)
        counts = [count for _name, count, _pct in top]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] == len(corpus.c_files())
        assert top[0][2] == 100.0


class TestTable3:
    def test_unit_statistics_keys(self, corpus, superc):
        stats = unit_statistics(superc, corpus.units[0])
        for key in ("macro_definitions", "invocations",
                    "declarations_and_statements", "typedef_names"):
            assert key in stats

    def test_tools_view_table(self, corpus, superc):
        table = tools_view(superc, corpus.units)
        assert "Macro Definitions" in table
        p50, p90, p100 = table["Macro Definitions"]
        assert p50 <= p90 <= p100
        assert p100 > 0
        # Most definitions are inside conditionals (guards).
        contained = table["  Contained in conditionals"]
        assert contained[0] > 0.8 * p50
        # Parser rows are populated.
        assert table["C Declarations & Statements"][2] > 10
        assert table["  Containing conditionals"][2] >= 1
        assert table["Typedef Names"][2] >= 1

    def test_non_boolean_and_error_rows(self, corpus, superc):
        table = tools_view(superc, corpus.units)
        assert table["  With non-boolean expressions"][2] >= 1
        assert table["Error Directives"][2] >= 1
        assert table["  Reincluded headers"][2] >= 1


class TestFigure8:
    def test_optimized_level(self, corpus):
        dist = measure_level(corpus, "Shared, Lazy, & Early")
        assert dist.exploded_units == 0
        assert dist.maximum >= 1
        assert dist.p99 <= dist.maximum

    def test_ordering_between_levels(self, corpus):
        best = measure_level(corpus, "Shared, Lazy, & Early")
        follow_only = measure_level(corpus, "Follow-Set Only")
        assert best.maximum <= follow_only.maximum

    def test_mapr_worse_or_explodes(self, corpus):
        # A small kill switch keeps the (intentionally) exponential
        # MAPR run fast; the mechanism is identical at any threshold.
        best = measure_level(corpus, "Shared, Lazy, & Early")
        mapr = measure_level(corpus, "MAPR", kill_switch=200)
        assert mapr.exploded_units > 0 or \
            mapr.maximum > best.maximum

    def test_cdf_monotone(self, corpus):
        dist = measure_level(corpus, "Shared, Lazy, & Early")
        cdf = dist.cdf()
        fractions = [fraction for _x, fraction in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_figure8_all_levels(self, corpus):
        table = figure8(corpus, levels=["Shared, Lazy, & Early",
                                        "Follow-Set Only"])
        assert set(table) == {"Shared, Lazy, & Early",
                              "Follow-Set Only"}
        for dist in table.values():
            assert dist.describe()


class TestFigures9And10:
    def test_superc_latency(self, corpus):
        dist = measure_superc(corpus)
        assert len(dist.samples) == len(corpus.units)
        assert dist.total > 0
        assert dist.maximum >= dist.percentile(0.5)
        for sample in dist.samples:
            assert sample.parse > 0
            assert sample.size_bytes > 1000

    def test_typechef_proxy_slower(self):
        # A tiny corpus keeps this fast: the proxy's slowdown is large
        # (the paper reports 3.4-3.8x typical with a 15-minute tail;
        # the formula algebra is the whole difference here).
        small = generate_kernel(KernelSpec(
            subsystems=1, drivers_per_subsystem=1, figure6_entries=3))
        superc = measure_superc(small)
        typechef = measure_typechef_proxy(small)
        assert typechef.total > superc.total

    def test_gcc_like_fastest(self, corpus):
        superc = measure_superc(corpus)
        gcc = measure_gcc_like(corpus)
        assert gcc.total < superc.total
        assert len(gcc.samples) == len(corpus.units)

    def test_unit_size_includes_headers(self, corpus):
        unit = corpus.units[0]
        size = unit_size_bytes(corpus, unit)
        assert size > len(corpus.files[unit])

    def test_cdf_shape(self, corpus):
        dist = measure_superc(corpus)
        cdf = dist.cdf()
        assert cdf[0][1] <= cdf[-1][1]
        assert cdf[-1][1] == pytest.approx(1.0)
