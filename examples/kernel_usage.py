#!/usr/bin/env python3
"""Preprocessor-usage survey of a (synthetic) kernel tree.

Reproduces the paper's §6.1 methodology on the generated Linux-like
corpus: the developer's view (Table 2 — simple file counts) and the
tool's view (Table 3 — what the configuration-preserving preprocessor
actually encounters, which simple counts cannot see: nested macro
invocations, trimmed and hoisted expansions, reincluded headers...).

Run:  python examples/kernel_usage.py
"""

from repro.corpus import KernelSpec, generate_kernel
from repro.eval import (TOOLS_VIEW_ROWS, developers_view, tools_view,
                        top_included_headers)
from repro.superc import SuperC


def main() -> None:
    corpus = generate_kernel(KernelSpec(subsystems=3,
                                        drivers_per_subsystem=2))
    print(f"synthetic kernel: {len(corpus.files)} files, "
          f"{len(corpus.units)} compilation units, "
          f"{len(corpus.config_variables)} configuration variables\n")

    print("--- developer's view (Table 2a) ---")
    dev = developers_view(corpus)
    labels = {"loc": "LoC", "all_directives": "All Directives",
              "define": "#define",
              "conditional": "#if,#ifdef,#ifndef",
              "include": "#include"}
    print(f"{'construct':<22}{'total':>8}{'C files':>10}{'headers':>10}")
    for key, label in labels.items():
        row = dev[key]
        print(f"{label:<22}{row.total:>8}{row.pct_c:>9.0f}%"
              f"{row.pct_headers:>9.0f}%")

    print("\n--- most included headers (Table 2b) ---")
    for header, count, pct in top_included_headers(corpus):
        print(f"{header:<44}{count:>4} C files ({pct:.0f}%)")

    print("\n--- tool's view (Table 3, percentiles 50th/90th/100th) ---")
    superc = SuperC(corpus.filesystem(),
                    include_paths=corpus.include_paths)
    table = tools_view(superc, corpus.units)
    for label, _attr in TOOLS_VIEW_ROWS:
        p50, p90, p100 = table[label]
        print(f"{label:<38}{p50:>8.0f} · {p90:>6.0f} · {p100:>6.0f}")

    print("\nNote how the tool's view exposes what file-level counts "
          "miss:\nnested invocations, hoisted conditionals, and "
          "reincluded headers.")


if __name__ == "__main__":
    main()
