"""Unparsing: all-configuration ASTs back to C source text.

Automated refactorings must "output program text as originally
written, modulo any intended changes" (Table 1's layout row).  For
edits that keep token positions valid, :mod:`repro.analysis.refactor`
patches the original text directly.  This module handles the other
half: regenerating a *complete* compilation unit from an AST whose
static choice nodes become ``#if``/``#elif``/``#else``/``#endif``
directives, so structural transformations (that invalidate positions)
can still be written out for every configuration at once.

Because the AST drops punctuation-only values (§5.1's ``layout``
annotation) and flattens precedence chains (``passthrough``), the
unparser regenerates what grammar annotations removed: commas between
list members, parentheses around compound expressions and declarators
(emitted unconditionally — redundant parens are valid C and make the
output precedence-safe), and the ``=`` of designated initializers.

Presence conditions are rendered back into conditional expressions:
``defined:M`` variables become ``defined(M)``, ``value:M`` become
``M``, and opaque ``expr:TEXT`` variables re-emit their original
arithmetic text.  The output is *preprocessed* C (macros are already
expanded in the AST); it round-trips through the parser to a
projection-equivalent result, which the tests verify.

Known limits: multi-section ``asm`` operand lists and static choice
nodes inside strict comma lists (function arguments / declarator
lists) are not re-punctuated; conditional members of initializer and
enumerator lists are handled via trailing commas.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.cpp.conditions import DEFINED_PREFIX, EXPR_PREFIX, VALUE_PREFIX
from repro.lexer.tokens import Token, TokenKind, render_tokens
from repro.parser.ast import Node, StaticChoice


def variable_to_expr(name: str) -> str:
    """Render one BDD variable back into #if-expression syntax."""
    if name.startswith(DEFINED_PREFIX):
        return f"defined({name[len(DEFINED_PREFIX):]})"
    if name.startswith(VALUE_PREFIX):
        return name[len(VALUE_PREFIX):]
    if name.startswith(EXPR_PREFIX):
        return f"({name[len(EXPR_PREFIX):]})"
    return name


def condition_to_expr(condition: Any) -> str:
    """Render a presence condition as a C conditional expression.

    Uses the BDD's satisfying cubes (DNF).  TRUE renders as ``1``,
    FALSE as ``0``.
    """
    if condition.is_true():
        return "1"
    if condition.is_false():
        return "0"
    cubes: List[str] = []
    for cube in condition.all_sat():
        terms = []
        for name, value in sorted(cube.items()):
            rendered = variable_to_expr(name)
            terms.append(rendered if value else f"!{rendered}")
        cubes.append(" && ".join(terms) if terms else "1")
    if len(cubes) == 1:
        return cubes[0]
    return " || ".join(f"({cube})" for cube in cubes)


# Expression nodes get wrapped in regenerated parentheses (passthrough
# dropped the originals, and flat emission would lose precedence).
_PAREN_EXPRS = frozenset({
    "BinaryExpression", "AssignmentExpression", "ConditionalExpression",
    "CastExpression", "UnaryExpression", "PreIncrement", "PreDecrement",
    "PostIncrement", "PostDecrement", "SizeofExpression",
    "AlignofExpression", "SubscriptExpression", "DirectSelection",
    "IndirectSelection", "CommaExpression",
})

# Declarator nodes likewise: `int ((*fp))(void);` is valid C.
_PAREN_DECLARATORS = frozenset({
    "PointerDeclarator", "ArrayDeclarator", "FunctionDeclarator",
    "AttributedDeclarator", "PointerAbstractDeclarator",
    "ArrayAbstractDeclarator", "FunctionAbstractDeclarator",
})

# node name -> child indices whose tuple children are strict
# comma-separated lists (no trailing comma allowed).  Indices count
# the node's semantic children, including kept punctuator tokens.
_COMMA_BETWEEN = {
    "Declaration": (1,),
    "StructDeclaration": (1,),
    "FunctionCall": (2,),       # (callee, '(', args, ')')
    "CompoundLiteral": (4,),    # ('(', type, ')', '{', list, '}')
    "AttrCall": (2,),
    "Attribute": (3,),          # ('__attribute__', '(', '(', params, ...)
}

# Node kinds whose shape varies: every tuple child is a comma list.
_COMMA_ANY_TUPLE = frozenset({
    "FunctionDeclarator", "FunctionAbstractDeclarator",
})

# node name -> child indices whose tuple children allow (and here get)
# a trailing comma — which lets conditional members carry their comma
# inside their own branch.
_COMMA_TRAILING = {
    "CompoundInitializer": (1,),
    "EnumSpecifier": (2, 3),
}

# Statement/declaration boundaries that end an output line.
_LINE_BREAK_AFTER = frozenset({
    "Declaration", "FunctionDefinition", "ExpressionStatement",
    "EmptyStatement", "ReturnStatement", "BreakStatement",
    "ContinueStatement", "GotoStatement", "CompoundStatement",
    "IfStatement", "IfElseStatement", "WhileStatement", "DoStatement",
    "ForStatement", "SwitchStatement", "StructDeclaration",
    "EmptyDeclaration", "AsmStatement", "AsmDefinition",
})


def _punct(text: str) -> Token:
    return Token(TokenKind.PUNCTUATOR, text, "<unparse>")


class Unparser:
    """Streams an AST into lines of C text with directives."""

    def __init__(self, use_layout: bool = False):
        self.use_layout = use_layout
        self._lines: List[str] = []
        self._tokens: List[Token] = []

    # -- driving -------------------------------------------------------------

    def unparse(self, value: Any,
                error_conditions: Sequence[Tuple[Any, str]] = ()) \
            -> str:
        self._lines = []
        self._tokens = []
        # Re-emit the unit's infeasible configurations: the AST only
        # covers feasible ones, so without these directives a reparse
        # would try (and fail) to parse the excluded configs.
        for condition, message in error_conditions:
            if condition.is_false():
                continue
            self._lines.append(f"#if {condition_to_expr(condition)}")
            self._lines.append(f'#error "{message}"')
            self._lines.append("#endif")
        self._walk(value)
        self._flush_tokens()
        return "\n".join(self._lines) + ("\n" if self._lines else "")

    # -- internals -------------------------------------------------------------

    def _walk(self, value: Any,
              suffix: Optional[List[Token]] = None) -> None:
        if value is None:
            return
        if isinstance(value, Token):
            if value.kind not in (TokenKind.NEWLINE, TokenKind.EOF,
                                  TokenKind.PLACEMENT):
                self._tokens.append(value)
            self._emit_suffix(suffix)
            return
        if isinstance(value, Node):
            self._walk_node(value)
            self._emit_suffix(suffix)
            if value.name in _LINE_BREAK_AFTER:
                self._flush_tokens()
            return
        if isinstance(value, tuple):
            for element in value:
                self._walk(element)
            self._emit_suffix(suffix)
            return
        if isinstance(value, StaticChoice):
            self._emit_choice(value, suffix)
            return
        # Unknown semantic value (e.g. from an action production).
        self._flush_tokens()
        self._lines.append(str(value))

    def _emit_suffix(self, suffix: Optional[List[Token]]) -> None:
        if suffix:
            self._tokens.extend(suffix)

    def _walk_node(self, node: Node) -> None:
        name = node.name
        wrap = name in _PAREN_EXPRS or name in _PAREN_DECLARATORS
        if wrap:
            self._tokens.append(_punct("("))
        if name == "DesignatedInitializer":
            # Passthrough dropped the '=' of `.field = init`.
            self._walk(node.children[0])
            self._tokens.append(_punct("="))
            for child in node.children[1:]:
                self._walk(child)
        elif name in ("VaArg", "OffsetofExpression"):
            # `__builtin_va_arg(expr, type)`: comma regenerated.
            kw, lparen, first, second, rparen = node.children
            self._walk(kw)
            self._walk(lparen)
            self._walk(first)
            self._tokens.append(_punct(","))
            self._walk(second)
            self._walk(rparen)
        elif name == "VariadicParameters":
            self._comma_between(node.children[0])
            self._tokens.append(_punct(","))
            for child in node.children[1:]:
                self._walk(child)
        elif name == "CommaExpression":
            self._walk(node.children[0])
            self._tokens.append(_punct(","))
            for child in node.children[1:]:
                self._walk(child)
        else:
            between = _COMMA_BETWEEN.get(name, ())
            trailing = _COMMA_TRAILING.get(name, ())
            any_tuple = name in _COMMA_ANY_TUPLE
            for index, child in enumerate(node.children):
                is_between = index in between or any_tuple
                if isinstance(child, tuple) and is_between:
                    self._comma_between(child)
                elif isinstance(child, StaticChoice) and is_between:
                    # The whole list merged into one choice: each
                    # branch is punctuated independently.
                    self._emit_choice(child, list_context="between")
                elif index in trailing and isinstance(
                        child, (tuple, StaticChoice)):
                    if isinstance(child, StaticChoice):
                        self._emit_choice(child, suffix=[_punct(",")],
                                          list_context="trailing")
                    else:
                        self._comma_trailing(child)
                else:
                    self._walk(child)
        if wrap:
            self._tokens.append(_punct(")"))

    def _comma_between(self, elements: tuple) -> None:
        for index, element in enumerate(elements):
            if index > 0:
                self._tokens.append(_punct(","))
            self._walk(element)

    def _comma_trailing(self, elements: tuple) -> None:
        comma = [_punct(",")]
        for element in elements:
            if isinstance(element, StaticChoice):
                # The member's comma lives inside its own branch; a
                # branch may itself hold a merged list fragment.
                self._emit_choice(element, suffix=comma,
                                  list_context="trailing")
            else:
                self._walk(element, suffix=comma)

    def _emit_choice(self, choice: StaticChoice,
                     suffix: Optional[List[Token]] = None,
                     list_context: Optional[str] = None) -> None:
        self._flush_tokens()
        branches = list(choice.branches)
        remainder = None
        if branches:
            # If conditions cover everything, render the last branch
            # as #else.
            union = branches[0][0]
            for condition, _value in branches[1:]:
                union = union | condition
            if union.is_true() and len(branches) > 1:
                remainder = branches.pop()

        def emit_branch(value: Any) -> None:
            if list_context == "trailing" and isinstance(value, tuple):
                self._comma_trailing(value)
            elif list_context == "between" and isinstance(value, tuple):
                self._comma_between(value)
            else:
                self._walk(value, suffix=list(suffix) if suffix
                           else None)
            self._flush_tokens()

        for index, (condition, value) in enumerate(branches):
            keyword = "#if" if index == 0 else "#elif"
            self._lines.append(f"{keyword} {condition_to_expr(condition)}")
            emit_branch(value)
        if remainder is not None:
            self._lines.append("#else")
            emit_branch(remainder[1])
        self._lines.append("#endif")

    def _flush_tokens(self) -> None:
        if not self._tokens:
            return
        text = render_tokens(self._tokens, with_layout=self.use_layout)
        for line in text.splitlines():
            if line.strip():
                self._lines.append(line)
        self._tokens = []


def unparse(ast: Any, use_layout: bool = False,
            error_conditions: Sequence[Tuple[Any, str]] = ()) -> str:
    """Render an all-configuration AST as C source with directives.

    ``error_conditions`` (from
    :attr:`~repro.cpp.CompilationUnit.error_conditions`) re-emit the
    unit's ``#error`` directives so infeasible configurations stay
    excluded on reparse.
    """
    return Unparser(use_layout=use_layout).unparse(
        ast, error_conditions=error_conditions)
