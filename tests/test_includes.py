"""Unit tests for include resolution and guard detection."""

import pytest

from repro.cpp.includes import (DictFileSystem, IncludeResolver,
                                RealFileSystem, detect_guard)


class TestDictFileSystem:
    def test_read_and_exists(self):
        fs = DictFileSystem({"a/b.h": "x"})
        assert fs.read("a/b.h") == "x"
        assert fs.exists("a/b.h")
        assert fs.read("a/c.h") is None
        assert not fs.exists("a/c.h")

    def test_paths_normalized(self):
        fs = DictFileSystem({"a/./b.h": "x"})
        assert fs.read("a/b.h") == "x"
        assert fs.read("a/sub/../b.h") == "x"


class TestRealFileSystem:
    def test_read(self, tmp_path):
        target = tmp_path / "real.h"
        target.write_text("content")
        fs = RealFileSystem()
        assert fs.read(str(target)) == "content"
        assert fs.exists(str(target))
        assert fs.read(str(tmp_path / "nope.h")) is None


class TestResolver:
    FILES = {
        "src/main.c": "",
        "src/local.h": "local",
        "include/linux/shared.h": "shared",
        "include/local.h": "include-local",
    }

    def resolver(self):
        return IncludeResolver(DictFileSystem(self.FILES), ["include"])

    def test_quoted_prefers_includer_directory(self):
        path = self.resolver().resolve("local.h", True, "src/main.c")
        assert path == "src/local.h"

    def test_quoted_falls_back_to_include_paths(self):
        path = self.resolver().resolve("linux/shared.h", True,
                                       "src/main.c")
        assert path == "include/linux/shared.h"

    def test_angle_skips_includer_directory(self):
        path = self.resolver().resolve("local.h", False, "src/main.c")
        assert path == "include/local.h"

    def test_unresolvable(self):
        assert self.resolver().resolve("missing.h", False,
                                       "src/main.c") is None


class TestGuardDetection:
    def test_classic_guard(self):
        text = ("#ifndef FOO_H\n#define FOO_H\nint x;\n#endif\n")
        assert detect_guard(text) == "FOO_H"

    def test_if_not_defined_form(self):
        text = ("#if !defined(FOO_H)\n#define FOO_H\nint x;\n#endif\n")
        assert detect_guard(text) == "FOO_H"

    def test_if_not_defined_no_parens(self):
        text = ("#if !defined FOO_H\n#define FOO_H\n#endif\n")
        assert detect_guard(text) == "FOO_H"

    def test_leading_comment_allowed(self):
        text = ("/* header comment */\n"
                "#ifndef G_H\n#define G_H\nint x;\n#endif\n")
        assert detect_guard(text) == "G_H"

    def test_no_guard_plain_header(self):
        assert detect_guard("int x;\n") is None

    def test_wrong_define_name(self):
        text = ("#ifndef FOO_H\n#define BAR_H\n#endif\n")
        assert detect_guard(text) is None

    def test_content_after_endif_breaks_guard(self):
        text = ("#ifndef FOO_H\n#define FOO_H\n#endif\nint leak;\n")
        assert detect_guard(text) is None

    def test_early_closing_endif_breaks_guard(self):
        text = ("#ifndef FOO_H\n#define FOO_H\n#endif\n"
                "#ifdef X\n#endif\n")
        assert detect_guard(text) is None

    def test_nested_conditionals_inside_guard_ok(self):
        text = ("#ifndef FOO_H\n#define FOO_H\n"
                "#ifdef X\nint x;\n#endif\n"
                "#endif\n")
        assert detect_guard(text) == "FOO_H"

    def test_unbalanced_returns_none(self):
        assert detect_guard("#ifndef A\n#define A\n") is None

    def test_define_must_follow_immediately(self):
        text = ("#ifndef FOO_H\n#ifdef OTHER\n#endif\n"
                "#define FOO_H\n#endif\n")
        assert detect_guard(text) is None
