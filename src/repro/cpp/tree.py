"""The configuration-preserving token tree.

The preprocessor's output is a *compilation unit*: a list of ordinary
tokens and :class:`Conditional` nodes.  Each conditional holds branches
``(presence condition, subtree)`` — the only preprocessor construct
that survives preprocessing (§2, Figure 1b).

``project`` resolves a tree onto one configuration, which is the basis
of the differential oracle against the plain single-configuration
preprocessor (the Python analogue of the paper's ``gcc -E``
comparison, §6.3).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple, Union

from repro.lexer.tokens import Token

TreeItem = Union[Token, "Conditional"]
TokenTree = List[TreeItem]


class Conditional:
    """A static conditional: ordered branches with presence conditions.

    Branch conditions are mutually exclusive.  If they do not disjoin
    to the enclosing condition, the remainder is an implicit empty
    else-branch (the preprocessor materializes explicit empty branches
    only when needed for hoisting).

    Convention: branch conditions are *relative* — consumers conjoin
    them with the enclosing presence condition while descending
    (nested conditionals' conditions conjoin, §2.1).  Conditions
    produced from ``#if`` evaluation may already be conjoined with
    their context; since conjunction is idempotent, both readings
    compose safely.
    """

    __slots__ = ("branches",)

    def __init__(self, branches: List[Tuple[Any, TokenTree]]):
        self.branches = branches

    def __repr__(self) -> str:
        return f"Conditional({len(self.branches)} branches)"


def iter_tokens(tree: TokenTree) -> Iterator[Token]:
    """All tokens in document order, descending into every branch."""
    for item in tree:
        if isinstance(item, Conditional):
            for _, subtree in item.branches:
                yield from iter_tokens(subtree)
        else:
            yield item


def project(tree: TokenTree, assignment: Dict[str, bool]) -> List[Token]:
    """Resolve all conditionals under a total assignment of BDD
    variables, returning the flat token sequence of one configuration."""
    out: List[Token] = []
    for item in tree:
        if isinstance(item, Conditional):
            for condition, subtree in item.branches:
                if condition.evaluate(assignment):
                    out.extend(project(subtree, assignment))
                    break
        else:
            out.append(item)
    return out


def count_conditionals(tree: TokenTree) -> int:
    """Number of Conditional nodes in the tree (all nesting levels)."""
    total = 0
    for item in tree:
        if isinstance(item, Conditional):
            total += 1
            for _, subtree in item.branches:
                total += count_conditionals(subtree)
    return total


def max_depth(tree: TokenTree) -> int:
    """Maximum conditional nesting depth."""
    deepest = 0
    for item in tree:
        if isinstance(item, Conditional):
            for _, subtree in item.branches:
                deepest = max(deepest, 1 + max_depth(subtree))
    return deepest


def token_count(tree: TokenTree) -> int:
    """Total number of tokens across all branches."""
    return sum(1 for _ in iter_tokens(tree))


def is_flat(tree: TokenTree) -> bool:
    """True if the tree contains no conditionals."""
    return all(isinstance(item, Token) for item in tree)


def map_conditions(tree: TokenTree,
                   fn: Callable[[Any], Any]) -> TokenTree:
    """Rebuild a tree with every presence condition mapped through
    ``fn`` (used by the TypeChef-proxy baseline to swap the condition
    algebra)."""
    out: TokenTree = []
    for item in tree:
        if isinstance(item, Conditional):
            out.append(Conditional([
                (fn(condition), map_conditions(subtree, fn))
                for condition, subtree in item.branches]))
        else:
            out.append(item)
    return out


def render(tree: TokenTree, indent: int = 0,
           condition_str: Callable[[Any], str] = None) -> str:
    """Debug rendering of a token tree as an outline."""
    pad = "  " * indent
    lines: List[str] = []
    buffer: List[str] = []

    def flush() -> None:
        if buffer:
            lines.append(pad + " ".join(buffer))
            buffer.clear()

    for item in tree:
        if isinstance(item, Conditional):
            flush()
            for condition, subtree in item.branches:
                rendered = condition_str(condition) if condition_str \
                    else condition.to_expr_string()
                lines.append(pad + f"#[{rendered}]")
                lines.append(render(subtree, indent + 1, condition_str))
            lines.append(pad + "#[end]")
        else:
            buffer.append(item.text)
    flush()
    return "\n".join(line for line in lines if line)
