"""Regression tests for the verified preprocessor/lexer bugfixes.

Each test pins a bug that the differential harness (repro.qa) can
rediscover if reintroduced:

1. the lexer accepted a literal whose "closing" quote was escaped at
   end of input;
2. GNU comma deletion (``, ## __VA_ARGS__``) was not implemented in
   either preprocessor;
3. ``#if`` folding of ``&&``/``||``/``?:`` evaluated dead operands in
   the SuperC condition converter (``#if 0 && 1/0`` raised);
4. the single-configuration oracle accepted nameless
   ``#ifdef``/``#undef`` directives the config-preserving pipeline
   rejects (found *by* the differential harness's shrinker).
"""

from __future__ import annotations

import pytest

from repro.cpp import PreprocessorError
from repro.lexer import Lexer, LexerError, lex
from repro.lexer.tokens import TokenKind

from tests.support import preprocess, simple_preprocess, texts


# ---------------------------------------------------------------------------
# 1. escaped-quote-at-EOF literals
# ---------------------------------------------------------------------------

class TestUnterminatedLiterals:
    @pytest.mark.parametrize("source", [
        '"abc\\"',            # escaped closing quote, then EOF
        "'x\\'",              # same for a character constant
        '"abc\\',             # trailing backslash at EOF
        'L"wide\\"',          # wide string variant
        '"abc\\" more',       # escaped quote, content, then EOF
        '"abc\nint x;',       # newline terminates the literal scan
        "'ab\n'",             # newline inside a char constant
    ])
    def test_rejected(self, source):
        with pytest.raises(LexerError) as err:
            lex(source)
        assert "unterminated" in str(err.value)

    @pytest.mark.parametrize("source,kind", [
        ('"abc\\" d"', TokenKind.STRING),    # escaped quote inside
        ('"tail\\\\"', TokenKind.STRING),    # escaped backslash, closed
        ("'\\''", TokenKind.CHARACTER),      # escaped quote char
        ('L"w\\"x"', TokenKind.STRING),      # wide with escaped quote
        ('""', TokenKind.STRING),            # empty string
    ])
    def test_accepted(self, source, kind):
        tokens = lex(source)
        assert tokens[0].kind is kind
        assert tokens[0].text == source

    def test_error_position_is_literal_start(self):
        with pytest.raises(LexerError) as err:
            lex('int x;\n"oops\\"')
        assert err.value.line == 2

    def test_backslash_newline_still_continues(self):
        # A literal continued over a spliced line is fine.
        tokens = lex('"ab\\\ncd"')
        assert tokens[0].kind is TokenKind.STRING


# ---------------------------------------------------------------------------
# 2. GNU comma deletion
# ---------------------------------------------------------------------------

LOG_SOURCE = """\
#define LOG(fmt, ...) printk(fmt, ## __VA_ARGS__)
LOG("a")
LOG("b", 1)
LOG("c", 1, 2)
"""

NAMED_SOURCE = """\
#define TRACE(args...) sink(0, ## args)
TRACE()
TRACE(1)
TRACE(1, 2)
"""

COMMA_EXPECTED = ["printk", "(", '"a"', ")",
                  "printk", "(", '"b"', ",", "1", ")",
                  "printk", "(", '"c"', ",", "1", ",", "2", ")"]

NAMED_EXPECTED = ["sink", "(", "0", ")",
                  "sink", "(", "0", ",", "1", ")",
                  "sink", "(", "0", ",", "1", ",", "2", ")"]


class TestCommaDeletion:
    def test_config_preserving(self):
        unit = preprocess(LOG_SOURCE)
        from repro.cpp import project
        assert texts(project(unit.tree, {})) == COMMA_EXPECTED

    def test_oracle(self):
        assert texts(simple_preprocess(LOG_SOURCE)) == COMMA_EXPECTED

    def test_named_variadic_config_preserving(self):
        unit = preprocess(NAMED_SOURCE)
        from repro.cpp import project
        assert texts(project(unit.tree, {})) == NAMED_EXPECTED

    def test_named_variadic_oracle(self):
        assert texts(simple_preprocess(NAMED_SOURCE)) == NAMED_EXPECTED

    def test_trailing_comma_call_keeps_comma_deleted(self):
        # `LOG("x",)` passes one empty vararg: still deleted.
        source = ('#define LOG(fmt, ...) p(fmt, ## __VA_ARGS__)\n'
                  'LOG("x",)\n')
        assert texts(simple_preprocess(source)) == \
            ["p", "(", '"x"', ")"]

    def test_plain_paste_still_works(self):
        source = "#define CAT(a, b) a ## b\nCAT(x, 1)\n"
        assert texts(simple_preprocess(source)) == ["x1"]

    def test_non_variadic_comma_paste_still_pastes(self):
        # `, ## x` in a NON-variadic macro is an ordinary paste of
        # ',' with the argument: ',' '##' 'y' -> ',y' is not a valid
        # token, so this must still error.
        source = "#define BAD(x) f(1 , ## x)\nBAD(y)\n"
        with pytest.raises(PreprocessorError):
            simple_preprocess(source)


# ---------------------------------------------------------------------------
# 3. short-circuit #if evaluation
# ---------------------------------------------------------------------------

SHORT_CIRCUIT_CASES = [
    ("#if 0 && 1/0\nint a;\n#else\nint b;\n#endif\n", ["int", "b", ";"]),
    ("#if 1 || 1/0\nint a;\n#else\nint b;\n#endif\n", ["int", "a", ";"]),
    ("#if 0 && 1%0\nint a;\n#else\nint b;\n#endif\n", ["int", "b", ";"]),
    ("#if 1 ? 2 : 1/0\nint a;\n#else\nint b;\n#endif\n",
     ["int", "a", ";"]),
    ("#if 0 ? 1/0 : 3\nint a;\n#else\nint b;\n#endif\n",
     ["int", "a", ";"]),
    # The guard that matters in practice: defined() protecting a
    # division by a macro that may be absent (hence 0).
    ("#if defined(M) && 8 / M\nint a;\n#else\nint b;\n#endif\n",
     ["int", "b", ";"]),
]


class TestShortCircuitIf:
    @pytest.mark.parametrize("source,expected", SHORT_CIRCUIT_CASES)
    def test_config_preserving(self, source, expected):
        unit = preprocess(source)
        from repro.cpp import project
        assignment = {var: False for var in unit.manager.variable_names}
        assert texts(project(unit.tree, assignment)) == expected

    @pytest.mark.parametrize("source,expected", SHORT_CIRCUIT_CASES)
    def test_oracle(self, source, expected):
        assert texts(simple_preprocess(source)) == expected

    def test_unguarded_division_still_errors(self):
        with pytest.raises(Exception):
            simple_preprocess("#if 1/0\nint a;\n#endif\n")


# ---------------------------------------------------------------------------
# 4. oracle directive validation (found by the fuzz shrinker)
# ---------------------------------------------------------------------------

class TestOracleDirectiveValidation:
    @pytest.mark.parametrize("source", [
        "#ifdef\n#endif\n",
        "#ifndef\n#endif\n",
        "#if 0\n#ifdef\n#endif\n#endif\n",   # even in skipped groups
        "#undef\n",
        "#undef 3\n",
    ])
    def test_oracle_rejects_malformed(self, source):
        with pytest.raises(PreprocessorError):
            simple_preprocess(source)

    @pytest.mark.parametrize("source", [
        "#ifdef\n#endif\n",
        "#undef\n",
    ])
    def test_config_preserving_rejects_malformed(self, source):
        with pytest.raises(PreprocessorError):
            preprocess(source)


# ---------------------------------------------------------------------------
# rendering: identifier + literal must not glue into a prefixed literal
# ---------------------------------------------------------------------------

class TestRenderGlue:
    def test_identifier_string_needs_space(self):
        from repro.lexer.tokens import render_tokens
        tokens = [t.with_layout("") for t in lex('L "x"')
                  if t.kind is not TokenKind.EOF]
        rendered = render_tokens(tokens, with_layout=False)
        assert [t.text for t in lex(rendered)
                if t.kind is not TokenKind.EOF] == ["L", '"x"']
