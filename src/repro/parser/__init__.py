"""LR parsing substrate: grammars, LALR(1) generation, plain LR, FMLR."""

from repro.parser.ast import (Node, StaticChoice, count_choice_nodes,
                              count_nodes, dump, iter_tokens, make_choice,
                              project)
from repro.parser.context import ParserContext
from repro.parser.grammar import (AUGMENTED, END, Assoc, Build, Grammar,
                                  GrammarError, Production)
from repro.parser.lalr import Conflict, Tables, generate
from repro.parser.lr import LRParser, ParseError

__all__ = [
    "AUGMENTED", "END", "Assoc", "Build", "Conflict", "Grammar",
    "GrammarError", "LRParser", "Node", "ParseError", "ParserContext",
    "Production", "StaticChoice", "Tables", "count_choice_nodes",
    "count_nodes", "dump", "generate", "iter_tokens", "make_choice",
    "project",
]
