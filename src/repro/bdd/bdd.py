"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

SuperC represents presence conditions as BDDs (the paper uses JavaBDD):
they are canonical, so two boolean functions are equal if and only if
their BDD representations are the same node, which makes infeasibility
testing (``c == FALSE``) and condition comparison constant time.

This module is a self-contained, hash-consed ROBDD implementation with
the operations the preprocessor and FMLR parser need: negation,
conjunction, disjunction, implication, equivalence, restriction,
satisfiability, and model enumeration.

Variables are interned by name in a :class:`BDDManager`; variable order
is the order of first registration.  All nodes created by one manager
may be freely combined with each other but never with nodes from another
manager.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class BDDNode:
    """A node in the shared BDD DAG.

    Terminal nodes have ``var is None`` and carry ``value`` True/False.
    Internal nodes test ``var`` (an integer index) and branch to ``low``
    (var=False) and ``high`` (var=True).  Nodes are hash-consed by the
    manager: structural equality is identity.
    """

    __slots__ = ("var", "low", "high", "value", "manager", "_id")

    def __init__(self, manager: "BDDManager", var: Optional[int],
                 low: Optional["BDDNode"], high: Optional["BDDNode"],
                 value: Optional[bool], node_id: int):
        self.manager = manager
        self.var = var
        self.low = low
        self.high = high
        self.value = value
        self._id = node_id

    # -- structure ---------------------------------------------------

    def is_terminal(self) -> bool:
        """Return True for the constant nodes TRUE and FALSE."""
        return self.var is None

    def is_true(self) -> bool:
        """Return True only for the constant TRUE node."""
        return self.var is None and self.value is True

    def is_false(self) -> bool:
        """Return True only for the constant FALSE node."""
        return self.var is None and self.value is False

    # -- boolean algebra ---------------------------------------------

    def __invert__(self) -> "BDDNode":
        return self.manager.apply_not(self)

    def __and__(self, other: "BDDNode") -> "BDDNode":
        return self.manager.apply_and(self, other)

    def __or__(self, other: "BDDNode") -> "BDDNode":
        return self.manager.apply_or(self, other)

    def __xor__(self, other: "BDDNode") -> "BDDNode":
        return self.manager.apply_xor(self, other)

    def implies(self, other: "BDDNode") -> "BDDNode":
        """Return the BDD for ``self -> other``."""
        return self.manager.apply_or(self.manager.apply_not(self), other)

    def equiv(self, other: "BDDNode") -> "BDDNode":
        """Return the BDD for ``self <-> other``."""
        return self.manager.apply_not(self.manager.apply_xor(self, other))

    # -- queries -----------------------------------------------------

    def is_satisfiable(self) -> bool:
        """A reduced BDD is satisfiable iff it is not the FALSE node."""
        return not self.is_false()

    def is_tautology(self) -> bool:
        """A reduced BDD is a tautology iff it is the TRUE node."""
        return self.is_true()

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment of variable names.

        Missing variables default to False, matching the preprocessor
        convention that unset configuration variables are undefined.
        """
        node = self
        names = self.manager._names
        while not node.is_terminal():
            if assignment.get(names[node.var], False):
                node = node.high
            else:
                node = node.low
        return bool(node.value)

    def restrict(self, assignment: Dict[str, bool]) -> "BDDNode":
        """Partially evaluate: fix some variables to constants."""
        by_index = {
            self.manager._index[name]: value
            for name, value in assignment.items()
            if name in self.manager._index
        }
        return self.manager._restrict(self, by_index, {})

    def support(self) -> Tuple[str, ...]:
        """Return the names of variables this function depends on."""
        seen: set = set()
        stack = [self]
        visited: set = set()
        while stack:
            node = stack.pop()
            if id(node) in visited or node.is_terminal():
                continue
            visited.add(id(node))
            seen.add(node.var)
            stack.append(node.low)
            stack.append(node.high)
        return tuple(self.manager._names[v] for v in sorted(seen))

    def sat_count(self, variables: Optional[Iterable[str]] = None) -> int:
        """Count satisfying assignments over ``variables``.

        Defaults to the variables in this node's support.
        """
        names = tuple(variables) if variables is not None else self.support()
        for name in names:
            self.manager.var(name)  # register any not-yet-seen variables
        order = sorted(self.manager._index[n] for n in names)
        for name in self.support():
            if self.manager._index[name] not in order:
                raise ValueError(
                    "sat_count variables must cover the support; "
                    f"missing {name!r}")
        cache: Dict[Tuple[int, int], int] = {}

        def count(node: "BDDNode", depth: int) -> int:
            # depth indexes into `order`; free variables between levels
            # multiply the count by two.
            if node.is_terminal():
                return (1 << (len(order) - depth)) if node.value else 0
            key = (node._id, depth)
            if key in cache:
                return cache[key]
            level = order.index(node.var)
            factor = 1 << (level - depth)
            result = factor * (count(node.low, level + 1) +
                               count(node.high, level + 1))
            cache[key] = result
            return result

        return count(self, 0)

    def one_sat(self) -> Optional[Dict[str, bool]]:
        """Return one satisfying partial assignment, or None."""
        if self.is_false():
            return None
        names = self.manager._names
        assignment: Dict[str, bool] = {}
        node = self
        while not node.is_terminal():
            if not node.low.is_false():
                assignment[names[node.var]] = False
                node = node.low
            else:
                assignment[names[node.var]] = True
                node = node.high
        return assignment

    def all_sat(self) -> Iterator[Dict[str, bool]]:
        """Yield all satisfying partial assignments (cube enumeration)."""
        if self.is_false():
            return
        names = self.manager._names

        def walk(node: "BDDNode",
                 partial: Dict[str, bool]) -> Iterator[Dict[str, bool]]:
            if node.is_terminal():
                if node.value:
                    yield dict(partial)
                return
            name = names[node.var]
            partial[name] = False
            yield from walk(node.low, partial)
            partial[name] = True
            yield from walk(node.high, partial)
            del partial[name]

        yield from walk(self, {})

    def iter_models(self, variables: Optional[Iterable[str]] = None) \
            -> Iterator[Dict[str, bool]]:
        """Yield *total* satisfying assignments over ``variables``.

        Unlike :meth:`all_sat`, which yields partial cubes, every
        yielded dict assigns every requested variable; variables absent
        from a cube are expanded both ways.  ``variables`` defaults to
        the node's support and must cover it.  This is the
        sat-assignment iterator the differential harness
        (:mod:`repro.qa`) uses to enumerate configurations.
        """
        names = tuple(variables) if variables is not None \
            else self.support()
        for name in names:
            self.manager.var(name)
        missing = [name for name in self.support() if name not in names]
        if missing:
            raise ValueError(
                "iter_models variables must cover the support; "
                f"missing {missing[0]!r}")
        for cube in self.all_sat():
            free = [name for name in names if name not in cube]
            for bits in itertools.product((False, True),
                                          repeat=len(free)):
                model = dict(cube)
                model.update(zip(free, bits))
                yield model

    def random_model(self, rng,
                     variables: Optional[Iterable[str]] = None) \
            -> Optional[Dict[str, bool]]:
        """One uniformly random total satisfying assignment, or None.

        ``rng`` is a :class:`random.Random`; sampling walks the DAG
        weighting each branch by its model count, so every satisfying
        assignment over ``variables`` is equally likely.
        """
        if self.is_false():
            return None
        names = tuple(variables) if variables is not None \
            else self.support()
        total = self.sat_count(names)  # also validates coverage
        if total == 0:
            return None
        order = sorted((self.manager._index[n] for n in names))
        by_index = {index: self.manager._names[index] for index in order}
        model: Dict[str, bool] = {}
        node = self
        depth = 0
        while depth < len(order):
            index = order[depth]
            if node.is_terminal() or node.var != index:
                # Free variable at this level: both values satisfiable.
                model[by_index[index]] = bool(rng.getrandbits(1))
                depth += 1
                continue
            low_count = node.low.sat_count(
                [by_index[i] for i in order[depth + 1:]]) \
                if not node.low.is_false() else 0
            high_count = node.high.sat_count(
                [by_index[i] for i in order[depth + 1:]]) \
                if not node.high.is_false() else 0
            pick_high = rng.randrange(low_count + high_count) >= low_count
            model[by_index[index]] = pick_high
            node = node.high if pick_high else node.low
            depth += 1
        return model

    # -- rendering ---------------------------------------------------

    def to_expr_string(self) -> str:
        """Render as a DNF-ish string of satisfying cubes (for messages)."""
        if self.is_true():
            return "1"
        if self.is_false():
            return "0"
        cubes = []
        for cube in itertools.islice(self.all_sat(), 8):
            terms = [name if value else "!" + name
                     for name, value in sorted(cube.items())]
            cubes.append(" && ".join(terms) if terms else "1")
        rendered = " || ".join(cubes)
        if sum(1 for _ in itertools.islice(self.all_sat(), 9)) > 8:
            rendered += " || ..."
        return rendered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_terminal():
            return "BDD(TRUE)" if self.value else "BDD(FALSE)"
        return f"BDD({self.to_expr_string()})"

    def __hash__(self) -> int:
        return self._id

    # Equality is identity (hash-consing guarantees canonicity); we do
    # not override __eq__ so `==` stays `is`-like for nodes of one
    # manager, which keeps set/dict membership fast.


class BDDManager:
    """Creates, interns, and combines BDD nodes.

    One manager per analysis run; the preprocessor and the parser share
    a single manager so presence conditions stay comparable.
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._unique: Dict[Tuple[int, int, int], BDDNode] = {}
        self._apply_cache: Dict[Tuple[str, int, int], BDDNode] = {}
        self._not_cache: Dict[int, BDDNode] = {}
        self._next_id = 0
        # Observability counters (repro.obs): node allocations and
        # op-cache effectiveness.  Plain integer increments on the
        # apply path — cheap relative to the dict work they sit next
        # to, and they make BDD pressure visible in per-unit profiles.
        self.nodes_created = 0
        self.apply_calls = 0
        self.apply_cache_hits = 0
        self.false = self._terminal(False)
        self.true = self._terminal(True)

    # -- node construction -------------------------------------------

    def _terminal(self, value: bool) -> BDDNode:
        node = BDDNode(self, None, None, None, value, self._next_id)
        self._next_id += 1
        return node

    def _mk(self, var: int, low: BDDNode, high: BDDNode) -> BDDNode:
        if low is high:
            return low
        key = (var, low._id, high._id)
        node = self._unique.get(key)
        if node is None:
            node = BDDNode(self, var, low, high, None, self._next_id)
            self._next_id += 1
            self.nodes_created += 1
            self._unique[key] = node
        return node

    def var(self, name: str) -> BDDNode:
        """Return (creating if needed) the BDD for a variable."""
        index = self._index.get(name)
        if index is None:
            index = len(self._names)
            self._names.append(name)
            self._index[name] = index
        return self._mk(index, self.false, self.true)

    def nvar(self, name: str) -> BDDNode:
        """Return the BDD for a negated variable."""
        return self.apply_not(self.var(name))

    def constant(self, value: bool) -> BDDNode:
        """Return the TRUE or FALSE terminal."""
        return self.true if value else self.false

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(self._names)

    def num_nodes(self) -> int:
        """Number of live interned internal nodes (for instrumentation)."""
        return len(self._unique)

    def stats(self) -> Dict[str, float]:
        """Observability snapshot: node and op-cache counters, with
        the op-cache hit rate precomputed for profiles."""
        calls = self.apply_calls
        return {
            "nodes": len(self._unique),
            "nodes_created": self.nodes_created,
            "variables": len(self._names),
            "apply_calls": calls,
            "apply_cache_hits": self.apply_cache_hits,
            "apply_cache_hit_rate":
                round(self.apply_cache_hits / calls, 4) if calls
                else 0.0,
        }

    # -- apply -------------------------------------------------------

    def apply_not(self, node: BDDNode) -> BDDNode:
        cached = self._not_cache.get(node._id)
        if cached is not None:
            return cached
        if node.is_terminal():
            result = self.false if node.value else self.true
        else:
            result = self._mk(node.var, self.apply_not(node.low),
                              self.apply_not(node.high))
        self._not_cache[node._id] = result
        return result

    def _apply(self, op: str, left: BDDNode, right: BDDNode) -> BDDNode:
        # Shannon expansion on the smaller top variable; terminal cases
        # are dispatched per operator below.
        if op == "and":
            if left.is_false() or right.is_false():
                return self.false
            if left.is_true():
                return right
            if right.is_true():
                return left
            if left is right:
                return left
        elif op == "or":
            if left.is_true() or right.is_true():
                return self.true
            if left.is_false():
                return right
            if right.is_false():
                return left
            if left is right:
                return left
        elif op == "xor":
            if left is right:
                return self.false
            if left.is_false():
                return right
            if right.is_false():
                return left
            if left.is_true():
                return self.apply_not(right)
            if right.is_true():
                return self.apply_not(left)
        # Normalize operand order for the commutative cache.
        if left._id > right._id:
            left, right = right, left
        key = (op, left._id, right._id)
        self.apply_calls += 1
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.apply_cache_hits += 1
            return cached
        left_var = left.var if left.var is not None else float("inf")
        right_var = right.var if right.var is not None else float("inf")
        if left_var == right_var:
            var = left.var
            low = self._apply(op, left.low, right.low)
            high = self._apply(op, left.high, right.high)
        elif left_var < right_var:
            var = left.var
            low = self._apply(op, left.low, right)
            high = self._apply(op, left.high, right)
        else:
            var = right.var
            low = self._apply(op, left, right.low)
            high = self._apply(op, left, right.high)
        result = self._mk(var, low, high)
        self._apply_cache[key] = result
        return result

    def apply_and(self, left: BDDNode, right: BDDNode) -> BDDNode:
        self._check(left, right)
        return self._apply("and", left, right)

    def apply_or(self, left: BDDNode, right: BDDNode) -> BDDNode:
        self._check(left, right)
        return self._apply("or", left, right)

    def apply_xor(self, left: BDDNode, right: BDDNode) -> BDDNode:
        self._check(left, right)
        return self._apply("xor", left, right)

    def conjoin(self, nodes: Iterable[BDDNode]) -> BDDNode:
        """AND together an iterable of nodes (TRUE for empty)."""
        result = self.true
        for node in nodes:
            result = self.apply_and(result, node)
        return result

    def disjoin(self, nodes: Iterable[BDDNode]) -> BDDNode:
        """OR together an iterable of nodes (FALSE for empty)."""
        result = self.false
        for node in nodes:
            result = self.apply_or(result, node)
        return result

    # -- quantification ------------------------------------------------

    def exists(self, names: Iterable[str], node: BDDNode) -> BDDNode:
        """Existential quantification: ∃names. node."""
        result = node
        for name in names:
            index = self._index.get(name)
            if index is None:
                continue
            low = self._restrict(result, {index: False}, {})
            high = self._restrict(result, {index: True}, {})
            result = self.apply_or(low, high)
        return result

    def forall(self, names: Iterable[str], node: BDDNode) -> BDDNode:
        """Universal quantification: ∀names. node."""
        result = node
        for name in names:
            index = self._index.get(name)
            if index is None:
                continue
            low = self._restrict(result, {index: False}, {})
            high = self._restrict(result, {index: True}, {})
            result = self.apply_and(low, high)
        return result

    def project_onto(self, names: Iterable[str],
                     node: BDDNode) -> BDDNode:
        """Quantify away every variable *not* in ``names``: the
        condition's shadow on a chosen sub-space of configuration
        variables (useful to ask "which CONFIG_FOO settings can enable
        this block?")."""
        keep = set(names)
        others = [name for name in node.support() if name not in keep]
        return self.exists(others, node)

    # -- restriction --------------------------------------------------

    def _restrict(self, node: BDDNode, fixed: Dict[int, bool],
                  cache: Dict[int, BDDNode]) -> BDDNode:
        if node.is_terminal():
            return node
        cached = cache.get(node._id)
        if cached is not None:
            return cached
        if node.var in fixed:
            branch = node.high if fixed[node.var] else node.low
            result = self._restrict(branch, fixed, cache)
        else:
            result = self._mk(node.var,
                              self._restrict(node.low, fixed, cache),
                              self._restrict(node.high, fixed, cache))
        cache[node._id] = result
        return result

    # -- internal -----------------------------------------------------

    def _check(self, left: BDDNode, right: BDDNode) -> None:
        if left.manager is not self or right.manager is not self:
            raise ValueError("cannot combine BDD nodes from different "
                             "managers")
