"""The C grammar, token classification, and typedef context."""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Optional

from repro.cgrammar.classify import (CONSTANT, IDENTIFIER, STRING,
                                     TYPEDEF_NAME, classify)
from repro.cgrammar.grammar_def import (C_KEYWORDS, GNU_ALIASES,
                                        build_c_grammar)
from repro.cgrammar.typedefs import (CContext, SymbolStats,
                                     make_context_factory)
from repro.parser.lalr import Tables, generate

_TABLES: Optional[Tables] = None


def _cache_path(key: str) -> str:
    root = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-superc")
    return os.path.join(root, f"ctables-{key}.pickle")


def _grammar_key(grammar) -> str:
    digest = hashlib.sha256()
    for production in grammar.productions:
        digest.update(repr((production.lhs, production.rhs,
                            production.build.value,
                            production.node_name)).encode())
    digest.update(repr(sorted(grammar.complete)).encode())
    return digest.hexdigest()[:16]


def c_tables(use_cache: bool = True) -> Tables:
    """LALR tables for the C grammar (generated once per process and
    cached on disk across processes)."""
    global _TABLES
    if _TABLES is not None:
        return _TABLES
    grammar = build_c_grammar()
    key = _grammar_key(grammar)
    path = _cache_path(key)
    if use_cache and os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                _TABLES = pickle.load(handle)
            return _TABLES
        except Exception:
            pass  # fall through to regeneration
    _TABLES = generate(grammar)
    if use_cache:
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "wb") as handle:
                pickle.dump(_TABLES, handle)
        except OSError:
            pass
    return _TABLES


__all__ = [
    "CContext", "CONSTANT", "C_KEYWORDS", "GNU_ALIASES", "IDENTIFIER",
    "STRING", "SymbolStats", "TYPEDEF_NAME", "build_c_grammar",
    "c_tables", "classify", "make_context_factory",
]
