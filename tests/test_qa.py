"""Tests for the repro.qa differential-checking subsystem."""

from __future__ import annotations

import random

import pytest

from repro.bdd import BDDManager
from repro.corpus.fuzz import FuzzSpec, generate_fuzz_unit
from repro.engine import STATUS_DISAGREE, STATUS_OK
from repro.engine.scheduler import BatchEngine, CorpusJob, EngineConfig
from repro.qa import (ConfigSampler, DifferentialChecker, ShrinkBudget,
                      check_lexer_invariant, realize_model, run_fuzz,
                      shrink, unterminated_literal)
from repro.qa.harness import check_unit, shrink_disagreement


@pytest.fixture(scope="module")
def checker():
    return DifferentialChecker(files={}, include_paths=(),
                               max_configs=8)


# ---------------------------------------------------------------------------
# BDD sat-assignment iteration
# ---------------------------------------------------------------------------

class TestBDDModels:
    def test_iter_models_total(self):
        manager = BDDManager()
        a, b, c = (manager.var(n) for n in "abc")
        node = (a & ~b) | c
        models = list(node.iter_models(["a", "b", "c"]))
        assert len(models) == 5
        assert all(set(m) == {"a", "b", "c"} for m in models)
        assert all(node.evaluate(m) for m in models)

    def test_iter_models_false(self):
        manager = BDDManager()
        assert list(manager.false.iter_models([])) == []

    def test_iter_models_requires_support(self):
        manager = BDDManager()
        a = manager.var("a")
        with pytest.raises(ValueError):
            list(a.iter_models(["b"]))

    def test_random_model_satisfies(self):
        manager = BDDManager()
        a, b, c = (manager.var(n) for n in "abc")
        node = (a | b) & ~c
        rng = random.Random(7)
        for _ in range(50):
            model = node.random_model(rng)
            assert node.evaluate(model)

    def test_random_model_unsat(self):
        manager = BDDManager()
        a = manager.var("a")
        assert (a & ~a).random_model(random.Random(0)) is None

    def test_random_model_deterministic(self):
        manager = BDDManager()
        node = manager.var("x") | manager.var("y")
        first = node.random_model(random.Random(3), ["x", "y"])
        second = node.random_model(random.Random(3), ["x", "y"])
        assert first == second


# ---------------------------------------------------------------------------
# configuration sampling
# ---------------------------------------------------------------------------

class TestConfigSampler:
    def test_enumerates_small_spaces(self):
        sampler = ConfigSampler(["A", "B"])
        configs = sampler.configs(10)
        assert len(configs) == 4  # (undef, "1")^2
        assert {} in configs
        assert {"A": "1", "B": "1"} in configs

    def test_sampling_is_seeded(self):
        sampler = ConfigSampler([f"V{i}" for i in range(10)], seed=5)
        assert sampler.space_size == 2 ** 10
        first = sampler.configs(16)
        second = ConfigSampler([f"V{i}" for i in range(10)],
                               seed=5).configs(16)
        assert first == second
        assert len(first) == 16
        assert {} in first  # the all-undefined corner

    def test_realize_model(self):
        model = {"defined:A": True, "value:A": True, "defined:B": False}
        assert realize_model(model) == {"A": "1"}
        # value true while defined false is unrealizable
        assert realize_model({"defined:A": False,
                              "value:A": True}) is None


# ---------------------------------------------------------------------------
# the independent literal invariant
# ---------------------------------------------------------------------------

class TestLexerInvariant:
    @pytest.mark.parametrize("text", [
        '"abc\\"', "'x\\'", '"abc', '"abc\nint x;'])
    def test_scan_flags_open_literals(self, text):
        assert unterminated_literal(text) is not None

    @pytest.mark.parametrize("text", [
        '"abc"', '"a\\"b"', "int x = 'q';", '// "open\n',
        '/* "open */', '"ab\\\ncd"'])
    def test_scan_accepts_closed_literals(self, text):
        assert unterminated_literal(text) is None

    def test_agreement_with_fixed_lexer(self):
        # The fixed lexer rejects what the scan rejects: no violation.
        assert check_lexer_invariant('"abc\\"') is None
        assert check_lexer_invariant('"abc"') is None

    def test_violation_when_lexer_is_lax(self, monkeypatch, checker):
        import repro.qa.differential as differential
        monkeypatch.setattr(differential, "lex",
                            lambda text, filename="<input>": [])
        outcome = checker.check_source('const char *s = "bad\\"',
                                       "inv.c")
        assert any(d.kind == "invariant"
                   for d in outcome.disagreements)


# ---------------------------------------------------------------------------
# the ddmin shrinker
# ---------------------------------------------------------------------------

class TestShrinker:
    def test_shrinks_to_needle_lines(self):
        lines = [f"filler_{i}" for i in range(30)]
        lines.insert(11, "NEEDLE one")
        lines.insert(23, "NEEDLE two")
        text = "\n".join(lines)
        result = shrink(text, lambda t: t.count("NEEDLE") >= 2)
        assert result == "NEEDLE\nNEEDLE"

    def test_shrinks_within_lines(self):
        text = "keep NEEDLE junk junk junk"
        result = shrink(text, lambda t: "NEEDLE" in t)
        assert result == "NEEDLE"

    def test_budget_caps_predicate_calls(self):
        budget = ShrinkBudget(5)
        calls = []
        shrink("\n".join(f"l{i}" for i in range(100)),
               lambda t: bool(calls.append(1)) or True, budget)
        assert len(calls) <= 5

    def test_non_reproducing_input_unchanged(self):
        assert shrink("abc", lambda t: False) == "abc"

    def test_crashing_predicate_counts_as_no(self):
        def explode(text):
            if "b" not in text:
                raise RuntimeError("boom")
            return "a" in text
        assert "a" in shrink("a\nb\nc", explode)


# ---------------------------------------------------------------------------
# differential checking of generated units
# ---------------------------------------------------------------------------

class TestDifferentialChecker:
    def test_seeded_units_agree(self, checker):
        for seed in range(6):
            unit = generate_fuzz_unit(seed)
            outcome = check_unit(checker, unit)
            assert outcome.ok, outcome.disagreements
            assert outcome.configs_checked > 0

    def test_generation_is_deterministic(self):
        assert generate_fuzz_unit(3).text == generate_fuzz_unit(3).text
        assert generate_fuzz_unit(3).text != generate_fuzz_unit(4).text

    def test_weights_select_features(self):
        spec = FuzzSpec(items=6, weights={
            "variadic": 1, "paste_conditional": 0, "guarded_arith": 0,
            "escaped_literal": 0, "conditional_typedef": 0,
            "conditional_function": 0, "plain_function": 0})
        text = generate_fuzz_unit(0, spec).text
        assert "__VA_ARGS__" in text or "args" in text
        assert "GLUE" not in text

    def test_catches_conditional_macro_divergence(self, checker):
        # A handwritten unit where the pipelines MUST agree; sabotage
        # the comparison by checking a wrong config instead.
        source = ("#ifdef A\n#define V 1\n#else\n#define V 2\n#endif\n"
                  "int x = V;\n")
        outcome = checker.check_source(source, "unit.c",
                                       configs=[{}, {"A": "1"}])
        assert outcome.ok


VARIADIC_ONLY = FuzzSpec(weights={
    "variadic": 10, "paste_conditional": 0, "guarded_arith": 0,
    "escaped_literal": 0, "conditional_typedef": 0,
    "conditional_function": 0, "plain_function": 0})

GUARD_ONLY = FuzzSpec(weights={
    "variadic": 0, "paste_conditional": 0, "guarded_arith": 10,
    "escaped_literal": 0, "conditional_typedef": 0,
    "conditional_function": 0, "plain_function": 0})


def _fake_non_variadic(entry):
    class FakeEntry:
        def __getattr__(self, name):
            if name == "variadic":
                return False
            return getattr(entry, name)
    return FakeEntry()


def _find_disagreement(checker, spec, seeds=12):
    for seed in range(seeds):
        unit = generate_fuzz_unit(seed, spec)
        outcome = check_unit(checker, unit)
        if not outcome.ok:
            return unit, outcome
    return None, None


class TestReintroducedBugs:
    """Reintroducing each fixed bug must produce a counterexample."""

    def test_comma_deletion_in_one_pipeline(self, monkeypatch, checker):
        import repro.cpp.expansion as expansion
        orig = expansion.Expander._paste_and_flatten
        monkeypatch.setattr(
            expansion.Expander, "_paste_and_flatten",
            lambda self, entry, *a, **k:
                orig(self, _fake_non_variadic(entry), *a, **k))
        unit, outcome = _find_disagreement(checker, VARIADIC_ONLY)
        assert unit is not None
        kinds = {d.kind for d in outcome.disagreements}
        assert kinds & {"error-agreement", "tokens"}
        # ... and the counterexample shrinks to a small reproducer.
        first = outcome.disagreements[0]
        shrunk, _calls = shrink_disagreement(
            checker, unit.text, first.kind, unit.seed,
            ShrinkBudget(150), detail=first.detail)
        assert len(shrunk.splitlines()) <= 8
        assert "##" in shrunk

    def test_comma_deletion_in_both_pipelines(self, monkeypatch,
                                              checker):
        import repro.cpp.expansion as expansion
        import repro.cpp.simple as simple
        orig_e = expansion.Expander._paste_and_flatten
        orig_s = simple.SimplePreprocessor._resolve_pastes
        monkeypatch.setattr(
            expansion.Expander, "_paste_and_flatten",
            lambda self, entry, *a, **k:
                orig_e(self, _fake_non_variadic(entry), *a, **k))
        monkeypatch.setattr(
            simple.SimplePreprocessor, "_resolve_pastes",
            lambda self, macro, *a, **k:
                orig_s(self, _fake_non_variadic(macro), *a, **k))
        unit, outcome = _find_disagreement(checker, VARIADIC_ONLY)
        # Token streams agree, but expect_parseable flags the unit.
        assert unit is not None
        assert any(d.kind == "unparseable"
                   for d in outcome.disagreements)

    def test_non_short_circuit_conversion(self, monkeypatch, checker):
        from repro.cpp import conditions
        from repro.cpp.conditions import _Value
        orig = conditions.ConditionConverter._binary

        def buggy(self, expr):
            if expr.op in ("&&", "||"):
                left = self._boolify(self._convert(expr.operands[0]))
                right = self._boolify(self._convert(expr.operands[1]))
                return _Value(bdd=(left & right) if expr.op == "&&"
                              else (left | right))
            return orig(self, expr)

        monkeypatch.setattr(conditions.ConditionConverter, "_binary",
                            buggy)
        unit, outcome = _find_disagreement(checker, GUARD_ONLY)
        assert unit is not None
        assert any(d.kind == "error-agreement"
                   for d in outcome.disagreements)


# ---------------------------------------------------------------------------
# engine integration (custom runner) and the harness
# ---------------------------------------------------------------------------

def _toy_runner(state, unit):
    return {"status": STATUS_OK, "note": unit,
            "timing": {"lex": 0.0, "preprocess": 0.0, "parse": 0.0},
            "subparsers": {"max": 0, "forks": 0, "merges": 0},
            "preprocessor": {}, "failures": [], "error": None}


class TestEngineRunner:
    def test_custom_runner_records(self):
        job = CorpusJob(["u1", "u2"], files={}, runner=_toy_runner)
        report = BatchEngine(EngineConfig(
            use_result_cache=False)).run(job)
        assert report.all_ok
        assert sorted(r["note"] for r in report.records) == ["u1", "u2"]
        assert all(r["attempt"] == 1 for r in report.records)

    def test_dotted_runner_resolution(self):
        from repro.engine.scheduler import _resolve_hook
        resolved = _resolve_hook("repro.qa.harness:run_fuzz_unit")
        from repro.qa.harness import run_fuzz_unit
        assert resolved is run_fuzz_unit


class TestHarness:
    def test_run_fuzz_smoke(self):
        outcome = run_fuzz(units=4, seed=0, workers=1,
                           timeout_seconds=30.0)
        assert outcome.clean
        assert outcome.report.by_status == {STATUS_OK: 4}
        assert not outcome.counterexamples

    def test_run_fuzz_reports_counterexample(self, monkeypatch):
        import repro.cpp.expansion as expansion
        orig = expansion.Expander._paste_and_flatten
        monkeypatch.setattr(
            expansion.Expander, "_paste_and_flatten",
            lambda self, entry, *a, **k:
                orig(self, _fake_non_variadic(entry), *a, **k))
        outcome = run_fuzz(units=6, seed=0, spec=VARIADIC_ONLY,
                           workers=1, timeout_seconds=30.0,
                           shrink_budget=120)
        assert not outcome.clean
        assert STATUS_DISAGREE in outcome.report.by_status
        assert outcome.counterexamples
        example = outcome.counterexamples[0]
        assert example.shrunk
        assert len(example.shrunk.splitlines()) <= \
            len(example.original.splitlines())

    def test_metrics_include_counterexample_events(self, monkeypatch):
        import repro.cpp.expansion as expansion
        from repro.engine import MetricsStream
        orig = expansion.Expander._paste_and_flatten
        monkeypatch.setattr(
            expansion.Expander, "_paste_and_flatten",
            lambda self, entry, *a, **k:
                orig(self, _fake_non_variadic(entry), *a, **k))
        metrics = MetricsStream(keep_events=True)
        run_fuzz(units=3, seed=0, spec=VARIADIC_ONLY, workers=1,
                 timeout_seconds=30.0, shrink_budget=60,
                 metrics=metrics)
        events = {e["event"] for e in metrics.events}
        assert "counterexample" in events
        assert {"run-start", "unit", "run-end"} <= events
