"""SuperC: the end-to-end configuration-preserving C front-end.

Ties together the three processing steps (Table 1): lexing,
configuration-preserving preprocessing, and Fork-Merge LR parsing with
the C grammar and the conditional symbol table, producing an AST with
static choice nodes that covers every configuration at once.

Typical use::

    from repro import SuperC
    superc = SuperC(fs=DictFileSystem(files), include_paths=["include"])
    result = superc.parse_source(source, "driver.c")
    result.ast                # Node / StaticChoice tree
    result.unit.stats         # Table 3 preprocessor statistics
    result.parse.stats        # Figure 8 subparser statistics
    result.timing             # Figure 10 latency breakdown
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bdd import BDDManager
from repro.cgrammar import (SymbolStats, c_tables, classify,
                            make_context_factory)
from repro.cpp import CompilationUnit, FileSystem, Preprocessor
from repro.cpp.tree import token_count
from repro.errors import (Diagnostic, PHASE_RESOURCE, ResourceBudget,
                          SEVERITY_CONFIG, SEVERITY_WARNING)
from repro.obs.profile import Profile
from repro.obs.tracer import NULL_TRACER
from repro.parser.fmlr import (FMLROptions, FMLRParser, FMLRResult,
                               FMLRStats, ParseFailure)
from repro.parser.lalr import Tables
from repro.parser.lr import LRParser

# SuperCResult.status values.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_PARSE_FAILED = "parse-failed"


class Timing:
    """Latency breakdown in seconds (Figure 10)."""

    def __init__(self, lex: float, preprocess: float, parse: float):
        self.lex = lex
        self.preprocess = preprocess
        self.parse = parse

    @property
    def total(self) -> float:
        return self.lex + self.preprocess + self.parse

    def as_dict(self) -> Dict[str, float]:
        return {"lex": self.lex, "preprocess": self.preprocess,
                "parse": self.parse, "total": self.total}

    def __repr__(self) -> str:
        return (f"Timing(lex={self.lex:.4f}, "
                f"preprocess={self.preprocess:.4f}, "
                f"parse={self.parse:.4f})")


class SuperCResult:
    """Everything produced for one compilation unit."""

    def __init__(self, unit: CompilationUnit, parse: FMLRResult,
                 symbol_stats: SymbolStats, timing: Timing,
                 profile: Optional[Profile] = None):
        self.unit = unit
        self.parse = parse
        self.symbol_stats = symbol_stats
        self.timing = timing
        # Per-unit observability snapshot (repro.obs.Profile) when the
        # parse ran under an enabled tracer; None otherwise.
        self.profile = profile

    @property
    def ok(self) -> bool:
        return self.parse.ok

    @property
    def ast(self) -> Any:
        return self.parse.value

    @property
    def failures(self) -> List[ParseFailure]:
        return self.parse.failures

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """All condition-scoped diagnostics, preprocessing then parse."""
        return list(self.unit.diagnostics) + list(self.parse.diagnostics)

    @property
    def invalid_configs(self) -> Any:
        """BDD over configurations with no usable AST: recorded
        preprocessor error conditions plus rejected or degraded-away
        parse configurations."""
        return ~self.unit.feasible_condition | self.parse.invalid_configs

    @property
    def degraded(self) -> bool:
        return self.status == STATUS_DEGRADED

    @property
    def status(self) -> str:
        """``ok`` (every feasible configuration parsed, nothing
        confined), ``degraded`` (a partial result: some configurations
        were pruned, rejected, or degraded away, but an AST exists), or
        ``parse-failed`` (no configuration produced an AST)."""
        has_config_errors = bool(self.unit.error_conditions) or any(
            diag.severity == SEVERITY_CONFIG
            for diag in self.unit.diagnostics)
        if self.parse.accepted:
            if self.parse.failures or self.parse.degraded \
                    or has_config_errors:
                return STATUS_DEGRADED
            return STATUS_OK
        if self.parse.degraded and not self.parse.failures:
            # Everything still live was degraded away before acceptance.
            return STATUS_DEGRADED
        return STATUS_PARSE_FAILED


class SuperC:
    """Configuration-preserving parser for all of C."""

    def __init__(self, fs: Optional[FileSystem] = None,
                 include_paths: Sequence[str] = (),
                 builtins: Optional[Dict[str, str]] = None,
                 extra_definitions: Optional[Dict[str, str]] = None,
                 options: Optional[FMLROptions] = None,
                 tables: Optional[Tables] = None,
                 context_factory_maker: Optional[Callable] = None,
                 budget: Optional[ResourceBudget] = None,
                 tracer: Any = None,
                 config: Any = None):
        # All knobs funnel through one repro.api.Config so every entry
        # point (SuperC, parse_c, repro.parse, the engine) resolves
        # defaults identically.  Imported lazily: repro.api imports this
        # module at its top level.
        if config is None:
            from repro.api import Config
            config = Config(fs=fs, include_paths=tuple(include_paths),
                            builtins=builtins,
                            extra_definitions=extra_definitions,
                            options=options, tables=tables,
                            context_factory_maker=context_factory_maker,
                            budget=budget, tracer=tracer)
        self.config = config
        self.fs = config.resolved_fs()
        self.include_paths = list(config.include_paths)
        self.builtins = config.builtins
        # The four non-boolean macro definitions of §6.3 step 3 (and
        # any other overrides) are supplied here.
        self.extra_definitions = config.extra_definitions
        self.options = config.resolved_options()
        # Per-unit resource limits; trips degrade instead of crashing.
        self.budget = config.budget
        # NULL_TRACER keeps the un-traced hot path free of event
        # allocation; pass a repro.obs.Tracer to observe the pipeline.
        self.tracer = config.tracer if config.tracer is not None \
            else NULL_TRACER
        # Prebuilt tables and a (manager, stats) -> context-factory
        # maker can be injected so repeated construction — the batch
        # engine builds one SuperC per corpus job per worker — shares
        # one table build instead of paying c_tables() per instance.
        self.tables = config.tables if config.tables is not None \
            else c_tables()
        self.context_factory_maker = (config.context_factory_maker
                                      or make_context_factory)

    # -- pipeline -------------------------------------------------------------

    def preprocess_source(self, text: str,
                          filename: str = "<input>") -> CompilationUnit:
        """Run only the configuration-preserving preprocessor."""
        preprocessor = self._preprocessor()
        return preprocessor.preprocess(text, filename)

    def parse_source(self, text: str,
                     filename: str = "<input>") -> SuperCResult:
        """Preprocess and parse source text."""
        tracer = self.tracer
        mark = tracer.mark() if tracer.enabled else None
        with tracer.span("unit", file=filename):
            preprocessor = self._preprocessor()
            with tracer.span("preprocess", file=filename):
                pp_start = time.perf_counter()
                unit = preprocessor.preprocess(text, filename)
                pp_seconds = time.perf_counter() - pp_start
            result = self._parse_unit(
                unit, preprocessor.lex_seconds,
                pp_seconds - preprocessor.lex_seconds)
        # Attach the profile once the unit span has closed so the
        # window captures the whole span tree.
        result.profile = self._profile(unit, result.parse.stats,
                                       result.timing, mark)
        return result

    def parse_file(self, path: str) -> SuperCResult:
        """Preprocess and parse a file from the file system."""
        if self.fs is None:
            raise ValueError("SuperC needs a file system to parse files")
        text = self.fs.read(path)
        if text is None:
            raise FileNotFoundError(path)
        return self.parse_source(text, path)

    def parse_unit(self, unit: CompilationUnit) -> SuperCResult:
        """Parse an already-preprocessed compilation unit."""
        tracer = self.tracer
        mark = tracer.mark() if tracer.enabled else None
        result = self._parse_unit(unit, 0.0, 0.0)
        result.profile = self._profile(unit, result.parse.stats,
                                       result.timing, mark)
        return result

    # -- internals ---------------------------------------------------------------

    def _preprocessor(self) -> Preprocessor:
        return Preprocessor(self.fs, include_paths=self.include_paths,
                            builtins=self.builtins,
                            extra_definitions=self.extra_definitions,
                            budget=self.budget,
                            tracer=self.tracer)

    def _parse_unit(self, unit: CompilationUnit, lex_seconds: float,
                    pp_seconds: float) -> SuperCResult:
        symbol_stats = SymbolStats()
        budget = self.budget
        if budget is not None and budget.max_tokens:
            total = token_count(unit.tree)
            if total > budget.max_tokens:
                # Too large to parse under this budget: return a
                # degraded result covering every feasible configuration
                # instead of attempting (and possibly thrashing on) the
                # parse.
                diagnostic = Diagnostic(
                    unit.feasible_condition, SEVERITY_CONFIG,
                    PHASE_RESOURCE,
                    f"token budget of {budget.max_tokens} exceeded "
                    f"({total} tokens): parse skipped")
                parse = FMLRResult([], [], FMLRStats(), unit.manager,
                                   [diagnostic], degraded=True)
                timing = Timing(lex_seconds, pp_seconds, 0.0)
                return SuperCResult(unit, parse, symbol_stats, timing)
        factory = self.context_factory_maker(unit.manager, symbol_stats)
        parser = FMLRParser(self.tables, classify,
                            context_factory=factory,
                            options=self.options,
                            budget=budget,
                            tracer=self.tracer)
        with self.tracer.span("parse"):
            parse_start = time.perf_counter()
            result = parser.parse(unit.tree, unit.manager,
                                  unit.feasible_condition)
            parse_seconds = time.perf_counter() - parse_start
        timing = Timing(lex_seconds, pp_seconds, parse_seconds)
        return SuperCResult(unit, result, symbol_stats, timing)

    def _profile(self, unit: CompilationUnit, stats: FMLRStats,
                 timing: Timing, mark: Any) -> Optional[Profile]:
        """Assemble the per-unit Profile from the tracer window plus the
        pipeline's own counters (FMLR, BDD manager, preprocessor)."""
        tracer = self.tracer
        if not tracer.enabled:
            return None
        counters: Dict[str, Any] = dict(stats.as_counters())
        manager_stats = getattr(unit.manager, "stats", None)
        if callable(manager_stats):
            for key, value in manager_stats().items():
                counters[f"bdd.{key}"] = value
        unit_stats = getattr(unit, "stats", None)
        as_dict = getattr(unit_stats, "as_dict", None)
        if callable(as_dict):
            for key, value in as_dict().items():
                counters[f"cpp.{key}"] = value
        return Profile.from_window(tracer, mark,
                                   phases=timing.as_dict(),
                                   extra_counters=counters)


def parse_c(text: str, files: Optional[Dict[str, str]] = None,
            include_paths: Sequence[str] = ("include",),
            builtins: Optional[Dict[str, str]] = None,
            options: Optional[FMLROptions] = None) -> SuperCResult:
    """One-call convenience: parse C source with conditionals."""
    from repro.cpp import DictFileSystem
    superc = SuperC(DictFileSystem(files or {}),
                    include_paths=include_paths, builtins=builtins,
                    options=options)
    return superc.parse_source(text)
