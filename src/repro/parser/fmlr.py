"""Fork-Merge LR parsing (Algorithm 2) with the paper's optimizations.

The engine maintains a priority queue of subparsers ordered by head
position.  Each subparser recognizes a distinct configuration: the
presence conditions of live subparsers are mutually exclusive and
together cover the feasible configuration space.

Optimizations (§4.2–4.4), all individually switchable for Figure 8:

* **token follow-set** — fork one subparser per *first language token*
  reachable through conditionals, not per conditional branch;
* **early reduces** — priority tie-breaker favouring subparsers that
  will reduce, so subparsers do not outrun each other;
* **lazy shifts** — heads that all shift stay in one multi-headed
  subparser; only the earliest head's shift is forked off;
* **shared reduces** — heads that reduce by the same production share
  one reduction of the common stack.

Disabling the follow-set gives MAPR's naive per-branch forking; with
``mapr_largest_first`` the queue uses MAPR's largest-stack-first
tie-breaker.  A kill switch bounds the live subparser count (the paper
uses 16,000 for the MAPR comparison).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (Diagnostic, PHASE_PARSE, PHASE_RESOURCE,
                          ResourceBudget, SEVERITY_CONFIG)
from repro.lexer.tokens import Token, TokenKind
from repro.obs.tracer import NULL_TRACER
from repro.parser.ast import build_value, make_choice
from repro.parser.context import ParserContext
from repro.parser.grammar import END
from repro.parser.lalr import ACCEPT, REDUCE, SHIFT, Tables
from repro.parser.stream import (BranchNode, StreamElement, TokenNode,
                                 build_stream)


class SubparserExplosion(Exception):
    """The live subparser count exceeded the kill switch."""

    def __init__(self, count: int, limit: int):
        super().__init__(
            f"subparser count {count} exceeded kill switch {limit}")
        self.count = count
        self.limit = limit


class FMLROptions:
    """Optimization switches and limits."""

    def __init__(self, follow_set: bool = True, lazy_shifts: bool = True,
                 shared_reduces: bool = True, early_reduces: bool = True,
                 mapr_largest_first: bool = False,
                 choice_merging: bool = True,
                 kill_switch: int = 16000,
                 hard_kill_switch: bool = False):
        self.follow_set = follow_set
        self.lazy_shifts = lazy_shifts
        self.shared_reduces = shared_reduces
        self.early_reduces = early_reduces
        self.mapr_largest_first = mapr_largest_first
        # SuperC merges differing semantic values under complete
        # nonterminals into static choice nodes (§5.1).  MAPR's program
        # representation predates that facility: it only merges
        # *identical* parses, which is what makes its naive forking
        # exponential on Figure 6 (2^18 distinct initializer lists).
        self.choice_merging = choice_merging
        self.kill_switch = kill_switch
        # The paper's kill switch aborts the parse (SubparserExplosion).
        # By default it is now a *budget*: on trip, the lowest-priority
        # forks are dropped, their conditions are tagged invalid on the
        # result, and parsing continues (graceful degradation).  Set
        # hard_kill_switch=True for the legacy abort (benchmarks).
        self.hard_kill_switch = hard_kill_switch

    def label(self) -> str:
        if not self.follow_set:
            return ("MAPR & Largest First" if self.mapr_largest_first
                    else "MAPR")
        parts = []
        if self.shared_reduces:
            parts.append("Shared")
        if self.lazy_shifts:
            parts.append("Lazy")
        if self.early_reduces:
            parts.append("Early")
        return " & ".join(parts) if parts else "Follow-Set Only"


# The paper's Figure 8 optimization levels, top to bottom.
OPTIMIZATION_LEVELS: Dict[str, FMLROptions] = {
    "Shared, Lazy, & Early": FMLROptions(),
    "Shared & Lazy": FMLROptions(early_reduces=False),
    "Shared": FMLROptions(lazy_shifts=False, early_reduces=False),
    "Lazy": FMLROptions(shared_reduces=False, early_reduces=False),
    "Follow-Set Only": FMLROptions(lazy_shifts=False,
                                   shared_reduces=False,
                                   early_reduces=False),
    "MAPR & Largest First": FMLROptions(follow_set=False,
                                        lazy_shifts=False,
                                        shared_reduces=False,
                                        early_reduces=False,
                                        choice_merging=False,
                                        mapr_largest_first=True),
    "MAPR": FMLROptions(follow_set=False, lazy_shifts=False,
                        shared_reduces=False, early_reduces=False,
                        choice_merging=False),
}


class FMLRStats:
    """Per-parse instrumentation (Figure 8's subparser counts)."""

    def __init__(self) -> None:
        self.iterations = 0
        self.max_subparsers = 0
        self.subparser_counts: List[int] = []
        self.forks = 0
        self.merges = 0
        self.shared_reduce_count = 0
        self.lazy_shift_count = 0
        # LALR action-table probes on the step path (repro.obs).
        self.action_lookups = 0
        # Degradation counters (soft kill switch / resource budgets).
        self.kill_switch_trips = 0
        self.dropped_subparsers = 0

    def as_counters(self) -> Dict[str, int]:
        """Flat ``fmlr.*`` counter view for per-unit profiles."""
        return {
            "fmlr.iterations": self.iterations,
            "fmlr.max_subparsers": self.max_subparsers,
            "fmlr.forks": self.forks,
            "fmlr.merges": self.merges,
            "fmlr.shared_reduces": self.shared_reduce_count,
            "fmlr.lazy_shifts": self.lazy_shift_count,
            "fmlr.action_lookups": self.action_lookups,
            "fmlr.kill_switch_trips": self.kill_switch_trips,
            "fmlr.dropped_subparsers": self.dropped_subparsers,
        }


class _StackNode:
    """Immutable LR stack cell; forked subparsers share tails."""

    __slots__ = ("state", "symbol", "value", "prev", "depth")

    def __init__(self, state: int, symbol: Optional[str], value: Any,
                 prev: Optional["_StackNode"]):
        self.state = state
        self.symbol = symbol
        self.value = value
        self.prev = prev
        self.depth = 1 if prev is None else prev.depth + 1


class Subparser:
    """(presence conditions, heads, LR stack, context).

    ``heads`` is an ordered tuple of (condition, TokenNode) pairs — one
    pair for single-headed subparsers, several for multi-headed ones
    (lazy shifts / shared reduces).  In MAPR mode a head may be a
    BranchNode.
    """

    __slots__ = ("heads", "stack", "context", "alive")

    def __init__(self, heads: Tuple[Tuple[Any, StreamElement], ...],
                 stack: _StackNode, context: ParserContext):
        self.heads = heads
        self.stack = stack
        self.context = context
        # Cleared when the subparser is merged away or stepped (lazy
        # deletion from the priority queue).
        self.alive = True

    @property
    def earliest_position(self) -> int:
        return self.heads[0][1].position

    def condition(self, manager: Any) -> Any:
        return manager.disjoin(cond for cond, _ in self.heads)

    def __repr__(self) -> str:
        return (f"Subparser(heads={[n.position for _, n in self.heads]}, "
                f"state={self.stack.state})")


class ParseFailure:
    """One configuration-specific parse error."""

    def __init__(self, condition: Any, token: Optional[Token],
                 expected: List[str]):
        self.condition = condition
        self.token = token
        self.expected = expected

    def __str__(self) -> str:
        where = ""
        if self.token is not None:
            where = (f"{self.token.file}:{self.token.line}:"
                     f"{self.token.col}: ")
        shown = ", ".join(self.expected[:8])
        text = self.token.text if self.token else "<eof>"
        return (f"{where}unexpected {text!r} under condition "
                f"{self.condition.to_expr_string()} "
                f"(expected one of: {shown})")


class FMLRResult:
    """Outcome of a configuration-preserving parse.

    A *partial* result is still a result: ``failures`` covers
    configurations that were parsed and rejected, ``diagnostics``
    covers configurations that were degraded away (soft kill switch,
    resource budgets), and ``invalid_configs`` disjoins both so callers
    can see exactly which configurations have no usable AST.
    """

    def __init__(self, accepted: List[Tuple[Any, Any]],
                 failures: List[ParseFailure], stats: FMLRStats,
                 manager: Any,
                 diagnostics: Optional[List[Diagnostic]] = None,
                 degraded: bool = False):
        self.accepted = accepted
        self.failures = failures
        self.stats = stats
        self.manager = manager
        self.diagnostics: List[Diagnostic] = diagnostics or []
        self.degraded = degraded

    @property
    def ok(self) -> bool:
        return bool(self.accepted) and not self.failures \
            and not self.degraded

    @property
    def invalid_configs(self) -> Any:
        """BDD over configurations with no usable parse (rejected or
        degraded away)."""
        condition = self.manager.false
        for failure in self.failures:
            condition = condition | failure.condition
        for diagnostic in self.diagnostics:
            condition = condition | diagnostic.condition
        return condition

    @property
    def value(self) -> Any:
        """The AST covering all accepted configurations (a static
        choice node when configurations yielded different trees)."""
        if not self.accepted:
            return None
        return make_choice(self.accepted)


class FMLRParser:
    """The table-driven Fork-Merge LR engine."""

    def __init__(self, tables: Tables,
                 classify: Callable[[Token], str],
                 context_factory: Callable[[], ParserContext]
                 = ParserContext,
                 options: Optional[FMLROptions] = None,
                 budget: Optional[ResourceBudget] = None,
                 tracer: Any = None):
        self.tables = tables
        self.classify = classify
        self.context_factory = context_factory
        self.options = options or FMLROptions()
        self.budget = budget
        # Observability hooks (repro.obs).  The default NULL_TRACER is
        # a stateless no-op singleton; the hot loop hoists its
        # ``enabled`` flag into a local so the un-traced path pays one
        # boolean test per hook site and allocates nothing.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- entry point ------------------------------------------------------

    def parse(self, tree: Sequence, manager: Any,
              condition: Any = None) -> FMLRResult:
        """Parse a preprocessor token tree under ``condition``."""
        options = self.options
        tracer = self.tracer
        trace = tracer.enabled
        root_cond = condition if condition is not None else manager.true
        first = build_stream(list(tree), manager)
        stats = FMLRStats()
        failures: List[ParseFailure] = []
        accepted: List[Tuple[Any, Any]] = []
        diagnostics: List[Diagnostic] = []
        budget = self.budget
        counter = itertools.count()
        initial_stack = _StackNode(0, None, None, None)
        context = self.context_factory()
        heads = self._advance(root_cond, first, manager)
        if not heads:
            return FMLRResult([], failures, stats, manager)

        def shed_forks(live: int) -> None:
            """Soft kill switch: keep the highest-priority forks, tag
            the dropped forks' configurations invalid, keep parsing.
            Live subparser conditions are mutually exclusive, so
            dropping a fork abandons exactly its configurations."""
            keep = max(1, options.kill_switch // 2)
            alive = [entry[2] for entry in queue if entry[2].alive]
            alive.sort(key=self._priority)
            victims = alive[max(0, keep - 1):]  # the stepped one stays
            if not victims:
                return
            dropped_cond = manager.disjoin(
                victim.condition(manager) for victim in victims)
            for victim in victims:
                victim.alive = False
            live_count[0] -= len(victims)
            stats.kill_switch_trips += 1
            stats.dropped_subparsers += len(victims)
            if trace:
                tracer.count("fmlr.kill_switch_trips")
                tracer.event("kill-switch", live=live,
                             dropped=len(victims))
            diagnostics.append(Diagnostic(
                dropped_cond, SEVERITY_CONFIG, PHASE_PARSE,
                f"subparser budget {options.kill_switch} exceeded "
                f"({live} live): dropped {len(victims)} lowest-priority "
                f"forks"))

        def trip_bdd_budget(current: Subparser) -> None:
            """Resource budget: abandon all remaining work, tagging the
            still-unparsed configurations invalid."""
            remaining = current.condition(manager)
            for entry in queue:
                if entry[2].alive:
                    remaining = remaining | entry[2].condition(manager)
                    entry[2].alive = False
            queue.clear()
            if trace:
                tracer.event("bdd-budget-trip",
                             nodes=manager.num_nodes())
            diagnostics.append(Diagnostic(
                remaining, SEVERITY_CONFIG, PHASE_RESOURCE,
                f"BDD budget of {budget.max_bdd_nodes} nodes exceeded "
                f"({manager.num_nodes()} allocated): parse abandoned "
                f"for the remaining configurations"))
        # The queue uses lazy deletion: subparsers merged away are
        # flagged dead and skipped on pop.  Merging happens on insert,
        # against live subparsers with the same heads and stack shape
        # (only newly inserted subparsers can create merge pairs).
        queue: List[Tuple[Tuple, int, Subparser]] = []
        index: Dict[Tuple, List[Subparser]] = {}
        live_count = [0]

        def merge_key(subparser: Subparser) -> Tuple:
            return (tuple(id(node) for _c, node in subparser.heads),
                    subparser.stack.depth, subparser.stack.state)

        def insert(subparser: Subparser) -> None:
            key = merge_key(subparser)
            bucket = index.setdefault(key, [])
            bucket[:] = [entry for entry in bucket if entry.alive]
            # Bound the candidate scan: when merging is mostly
            # impossible (MAPR mode, no choice nodes), a full scan of a
            # multi-thousand bucket with deep value comparisons would
            # dominate runtime.  Missing a merge is safe, just slower.
            start = max(0, len(bucket) - 32)
            for i in range(start, len(bucket)):
                existing = bucket[i]
                combined = self._try_merge(existing, subparser, manager)
                if combined is not None:
                    stats.merges += 1
                    if trace:
                        tracer.count("fmlr.merges")
                        tracer.event(
                            "merge",
                            position=combined.earliest_position)
                    existing.alive = False
                    bucket[i] = combined
                    heapq.heappush(queue, (self._priority(combined),
                                           next(counter), combined))
                    return
            bucket.append(subparser)
            heapq.heappush(queue, (self._priority(subparser),
                                   next(counter), subparser))
            live_count[0] += 1

        if options.follow_set or all(isinstance(n, TokenNode)
                                     for _, n in heads):
            insert(Subparser(tuple(heads), initial_stack, context))
        else:
            for cond, node in heads:
                insert(Subparser(((cond, node),), initial_stack,
                                 context))
        while queue:
            _, _, subparser = heapq.heappop(queue)
            if not subparser.alive:
                continue
            subparser.alive = False  # popped: no longer mergeable
            live_count[0] -= 1
            stats.iterations += 1
            live = live_count[0] + 1  # include the one being stepped
            stats.subparser_counts.append(live)
            if trace:
                tracer.record("fmlr.subparsers", live)
            if live > stats.max_subparsers:
                stats.max_subparsers = live
            if live > options.kill_switch:
                if options.hard_kill_switch:
                    raise SubparserExplosion(live, options.kill_switch)
                shed_forks(live)
            if budget is not None and budget.max_bdd_nodes \
                    and stats.iterations % 64 == 0 \
                    and manager.num_nodes() > budget.max_bdd_nodes:
                trip_bdd_budget(subparser)
                break
            successors = self._step(subparser, manager, accepted,
                                    failures, stats)
            if len(successors) > 1:
                forked = len(successors) - 1
                stats.forks += forked
                if trace:
                    tracer.count("fmlr.forks", forked)
                    tracer.event("fork", n=forked,
                                 position=subparser.earliest_position,
                                 live=live + forked)
            for successor in successors:
                insert(successor)
        return FMLRResult(accepted, failures, stats, manager,
                          diagnostics, degraded=bool(diagnostics))

    # -- scheduling -------------------------------------------------------

    def _priority(self, subparser: Subparser) -> Tuple:
        position = subparser.earliest_position
        if self.options.mapr_largest_first:
            return (position, -subparser.stack.depth)
        if not self.options.early_reduces:
            return (position, 0)
        # Early reduces: subparsers that will reduce step first.
        cond, node = subparser.heads[0]
        rank = 1
        if isinstance(node, TokenNode):
            terminal = self._base_terminal(node)
            action = self.tables.action[subparser.stack.state] \
                .get(terminal)
            if action is not None and action[0] == REDUCE:
                rank = 0
        return (position, rank)

    def _base_terminal(self, node: TokenNode) -> str:
        if node.is_eof:
            return END
        return self.classify(node.token)

    # -- stepping ---------------------------------------------------------

    def _advance(self, condition: Any, element: StreamElement,
                 manager: Any) -> List[Tuple[Any, StreamElement]]:
        """New heads after moving to ``element`` under ``condition``."""
        if condition.is_false():
            return []
        if self.options.follow_set:
            return follow_set(condition, element, manager)
        return [(condition, element)]

    def _step(self, subparser: Subparser, manager: Any,
              accepted: List[Tuple[Any, Any]],
              failures: List[ParseFailure],
              stats: FMLRStats) -> List[Subparser]:
        options = self.options
        # MAPR mode: a head may be a branch point -> naive forking.
        if not options.follow_set and \
                isinstance(subparser.heads[0][1], BranchNode):
            cond, node = subparser.heads[0]
            forks = []
            for branch_cond, sub_element in node.alternatives:
                joint = cond & branch_cond
                if joint.is_false():
                    continue
                forks.append(Subparser(
                    ((joint, sub_element),), subparser.stack,
                    subparser.context.fork_context()))
            return forks

        # Classify every head, splitting on ambiguous classifications
        # (implicit conditionals, e.g. conditionally-defined typedef
        # names) and dropping rejecting heads.
        classified: List[Tuple[Any, TokenNode, str, Tuple]] = []
        state = subparser.stack.state
        for cond, node in subparser.heads:
            base = self._base_terminal(node)
            for sub_cond, terminal in subparser.context.reclassify(
                    node.token, base, cond):
                if sub_cond.is_false():
                    continue
                stats.action_lookups += 1
                action = self.tables.action[state].get(terminal)
                if action is None:
                    failures.append(ParseFailure(
                        sub_cond,
                        node.token if not node.is_eof else None,
                        self.tables.expected_terminals(state)))
                    continue
                classified.append((sub_cond, node, terminal, action))
        if not classified:
            return []

        # Partition into action groups (Figure 7b).
        shift_heads: List[Tuple[Any, TokenNode, str]] = []
        reduce_groups: Dict[int, List[Tuple[Any, TokenNode, str]]] = {}
        accept_heads: List[Tuple[Any, TokenNode]] = []
        for cond, node, terminal, action in classified:
            if action[0] == SHIFT:
                shift_heads.append((cond, node, terminal))
            elif action[0] == REDUCE:
                reduce_groups.setdefault(action[1], []).append(
                    (cond, node, terminal))
            else:  # ACCEPT
                accept_heads.append((cond, node))

        for cond, _node in accept_heads:
            accepted.append((cond, subparser.stack.value))

        groups: List[Tuple[str, Any, List]] = []
        for production_index, heads in sorted(reduce_groups.items()):
            if options.shared_reduces:
                groups.append(("reduce", production_index, heads))
            else:
                for head in heads:
                    groups.append(("reduce", production_index, [head]))
        if shift_heads:
            if options.lazy_shifts:
                groups.append(("shift", None, shift_heads))
            else:
                for head in shift_heads:
                    groups.append(("shift", None, [head]))
        if not groups:
            return []

        # Perform one LR action on the group holding the earliest head;
        # the rest are rescheduled as forked subparsers.
        groups.sort(key=lambda group: group[2][0][1].position)
        first_kind, first_extra, first_heads = groups[0]
        out: List[Subparser] = []
        share_context = len(groups) == 1
        context = subparser.context if share_context \
            else subparser.context.fork_context()
        if first_kind == "reduce":
            if len(first_heads) > 1:
                stats.shared_reduce_count += 1
            out.extend(self._reduce(subparser, first_extra, first_heads,
                                    context, manager))
        else:
            out.extend(self._shift(subparser, first_heads, context,
                                   manager, stats))
        for kind, extra, heads in groups[1:]:
            forked = Subparser(
                tuple((cond, node) for cond, node, _t in heads),
                subparser.stack, subparser.context.fork_context())
            out.append(forked)
        return out

    def _reduce(self, subparser: Subparser, production_index: int,
                heads: List[Tuple[Any, TokenNode, str]],
                context: ParserContext, manager: Any) -> List[Subparser]:
        production = self.tables.grammar.productions[production_index]
        count = len(production.rhs)
        stack = subparser.stack
        values = []
        for _ in range(count):
            values.append(stack.value)
            stack = stack.prev
        values.reverse()
        condition = manager.disjoin(cond for cond, _n, _t in heads)
        value = build_value(production, values, context)
        context.on_reduce(production, value, condition)
        goto_state = self.tables.goto[stack.state].get(production.lhs)
        if goto_state is None:
            # Malformed tables; treat as rejection for these heads.
            return []
        new_stack = _StackNode(goto_state, production.lhs, value, stack)
        return [Subparser(tuple((cond, node)
                                for cond, node, _t in heads),
                          new_stack, context)]

    def _shift(self, subparser: Subparser,
               heads: List[Tuple[Any, TokenNode, str]],
               context: ParserContext, manager: Any,
               stats: FMLRStats) -> List[Subparser]:
        out: List[Subparser] = []
        cond, node, terminal = heads[0]
        rest = heads[1:]
        if rest:
            stats.lazy_shift_count += 1
        action = self.tables.action[subparser.stack.state][terminal]
        new_stack = _StackNode(action[1], terminal, node.token,
                               subparser.stack)
        new_heads = self._advance(cond, node.succ, manager)
        shift_context = context if not rest else context.fork_context()
        if new_heads:
            out.append(Subparser(tuple(new_heads), new_stack,
                                 shift_context))
        if rest:
            out.append(Subparser(
                tuple((c, n) for c, n, _t in rest),
                subparser.stack, context))
        return out

    # -- merging ------------------------------------------------------------

    def _try_merge(self, left: Subparser, right: Subparser,
                   manager: Any) -> Optional[Subparser]:
        if len(left.heads) != len(right.heads):
            return None
        for (_cl, nl), (_cr, nr) in zip(left.heads, right.heads):
            if nl is not nr:
                return None
        merged_stack = self._merge_stacks(left.stack, right.stack,
                                          left.condition(manager),
                                          right.condition(manager))
        if merged_stack is None:
            return None
        if not left.context.may_merge(right.context):
            return None
        context = left.context.merge_contexts(
            right.context, left.condition(manager),
            right.condition(manager))
        heads = tuple((cl | cr, node) for (cl, node), (cr, _n)
                      in zip(left.heads, right.heads))
        return Subparser(heads, merged_stack, context)

    def _merge_stacks(self, left: _StackNode, right: _StackNode,
                      left_cond: Any, right_cond: Any) \
            -> Optional[_StackNode]:
        """Equal stacks merge; a differing value merges only at a
        complete nonterminal, becoming a static choice node (§5.1)."""
        if left is right:
            return left
        if left.depth != right.depth:
            return None
        grammar = self.tables.grammar
        # Walk down, collecting the differing prefix.
        prefix: List[Tuple[int, Optional[str], Any, Any]] = []
        l, r = left, right
        while l is not r:
            if l is None or r is None:
                return None
            if l.state != r.state or l.symbol != r.symbol:
                return None
            if l.value is r.value or l.value == r.value:
                merged_value = l.value
            elif self.options.choice_merging and l.symbol is not None \
                    and grammar.is_complete(l.symbol):
                merged_value = make_choice(
                    [(left_cond, l.value), (right_cond, r.value)])
            else:
                return None
            prefix.append((l.state, l.symbol, merged_value))
            l, r = l.prev, r.prev
        # Rebuild the differing prefix on the shared tail.
        stack = l
        for state, symbol, value in reversed(prefix):
            stack = _StackNode(state, symbol, value, stack)
        return stack


def follow_set(condition: Any, element: StreamElement,
               manager: Any) -> List[Tuple[Any, TokenNode]]:
    """Algorithm 3: the first language token on each path through
    static conditionals from ``element``, with presence conditions.

    Implemented as a forward closure over the stream DAG: branch nodes
    are processed in position order (each exactly once, with their
    incoming conditions OR-merged), so the computation is linear in the
    reachable prefix even for long chains of conditionals.
    """
    pending: Dict[int, List] = {}

    def add(cond: Any, elem: StreamElement) -> None:
        if cond.is_false():
            return
        entry = pending.get(id(elem))
        if entry is not None:
            entry[2] = entry[2] | cond
        else:
            pending[id(elem)] = [elem.position, elem, cond]

    add(condition, element)
    while True:
        branch_entries = [entry for entry in pending.values()
                          if isinstance(entry[1], BranchNode)]
        if not branch_entries:
            break
        entry = min(branch_entries, key=lambda e: e[0])
        del pending[id(entry[1])]
        node, cond = entry[1], entry[2]
        for branch_cond, sub_element in node.alternatives:
            add(cond & branch_cond, sub_element)
    result = [(entry[2], entry[1]) for entry in pending.values()]
    result.sort(key=lambda pair: pair[1].position)
    return result
