#!/usr/bin/env python3
"""A variability-aware rename refactoring.

The paper's motivating tool class: a refactoring must rename an
identifier in *every* configuration — including occurrences inside
disabled conditional branches — or it silently breaks other people's
builds.  Because SuperC's tokens carry layout and the AST covers all
branches, the rename can be applied to the original source text.

This example renames a function that is declared in one conditional
branch and used in shared code, then verifies the result still parses
in all configurations.

Run:  python examples/variability_rename.py
"""

from repro import parse_c
from repro.parser.ast import iter_tokens

SOURCE = '''\
#ifdef CONFIG_ACCEL
static int read_input(int channel) { return accel_read(channel); }
#else
static int read_input(int channel) { return poll_read(channel); }
#endif

int sample_all(void)
{
    int total = 0;
    int ch;
    for (ch = 0; ch < 4; ch++)
        total += read_input(ch);
    return total;
}
'''


def occurrences(ast, name):
    """All tokens spelling `name`, across every configuration."""
    return [token for token in iter_tokens(ast)
            if token.text == name]


def rename_in_source(source, tokens, new_name):
    """Apply the rename to original text via token positions."""
    lines = source.splitlines()
    # Apply right-to-left so earlier columns stay valid.
    for token in sorted(tokens, key=lambda t: (t.line, t.col),
                        reverse=True):
        line = lines[token.line - 1]
        start = token.col - 1
        end = start + len(token.text)
        assert line[start:end] == token.text, "position drift"
        lines[token.line - 1] = line[:start] + new_name + line[end:]
    return "\n".join(lines) + "\n"


def main() -> None:
    result = parse_c(SOURCE)
    assert result.ok

    found = occurrences(result.ast, "read_input")
    print(f"found {len(found)} occurrences of read_input across all "
          "configurations:")
    for token in found:
        print(f"  {token.file}:{token.line}:{token.col}")

    print("\nNote: a single-configuration tool would see only 2 of "
          "them\n(one definition is in a disabled branch).\n")

    renamed = rename_in_source(SOURCE, found, "acquire_sample")
    print("--- renamed source ---")
    print(renamed)

    check = parse_c(renamed)
    print(f"renamed source parses in all configurations: {check.ok}")
    assert check.ok
    assert not occurrences(check.ast, "read_input")
    assert len(occurrences(check.ast, "acquire_sample")) == len(found)


if __name__ == "__main__":
    main()
