"""Integration tests for the configuration-preserving preprocessor."""

import pytest

from repro.cpp import (Conditional, PreprocessorError, count_conditionals,
                       is_flat, iter_tokens, max_depth)
from tests.support import preprocess, project_unit, texts


def tree_texts(unit):
    return [t.text for t in iter_tokens(unit.tree)]


class TestConditionalDirectives:
    def test_ifdef_preserved(self):
        unit = preprocess("#ifdef A\nx\n#endif\ny")
        assert count_conditionals(unit.tree) == 1
        assert texts(project_unit(unit, {"A": "1"})) == ["x", "y"]
        assert texts(project_unit(unit, {})) == ["y"]

    def test_ifndef(self):
        unit = preprocess("#ifndef A\nx\n#endif")
        assert texts(project_unit(unit, {})) == ["x"]
        assert texts(project_unit(unit, {"A": "1"})) == []

    def test_else(self):
        unit = preprocess("#ifdef A\nx\n#else\ny\n#endif")
        assert texts(project_unit(unit, {"A": "1"})) == ["x"]
        assert texts(project_unit(unit, {})) == ["y"]

    def test_elif_chain(self):
        source = ("#if defined(A)\na\n"
                  "#elif defined(B)\nb\n"
                  "#elif defined(C)\nc\n"
                  "#else\nd\n#endif")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1", "B": "1"})) == ["a"]
        assert texts(project_unit(unit, {"B": "1", "C": "1"})) == ["b"]
        assert texts(project_unit(unit, {"C": "1"})) == ["c"]
        assert texts(project_unit(unit, {})) == ["d"]

    def test_nested_conditionals_conjoin(self):
        source = ("#ifdef A\n#ifdef B\nx\n#endif\n#endif")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1", "B": "1"})) == ["x"]
        assert texts(project_unit(unit, {"A": "1"})) == []
        assert texts(project_unit(unit, {"B": "1"})) == []
        assert unit.stats.max_conditional_depth == 2

    def test_if_with_arithmetic(self):
        source = "#if 2 + 2 == 4\nyes\n#endif"
        unit = preprocess(source)
        assert tree_texts(unit) == ["yes"]
        assert is_flat(unit.tree)

    def test_if_zero_eliminated(self):
        unit = preprocess("#if 0\ndead\n#endif\nlive")
        assert tree_texts(unit) == ["live"]

    def test_if_value_of_free_macro(self):
        unit = preprocess("#if CONFIG_N\nx\n#endif")
        assert texts(project_unit(unit, {"CONFIG_N": "1"})) == ["x"]
        assert texts(project_unit(unit, {"CONFIG_N": "0"})) == []
        assert texts(project_unit(unit, {})) == []

    def test_non_boolean_expression_preserved(self):
        unit = preprocess("#if NR_CPUS < 256\nsmall\n#else\nbig\n#endif")
        assert unit.stats.non_boolean_expressions >= 1
        assert texts(project_unit(unit, {"NR_CPUS": "8"})) == ["small"]
        assert texts(project_unit(unit, {"NR_CPUS": "1024"})) == ["big"]

    def test_multiply_defined_macro_in_condition(self):
        """§3.2: hoisting BITS_PER_LONG == 32 over Figure 2."""
        source = ("#ifdef CONFIG_64BIT\n#define BITS_PER_LONG 64\n"
                  "#else\n#define BITS_PER_LONG 32\n#endif\n"
                  "#if BITS_PER_LONG == 32\nthirtytwo\n#endif\n")
        unit = preprocess(source)
        assert unit.stats.hoisted_conditionals >= 1
        assert texts(project_unit(unit, {})) == ["thirtytwo"]
        assert texts(project_unit(unit, {"CONFIG_64BIT": "1"})) == []

    def test_unterminated_conditional_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef A\nx")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif")

    def test_else_after_else_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef A\n#else\n#else\n#endif")

    def test_elif_after_else_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef A\n#else\n#elif defined(B)\n#endif")

    def test_conditional_count_stat(self):
        unit = preprocess(
            "#ifdef A\n#endif\n#ifdef B\n#endif\n#if 1\n#endif")
        assert unit.stats.conditionals == 3


class TestFigure1:
    SOURCE = (
        '#include "major.h"\n'
        "\n"
        "#define MOUSEDEV_MIX 31\n"
        "#define MOUSEDEV_MINOR_BASE 32\n"
        "\n"
        "static int mousedev_open(struct inode *inode, struct file *file)\n"
        "{\n"
        "  int i;\n"
        "\n"
        "#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX\n"
        "  if (imajor(inode) == MISC_MAJOR)\n"
        "    i = MOUSEDEV_MIX;\n"
        "  else\n"
        "#endif\n"
        "  i = iminor(inode) - MOUSEDEV_MINOR_BASE;\n"
        "\n"
        "  return 0;\n"
        "}\n")
    FILES = {"major.h": "#define MISC_MAJOR 10\n"}

    def test_macros_expanded_conditional_preserved(self):
        unit = preprocess(self.SOURCE, files=self.FILES,
                          include_paths=("",))
        assert count_conditionals(unit.tree) == 1
        with_psaux = texts(project_unit(
            unit, {"CONFIG_INPUT_MOUSEDEV_PSAUX": "1"}))
        without = texts(project_unit(unit, {}))
        assert "10" in with_psaux and "31" in with_psaux
        assert "MISC_MAJOR" not in with_psaux
        assert "if" in with_psaux and "else" in with_psaux
        assert "if" not in without
        assert "32" in without


class TestIncludes:
    def test_quoted_include_relative_to_includer(self):
        files = {
            "dir/main.c": '#include "util.h"\nx',
            "dir/util.h": "u\n",
        }
        unit = preprocess('#include "util.h"\nx',
                          files=files, filename="dir/main.c")
        assert tree_texts(unit) == ["u", "x"]

    def test_angle_include_uses_include_paths(self):
        files = {"include/linux/init.h": "init_token\n"}
        unit = preprocess("#include <linux/init.h>\n", files=files)
        assert tree_texts(unit) == ["init_token"]

    def test_missing_include_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess('#include "nope.h"')

    def test_include_under_condition(self):
        files = {"include/a.h": "ay\n"}
        unit = preprocess("#ifdef A\n#include <a.h>\n#endif\n",
                          files=files)
        assert texts(project_unit(unit, {"A": "1"})) == ["ay"]
        assert texts(project_unit(unit, {})) == []

    def test_computed_include(self):
        files = {"include/one.h": "one\n", "include/two.h": "two\n"}
        source = ('#define HEADER <one.h>\n'
                  "#include HEADER\n")
        unit = preprocess(source, files=files)
        assert tree_texts(unit) == ["one"]
        assert unit.stats.computed_includes == 1

    def test_computed_include_multiply_defined(self):
        files = {"include/one.h": "one\n", "include/two.h": "two\n"}
        source = ("#ifdef A\n#define HEADER <one.h>\n"
                  "#else\n#define HEADER <two.h>\n#endif\n"
                  "#include HEADER\n")
        unit = preprocess(source, files=files)
        assert unit.stats.hoisted_includes == 1
        assert texts(project_unit(unit, {"A": "1"})) == ["one"]
        assert texts(project_unit(unit, {})) == ["two"]

    def test_guarded_header_included_once(self):
        files = {"include/g.h": ("#ifndef G_H\n#define G_H\n"
                                 "guarded\n#endif\n")}
        unit = preprocess("#include <g.h>\n#include <g.h>\n",
                          files=files)
        assert tree_texts(unit) == ["guarded"]
        # Second include skipped entirely via guard optimization.
        assert unit.stats.reincluded_headers == 0

    def test_guard_macro_not_config_variable(self):
        """Rule 4a: defined(G_H) on first inclusion is false, not a
        variable — the guarded body is unconditionally present."""
        files = {"include/g.h": ("#ifndef G_H\n#define G_H\n"
                                 "guarded\n#endif\n")}
        unit = preprocess("#include <g.h>\n", files=files)
        assert is_flat(unit.tree)

    def test_unguarded_header_reincluded(self):
        files = {"include/u.h": "body\n"}
        unit = preprocess("#include <u.h>\n#include <u.h>\n",
                          files=files)
        assert tree_texts(unit) == ["body", "body"]
        assert unit.stats.reincluded_headers == 1

    def test_reinclude_after_undef(self):
        """Table 1: reinclude when the guard macro is not false."""
        files = {"include/g.h": ("#ifndef G_H\n#define G_H\n"
                                 "guarded\n#endif\n")}
        source = ("#include <g.h>\n#undef G_H\n#include <g.h>\n")
        unit = preprocess(source, files=files)
        assert tree_texts(unit) == ["guarded", "guarded"]
        assert unit.stats.reincluded_headers == 1

    def test_include_cycle_detected(self):
        files = {"include/a.h": "#include <b.h>\n",
                 "include/b.h": "#include <a.h>\n"}
        with pytest.raises(PreprocessorError):
            preprocess("#include <a.h>\n", files=files)

    def test_nested_includes(self):
        files = {"include/outer.h": "#include <inner.h>\nouter\n",
                 "include/inner.h": "inner\n"}
        unit = preprocess("#include <outer.h>\n", files=files)
        assert tree_texts(unit) == ["inner", "outer"]
        assert unit.stats.includes == 2

    def test_conditional_must_close_in_same_file(self):
        files = {"include/bad.h": "#ifdef A\n"}
        with pytest.raises(PreprocessorError):
            preprocess("#include <bad.h>\n#endif\n", files=files)


class TestErrorDirectives:
    def test_top_level_error_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess('#error "unsupported"')

    def test_error_in_branch_records_condition(self):
        source = ("#ifdef BROKEN\n#error nope\nx\n#else\ny\n#endif")
        unit = preprocess(source)
        assert len(unit.error_conditions) == 1
        condition, message = unit.error_conditions[0]
        assert "nope" in message
        # The erroneous branch's tokens are dropped.
        assert "x" not in tree_texts(unit)
        assert "y" in tree_texts(unit)

    def test_feasible_condition_excludes_error_branches(self):
        source = ("#ifdef BROKEN\n#error nope\n#endif\nok")
        unit = preprocess(source)
        feasible = unit.feasible_condition
        assert not feasible.is_true()
        assert feasible.evaluate({}) is True
        assert feasible.evaluate({"defined:BROKEN": True}) is False

    def test_error_in_infeasible_branch_ignored(self):
        unit = preprocess("#if 0\n#error never\n#endif\nok")
        assert unit.error_conditions == []
        assert tree_texts(unit) == ["ok"]

    def test_error_count_stat(self):
        unit = preprocess("#ifdef A\n#error one\n#endif\n"
                          "#ifdef B\n#error two\n#endif\n")
        assert unit.stats.error_directives == 2


class TestOtherDirectives:
    def test_warning_recorded(self):
        unit = preprocess('#warning "careful"\nx')
        assert len(unit.warnings) == 1
        assert "careful" in unit.warnings[0][1]

    def test_pragma_annotates_next_token(self):
        unit = preprocess("#pragma pack(1)\nint x;")
        first = next(iter_tokens(unit.tree))
        assert any("#pragma" in a for a in first.annotations)

    def test_line_annotates_next_token(self):
        unit = preprocess('#line 100 "other.c"\nint x;')
        first = next(iter_tokens(unit.tree))
        assert any("#line" in a for a in first.annotations)

    def test_null_directive_ignored(self):
        unit = preprocess("#\nx")
        assert tree_texts(unit) == ["x"]

    def test_unknown_directive_warns(self):
        unit = preprocess("#frobnicate\nx")
        assert any("unknown directive" in message
                   for _cond, message in unit.warnings)

    def test_define_without_name_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define 42")

    def test_undef(self):
        unit = preprocess("#define A 1\n#undef A\nA")
        assert tree_texts(unit) == ["A"]

    def test_conditional_undef(self):
        source = ("#define M 7\n#ifdef A\n#undef M\n#endif\nM\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == ["M"]
        assert texts(project_unit(unit, {})) == ["7"]


class TestConditionalMacroDefinitionInteraction:
    def test_define_in_one_branch_used_after(self):
        source = ("#ifdef A\n#define X 1\n#else\n#define X 2\n#endif\n"
                  "X X\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == ["1", "1"]
        assert texts(project_unit(unit, {})) == ["2", "2"]

    def test_definition_before_and_inside_conditional(self):
        source = ("#define X 0\n"
                  "#ifdef A\n#define X 1\n#endif\nX\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == ["1"]
        assert texts(project_unit(unit, {})) == ["0"]

    def test_use_before_conditional_redefinition(self):
        source = ("#define X 0\nX\n"
                  "#ifdef A\n#define X 1\n#endif\nX\n")
        unit = preprocess(source)
        assert texts(project_unit(unit, {"A": "1"})) == ["0", "1"]
        assert texts(project_unit(unit, {})) == ["0", "0"]
