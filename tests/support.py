"""Shared helpers for preprocessor and parser tests.

The central facility is the *differential oracle*: build a BDD-variable
assignment from a concrete configuration (a ``-D`` style mapping), so a
configuration-preserving result can be projected and compared against
the plain single-configuration pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cpp import (DictFileSystem, Preprocessor, SimplePreprocessor,
                       project)
from repro.lexer.tokens import Token, TokenKind
# The differential-oracle helpers were promoted into repro.qa (they
# now also power the superc-fuzz harness); tests import them from
# here for backward compatibility.
from repro.qa import (assignment_for, ast_signature, config_value,
                      tokens_match as token_texts_match)
from repro.qa.projector import diff_tokens as diff_token_streams

# A tiny, fixed builtin set for tests (deterministic, minimal noise).
TEST_BUILTINS = {"__STDC__": "1"}


def preprocess(text: str, files: Optional[Dict[str, str]] = None,
               include_paths: Sequence[str] = ("include",),
               builtins: Optional[Dict[str, str]] = None,
               filename: str = "test.c"):
    """Run the configuration-preserving preprocessor on ``text``."""
    pp = Preprocessor(DictFileSystem(files or {}),
                      include_paths=include_paths,
                      builtins=TEST_BUILTINS if builtins is None
                      else builtins)
    return pp.preprocess(text, filename)


def simple_preprocess(text: str, defines: Optional[Dict[str, str]] = None,
                      files: Optional[Dict[str, str]] = None,
                      include_paths: Sequence[str] = ("include",),
                      builtins: Optional[Dict[str, str]] = None,
                      filename: str = "test.c") -> List[Token]:
    """Run the single-configuration oracle preprocessor."""
    pp = SimplePreprocessor(DictFileSystem(files or {}),
                            include_paths=include_paths,
                            config=defines or {},
                            builtins=TEST_BUILTINS if builtins is None
                            else builtins)
    return pp.preprocess(text, filename)


def texts(tokens) -> List[str]:
    """Token texts, skipping layout-only kinds."""
    return [t.text for t in tokens
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


def project_unit(unit, defines: Dict[str, str]) -> List[Token]:
    """Project a compilation unit onto one concrete configuration."""
    return project(unit.tree, assignment_for(unit, defines))


__all__ = ["TEST_BUILTINS", "assignment_for", "ast_signature",
           "config_value", "diff_token_streams", "preprocess",
           "project_unit", "simple_preprocess", "texts",
           "token_texts_match"]
