/* The paper's Figure 1 example (drivers/input/mousedev.c, edited
 * down): a conditional inside a statement position, a macro from an
 * included header, and a configuration-dependent branch.  Used by the
 * trace-smoke Makefile target:
 *
 *   superc-parse examples/mousedev.c -I examples/include \
 *       --trace /tmp/mousedev-trace.json --profile
 */

#include "major.h"   /* defines MISC_MAJOR to be 10 */

#define MOUSEDEV_MIX        31
#define MOUSEDEV_MINOR_BASE 32

static int mousedev_open(struct inode *inode, struct file *file)
{
  int i;

#ifdef CONFIG_INPUT_MOUSEDEV_PSAUX
  if (imajor(inode) == MISC_MAJOR)
    i = MOUSEDEV_MIX;
  else
#endif
  i = iminor(inode) - MOUSEDEV_MINOR_BASE;

#if defined(CONFIG_SMP) && !defined(CONFIG_INPUT_MOUSEDEV_PSAUX)
  i += smp_processor_id();
#endif

  return i;
}
