"""Unit tests for token-tree utilities."""

import pytest

from repro.bdd import BDDManager
from repro.cpp.tree import (Conditional, count_conditionals, is_flat,
                            iter_tokens, map_conditions, max_depth,
                            project, render, token_count)
from repro.lexer import lex
from repro.lexer.tokens import TokenKind


@pytest.fixture()
def mgr():
    return BDDManager()


def toks(text):
    return [t for t in lex(text)
            if t.kind not in (TokenKind.NEWLINE, TokenKind.EOF)]


def sample_tree(mgr):
    a, b = mgr.var("A"), mgr.var("B")
    inner = Conditional([(b, toks("deep"))])
    return [
        *toks("head"),
        Conditional([(a, [*toks("x"), inner]), (~a, toks("y"))]),
        *toks("tail"),
    ]


class TestQueries:
    def test_iter_tokens_all_branches(self, mgr):
        texts = [t.text for t in iter_tokens(sample_tree(mgr))]
        assert texts == ["head", "x", "deep", "y", "tail"]

    def test_token_count(self, mgr):
        assert token_count(sample_tree(mgr)) == 5

    def test_count_conditionals(self, mgr):
        assert count_conditionals(sample_tree(mgr)) == 2

    def test_max_depth(self, mgr):
        assert max_depth(sample_tree(mgr)) == 2
        assert max_depth(toks("a b")) == 0

    def test_is_flat(self, mgr):
        assert is_flat(toks("a b c"))
        assert not is_flat(sample_tree(mgr))


class TestProject:
    def test_project_configurations(self, mgr):
        tree = sample_tree(mgr)
        assert [t.text for t in project(tree, {"A": True, "B": True})] \
            == ["head", "x", "deep", "tail"]
        assert [t.text for t in project(tree, {"A": True})] == \
            ["head", "x", "tail"]
        assert [t.text for t in project(tree, {})] == \
            ["head", "y", "tail"]


class TestMapConditions:
    def test_identity_map(self, mgr):
        tree = sample_tree(mgr)
        mapped = map_conditions(tree, lambda c: c)
        assert [t.text for t in iter_tokens(mapped)] == \
            [t.text for t in iter_tokens(tree)]

    def test_swap_algebra(self, mgr):
        from repro.baselines import FormulaManager
        fm = FormulaManager()

        def translate(bdd):
            # Rebuild in the formula algebra from satisfying cubes.
            result = fm.false
            for cube in bdd.all_sat():
                term = fm.true
                for name, value in cube.items():
                    var = fm.var(name)
                    term = term & (var if value else ~var)
                result = result | term
            return result

        mapped = map_conditions(sample_tree(mgr), translate)
        conditional = next(i for i in mapped
                           if isinstance(i, Conditional))
        condition = conditional.branches[0][0]
        assert condition.evaluate({"A": True})
        assert not condition.evaluate({})


class TestRender:
    def test_render_flat(self, mgr):
        assert render(toks("a b ;")) == "a b ;"

    def test_render_conditional(self, mgr):
        text = render(sample_tree(mgr))
        assert "#[A]" in text
        assert "#[!A]" in text
        assert "#[end]" in text
        assert "deep" in text
