#!/usr/bin/env python3
"""Configuration coverage of a maximal configuration.

The paper's introduction motivates configuration-preserving tools with
Tartler et al.'s observation that Linux ``allyesconfig`` enables less
than 80% of the code blocks contained in conditionals — a maximal
configuration cannot reach `#else` branches.  This example measures
the same metric on the synthetic kernel using the `repro.analysis`
package: one configuration-preserving preprocessor run per unit, then
pure BDD queries.

Run:  python examples/config_coverage.py
"""

from repro.analysis import (allyes_assignment, block_histogram,
                            collect_blocks, configuration_coverage)
from repro.corpus import KernelSpec, generate_kernel
from repro.cpp import Preprocessor


def main() -> None:
    corpus = generate_kernel(KernelSpec(subsystems=3,
                                        drivers_per_subsystem=2))
    allyes = allyes_assignment(corpus.config_variables)

    print(f"{'unit':<34}{'blocks':>8}{'allyes':>9}{'noconfig':>10}")
    total_blocks = 0
    total_enabled = 0
    for unit in corpus.units:
        preprocessor = Preprocessor(
            corpus.filesystem(), include_paths=corpus.include_paths)
        compilation_unit = preprocessor.preprocess_file(unit)
        blocks = collect_blocks(compilation_unit.tree,
                                compilation_unit.manager.true)
        allyes_cov = configuration_coverage(blocks, allyes)
        none_cov = configuration_coverage(blocks, {})
        total_blocks += len(blocks)
        total_enabled += round(allyes_cov * len(blocks))
        print(f"{unit:<34}{len(blocks):>8}{allyes_cov:>8.0%}"
              f"{none_cov:>10.0%}")

    overall = total_enabled / total_blocks if total_blocks else 1.0
    print(f"\noverall allyesconfig coverage: {overall:.0%} "
          "(the paper's intro cites <80% for Linux)")

    unit = corpus.units[0]
    preprocessor = Preprocessor(corpus.filesystem(),
                                include_paths=corpus.include_paths)
    compilation_unit = preprocessor.preprocess_file(unit)
    blocks = collect_blocks(compilation_unit.tree,
                            compilation_unit.manager.true)
    print(f"\nblock nesting histogram for {unit}:")
    for depth, count in sorted(block_histogram(blocks).items()):
        print(f"  depth {depth}: {count} blocks")


if __name__ == "__main__":
    main()
