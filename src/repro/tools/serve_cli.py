"""Command-line interface: the persistent parse daemon and its client.

Server mode (foreground; parsing happens on the main thread so
per-request deadlines get the engine's SIGALRM enforcement).
``--listen URL`` is repeatable — one daemon can serve the socket
dialect and the HTTP frontend concurrently off one warm state::

    python -m repro.tools.serve_cli --listen unix:/tmp/superc.sock \\
        -I include [--max-queue 64] [--deadline 5] [--trace out.json]
    python -m repro.tools.serve_cli --listen tcp:127.0.0.1:7433
    python -m repro.tools.serve_cli --listen unix:/tmp/superc.sock \\
        --listen http://127.0.0.1:7480

Client mode (any op flag switches to client; ops run in the order
parse → invalidate → stats → shutdown, each against the same
daemon)::

    python -m repro.tools.serve_cli --connect unix:/tmp/superc.sock \\
        --parse drivers/mousedev.c --parse drivers/mousedev.c --json
    python -m repro.tools.serve_cli --connect http://127.0.0.1:7480 \\
        --invalidate include/major.h --stats --shutdown

(``--socket PATH`` and ``--port N`` remain as deprecated spellings of
``unix:`` and ``tcp:`` endpoints; they warn and keep working.)

Smoke mode (``--smoke FILE``) runs the whole serve contract
in-process over a real Unix socket: warm-hit on the second identical
request, reverse-invalidation on a header edit, ``status=shed`` under
an over-depth burst, and a clean draining shutdown — exits nonzero on
the first violated expectation (the Makefile ``serve-smoke`` target).

HTTP smoke mode (``--http-smoke FILE``) starts one daemon with both a
Unix socket and an HTTP listener and drives parse / invalidate /
stats / healthz entirely over HTTP: cache hit on the re-parse, the
socket and HTTP transports answering byte-identical records off the
shared warm cache, and a graceful shutdown via ``POST /v1/shutdown``
(the Makefile ``http-smoke`` target).

Chaos-smoke mode (``--chaos-smoke FILE``) runs the fault-tolerance
contract: under a seeded :mod:`repro.chaos` plan it injects a worker
crash, a parse hang past its deadline, a corrupt cache blob, a
dropped client socket mid-response, an ENOSPC on a cache write, and a
torn HTTP response body — asserting the daemon answers a correct
parse after every fault — then hard-kills the daemon and verifies a
restarted one resumes warm-tier short-circuiting from the journal
through the HTTP frontend (the Makefile ``chaos-smoke`` target).

``--workers N`` puts the daemon behind a supervised pre-forked pool of
N parse workers with N concurrent dispatchers (deadlines enforced by
the pool supervisor, not SIGALRM).

Exit status: 0 success; 1 a client op failed (parse error, shed,
daemon unavailable, smoke expectation violated); 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import warnings
from typing import Dict, List, Optional, Tuple

from repro.engine import DEFAULT_OPTIMIZATION
from repro.parser.fmlr import OPTIMIZATION_LEVELS
from repro.tools.parse_cli import parse_defines


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="superc-serve",
        description="Persistent configuration-preserving parse "
                    "service (daemon + client).")
    endpoint = parser.add_argument_group("endpoint")
    endpoint.add_argument("--listen", action="append", default=[],
                          metavar="URL", dest="listen",
                          help="serve this endpoint (repeatable): "
                               "unix:PATH, tcp:HOST:PORT, or "
                               "http://HOST:PORT (port 0 picks a "
                               "free one)")
    endpoint.add_argument("--connect", metavar="URL",
                          dest="connect_url",
                          help="client endpoint: unix:PATH, "
                               "tcp:HOST:PORT, or http://HOST:PORT")
    endpoint.add_argument("--socket", metavar="PATH",
                          help="deprecated spelling of "
                               "--listen/--connect unix:PATH")
    endpoint.add_argument("--host", default="127.0.0.1",
                          help="TCP bind/connect host (with --port)")
    endpoint.add_argument("--port", type=int, metavar="N",
                          help="deprecated spelling of "
                               "--listen/--connect tcp:HOST:N")
    server = parser.add_argument_group("server")
    server.add_argument("-I", "--include", action="append",
                        default=[], metavar="DIR",
                        help="add an include search directory")
    server.add_argument("-D", "--define", action="append", default=[],
                        metavar="NAME[=VALUE]",
                        help="predefine an object-like macro")
    server.add_argument("--optimization", default=DEFAULT_OPTIMIZATION,
                        choices=sorted(OPTIMIZATION_LEVELS),
                        help="FMLR optimization level")
    server.add_argument("--max-queue", type=int, default=64,
                        metavar="N",
                        help="admission depth; further requests are "
                             "shed (default 64)")
    server.add_argument("--deadline", type=float, default=0.0,
                        metavar="SECONDS",
                        help="default per-request deadline "
                             "(0 disables)")
    server.add_argument("--workers", type=int, default=0, metavar="N",
                        help="run parses in a supervised pool of N "
                             "forked workers (0 = inline, the "
                             "single-process mode)")
    server.add_argument("--cache-dir", metavar="DIR",
                        help="result-cache directory (shared with "
                             "superc-batch)")
    server.add_argument("--no-result-cache", action="store_true",
                        help="serve from memory only; do not read or "
                             "write the on-disk result cache")
    server.add_argument("--trace", metavar="FILE",
                        help="record the server with repro.obs and "
                             "write a Chrome trace (one lane per "
                             "request) on shutdown")
    client = parser.add_argument_group("client ops")
    client.add_argument("--parse", action="append", default=[],
                        metavar="FILE", dest="parse_paths",
                        help="request a parse of FILE (repeatable; "
                             "implies client mode)")
    client.add_argument("--fresh", action="store_true",
                        help="bypass every cache tier for --parse")
    client.add_argument("--invalidate", action="append", default=[],
                        metavar="PATH", dest="invalidate_paths",
                        help="invalidate PATH (repeatable)")
    client.add_argument("--stats", action="store_true",
                        help="fetch server statistics")
    client.add_argument("--shutdown", action="store_true",
                        help="request a graceful draining shutdown")
    client.add_argument("--json", action="store_true",
                        help="print raw JSON responses")
    parser.add_argument("--smoke", metavar="FILE",
                        help="run the end-to-end serve smoke against "
                             "FILE (starts its own server)")
    parser.add_argument("--smoke-header", metavar="PATH",
                        help="header to invalidate during --smoke "
                             "(default: first include dir header)")
    parser.add_argument("--http-smoke", metavar="FILE",
                        dest="http_smoke",
                        help="run the HTTP-frontend smoke against "
                             "FILE (starts its own server with "
                             "socket + HTTP listeners)")
    parser.add_argument("--chaos-smoke", metavar="FILE",
                        dest="chaos_smoke",
                        help="run the fault-injection smoke against "
                             "FILE (starts its own server, injects "
                             "the six chaos fault kinds, restarts "
                             "the daemon)")
    return parser


def _warn_deprecated_flag(flag: str, replacement: str) -> None:
    warnings.warn(f"{flag} is deprecated; use {replacement}",
                  DeprecationWarning, stacklevel=3)


def _legacy_endpoint(args) -> Optional[str]:
    """Endpoint URL from the deprecated --socket/--port flags (with a
    DeprecationWarning), or None when neither was given."""
    if args.socket is not None:
        _warn_deprecated_flag(
            "--socket", "--listen/--connect unix:PATH")
        return f"unix:{args.socket}"
    if args.port is not None:
        _warn_deprecated_flag(
            "--port", "--listen/--connect tcp:HOST:PORT")
        return f"tcp:{args.host}:{args.port}"
    return None


def _resolve_listeners(args) -> Dict[str, Tuple]:
    """Map listener kind -> parsed endpoint for server mode.  Raises
    ValueError on an unparseable URL or duplicate/conflicting kinds."""
    from repro.serve import parse_endpoint
    urls = list(args.listen)
    legacy = _legacy_endpoint(args)
    if legacy is not None:
        urls.append(legacy)
    listeners: Dict[str, Tuple] = {}
    for url in urls:
        endpoint = parse_endpoint(url)
        kind = endpoint[0]
        if kind in listeners:
            raise ValueError(f"multiple {kind} listeners requested")
        listeners[kind] = endpoint
    if "unix" in listeners and "tcp" in listeners:
        raise ValueError(
            "cannot serve unix: and tcp: at once (one stream "
            "listener; add http:// for a second surface)")
    return listeners


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    if args.http_smoke:
        return run_http_smoke(args)
    if args.chaos_smoke:
        return run_chaos_smoke(args)
    client_mode = bool(args.parse_paths or args.invalidate_paths
                       or args.stats or args.shutdown)
    if not (args.listen or args.connect_url or args.socket is not None
            or args.port is not None):
        print("error: need --listen URL (server) or --connect URL "
              "(client); legacy --socket PATH / --port N also work",
              file=sys.stderr)
        return 2
    if client_mode:
        return run_client(args)
    return run_server(args)


def run_server(args) -> int:
    from repro.serve import ParseServer
    try:
        listeners = _resolve_listeners(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.connect_url:
        print("error: --connect is a client flag; servers take "
              "--listen", file=sys.stderr)
        return 2
    if not listeners:
        print("error: need at least one --listen URL",
              file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from repro.obs import Tracer
        tracer = Tracer()
    unix_endpoint = listeners.get("unix")
    tcp_endpoint = listeners.get("tcp")
    http_endpoint = listeners.get("http")
    server = ParseServer(
        socket_path=unix_endpoint[1] if unix_endpoint else None,
        host=tcp_endpoint[1] if tcp_endpoint else None,
        port=tcp_endpoint[2] if tcp_endpoint else None,
        http_host=http_endpoint[1] if http_endpoint else None,
        http_port=http_endpoint[2] if http_endpoint else None,
        max_queue=args.max_queue, deadline_seconds=args.deadline,
        workers=max(0, args.workers),
        tracer=tracer, optimization=args.optimization,
        cache_dir=args.cache_dir,
        use_result_cache=not args.no_result_cache,
        include_paths=tuple(args.include),
        extra_definitions=parse_defines(args.define) or None)
    server.bind()
    server._start_http()
    if unix_endpoint:
        print(f"superc-serve: listening on unix:{server.socket_path}",
              file=sys.stderr)
    if tcp_endpoint:
        print("superc-serve: listening on tcp:%s:%d" % server.address,
              file=sys.stderr)
    if http_endpoint:
        print(f"superc-serve: listening on {server.http.url}",
              file=sys.stderr)
    served = server.serve_forever()
    print(f"superc-serve: drained after {served} request(s)",
          file=sys.stderr)
    if args.trace:
        from repro.obs import write_chrome_trace, to_chrome_trace
        write_chrome_trace(args.trace,
                           to_chrome_trace(tracer, lane_per_root=True))
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def run_client(args) -> int:
    from repro.serve import STATUS_UNAVAILABLE, ServeError, connect
    if args.listen:
        print("error: --listen is a server flag; clients take "
              "--connect", file=sys.stderr)
        return 2
    url = args.connect_url or _legacy_endpoint(args)
    failures = 0

    def down(response: dict) -> bool:
        """A structured daemon-unreachable response (the client's
        retry budget is already spent at this point)."""
        if response.get("status") != STATUS_UNAVAILABLE:
            return False
        print(f"error: {response.get('error')}", file=sys.stderr)
        return True

    try:
        with connect(url) as session:
            for path in args.parse_paths:
                result = session.parse(path, fresh=args.fresh)
                record = result.record
                if down(record):
                    failures += 1
                    continue
                if args.json:
                    print(json.dumps(record, sort_keys=True))
                else:
                    serve = record.get("serve") or {}
                    print(f"{path}: {result.status} "
                          f"(cache {record.get('cache', '?')}"
                          f"{'/' + record['tier'] if record.get('tier') else ''}, "
                          f"{serve.get('seconds', 0.0):.3f}s)")
                if result.status not in ("ok", "degraded"):
                    failures += 1
            for path in args.invalidate_paths:
                response = session.invalidate(path)
                if down(response):
                    failures += 1
                    continue
                if args.json:
                    print(json.dumps(response, sort_keys=True))
                else:
                    print(f"invalidate {path}: "
                          f"{response.get('count', 0)} unit(s) dropped")
                if response.get("status") != "ok":
                    failures += 1
            if args.stats:
                response = session.transport.request("stats")
                if down(response):
                    failures += 1
                else:
                    print(json.dumps(response.get("stats") or {},
                                     indent=2, sort_keys=True))
            if args.shutdown:
                response = session.shutdown()
                if down(response):
                    failures += 1
                elif args.json:
                    print(json.dumps(response, sort_keys=True))
                else:
                    print(f"shutdown: drained "
                          f"{response.get('drained', 0)} request(s)")
    except (ServeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 1 if failures else 0


def run_smoke(args) -> int:
    """End-to-end serve contract over a real Unix socket."""
    from repro.serve import ParseServer, connect

    unit = args.smoke
    if not os.path.isfile(unit):
        print(f"error: cannot read {unit}", file=sys.stderr)
        return 2
    header = args.smoke_header
    if header is None:
        for root in args.include:
            names = sorted(name for name in os.listdir(root)
                           if name.endswith(".h"))
            if names:
                header = os.path.join(root, names[0])
                break
    checks: List[str] = []

    def expect(condition: bool, label: str) -> None:
        status = "ok" if condition else "FAIL"
        checks.append(f"  [{status}] {label}")
        if not condition:
            raise AssertionError(label)

    tmp = tempfile.mkdtemp(prefix="superc-serve-smoke-")
    sock = os.path.join(tmp, "serve.sock")
    server = ParseServer(
        socket_path=sock, max_queue=2,
        optimization=args.optimization,
        cache_dir=os.path.join(tmp, "cache"),
        include_paths=tuple(args.include),
        extra_definitions=parse_defines(args.define) or None).start()
    try:
        with connect(f"unix:{sock}") as session:
            client = session.transport  # pipelined submit/drain below
            first = session.parse(unit).record
            expect(first["status"] in ("ok", "degraded"),
                   f"first parse usable (status={first['status']})")
            expect(first["cache"] == "miss", "first parse is a miss")
            second = session.parse(unit).record
            expect(second["cache"] == "hit",
                   "second identical request is a cache hit")
            expect(second["serve"]["seconds"]
                   <= max(0.005, first["serve"]["seconds"]),
                   "warm hit is not slower than the cold parse")
            stats = session.stats()
            expect(stats["cache_hits"] >= 1,
                   "serve.cache.hit counter advanced")

            if header:
                # Overlay edit: changed header content, so dependent
                # units' closure digests move and a real re-parse is
                # forced (a plain invalidate of unchanged content
                # would legitimately re-hit the content-addressed
                # cache).
                with open(header, "r", encoding="utf-8") as handle:
                    header_text = handle.read()
                response = session.invalidate(
                    header,
                    text=header_text + "\n#define SERVE_SMOKE_EDIT 1\n")
                expect(response["status"] == "ok"
                       and unit in response["invalidated"],
                       f"invalidate({header}) drops the dependent "
                       f"unit")
                third = session.parse(unit).record
                expect(third["cache"] == "miss",
                       "edited header forces a real re-parse")
                expect(third["status"] in ("ok", "degraded"),
                       "re-parse after invalidate is usable")

            # Over-depth burst: the first request sleeps, the rest
            # pile up behind it; with max_queue=2 at least one must be
            # shed instead of queueing without bound.
            ids = [client.submit("parse", path=unit, delay=0.5,
                                 fresh=True)]
            ids += [client.submit("parse", path=unit, fresh=True)
                    for _ in range(6)]
            burst = client.drain(ids)
            statuses = [response["status"] for response in burst]
            expect(any(status == "shed" for status in statuses),
                   f"over-depth burst sheds "
                   f"({statuses.count('shed')}/{len(statuses)} shed)")
            expect(all(status in ("ok", "degraded", "shed")
                       for status in statuses),
                   "burst responses are served or shed, never lost")

            response = session.shutdown()
            expect(response["status"] == "ok",
                   f"shutdown drains cleanly "
                   f"(drained={response.get('drained')})")
        expect(server.wait(10.0), "server stopped after drain")
    except AssertionError as error:
        print("\n".join(checks))
        print(f"serve-smoke: FAILED — {error}", file=sys.stderr)
        return 1
    finally:
        server.close()
    print("\n".join(checks))
    print("serve-smoke: all checks passed")
    return 0


def _strip_volatile(record: dict) -> dict:
    """A response record minus per-request fields, for cross-transport
    equality checks."""
    return {key: value for key, value in record.items()
            if key not in ("id", "serve")}


def run_http_smoke(args) -> int:
    """The HTTP frontend contract: one daemon, two transports, one
    warm cache."""
    import http.client as httplib

    from repro.serve import ParseServer, connect

    unit = args.http_smoke
    if not os.path.isfile(unit):
        print(f"error: cannot read {unit}", file=sys.stderr)
        return 2
    checks: List[str] = []

    def expect(condition: bool, label: str) -> None:
        status = "ok" if condition else "FAIL"
        checks.append(f"  [{status}] {label}")
        if not condition:
            raise AssertionError(label)

    tmp = tempfile.mkdtemp(prefix="superc-http-smoke-")
    sock = os.path.join(tmp, "serve.sock")
    server = ParseServer(
        socket_path=sock, http_port=0, max_queue=16,
        optimization=args.optimization,
        cache_dir=os.path.join(tmp, "cache"),
        include_paths=tuple(args.include),
        extra_definitions=parse_defines(args.define) or None).start()
    try:
        host, port = server.http_address
        expect(server.http.url.startswith("http://"),
               f"daemon serves socket + HTTP ({server.http.url})")

        with connect(server.http.url) as session:
            # Raw-wire checks first: healthz and framing, the way a
            # load balancer or curl sees them.
            raw = httplib.HTTPConnection(host, port, timeout=30)
            raw.request("GET", "/healthz")
            health = raw.getresponse()
            health_body = json.loads(health.read().decode("utf-8"))
            expect(health.status == 200
                   and health_body["status"] == "ok",
                   "GET /healthz answers 200 while serving")
            raw.request("GET", "/v1/nope")
            lost = raw.getresponse()
            lost.read()
            expect(lost.status == 404, "unknown route answers 404")
            raw.request("POST", "/v1/stats", body=b"{}")
            wrong = raw.getresponse()
            wrong.read()
            expect(wrong.status == 405,
                   "wrong method on a known route answers 405")
            raw.close()

            first = session.parse(unit).record
            expect(first["status"] in ("ok", "degraded"),
                   f"HTTP parse usable (status={first['status']})")
            expect(first["cache"] == "miss",
                   "first HTTP parse is a miss")
            second = session.parse(unit).record
            expect(second["cache"] == "hit",
                   "HTTP re-parse is a warm cache hit")

            # The acceptance check: the socket client must see the
            # same record for the same unit — same warm cache, same
            # envelope, different framing only.
            with connect(f"unix:{sock}") as socket_session:
                via_socket = socket_session.parse(unit).record
            expect(via_socket["cache"] == "hit",
                   "socket transport hits the cache HTTP warmed")
            expect(_strip_volatile(via_socket)
                   == _strip_volatile(second),
                   "socket and HTTP answer identical records")

            response = session.invalidate(unit)
            expect(response["status"] == "ok",
                   f"HTTP invalidate ok "
                   f"(count={response.get('count')})")
            stats = session.stats()
            expect(stats["requests"] >= 4
                   and stats["cache_hits"] >= 2,
                   f"stats over HTTP see both transports "
                   f"(requests={stats['requests']}, "
                   f"hits={stats['cache_hits']})")

            response = session.shutdown()
            expect(response["status"] == "ok",
                   f"shutdown over HTTP drains cleanly "
                   f"(drained={response.get('drained')})")
        expect(server.wait(10.0), "server stopped after drain")
    except AssertionError as error:
        print("\n".join(checks))
        print(f"http-smoke: FAILED — {error}", file=sys.stderr)
        return 1
    finally:
        server.close()
    print("\n".join(checks))
    print("http-smoke: all checks passed")
    return 0


def run_chaos_smoke(args) -> int:
    """Fault-tolerance contract under a seeded chaos plan.

    One fault of each kind is armed against a live pooled daemon (the
    HTTP-site faults against its HTTP frontend); the assertion after
    every one is the same: the next request is still answered
    correctly.  Then the daemon is hard-killed (no drain) and a fresh
    one on the same cache directory must resume warm-tier
    short-circuiting from the journal — verified through ``http://``."""
    from repro import chaos
    from repro.serve import ParseServer, PoolConfig, connect

    unit = args.chaos_smoke
    if not os.path.isfile(unit):
        print(f"error: cannot read {unit}", file=sys.stderr)
        return 2
    checks: List[str] = []

    def expect(condition: bool, label: str) -> None:
        status = "ok" if condition else "FAIL"
        checks.append(f"  [{status}] {label}")
        if not condition:
            raise AssertionError(label)

    tmp = tempfile.mkdtemp(prefix="superc-chaos-smoke-")
    cache_dir = os.path.join(tmp, "cache")
    pool_config = PoolConfig(size=2, heartbeat_seconds=0.2)

    def make_server(name: str) -> "ParseServer":
        return ParseServer(
            socket_path=os.path.join(tmp, name), http_port=0,
            max_queue=16, workers=2, pool_config=pool_config,
            optimization=args.optimization, cache_dir=cache_dir,
            include_paths=tuple(args.include),
            extra_definitions=parse_defines(args.define) or None)

    plan = chaos.install(chaos.FaultPlan(seed=8))
    server = make_server("serve.sock").start()
    restarted = None
    try:
        with connect(f"unix:{server.socket_path}") as session:
            first = session.parse(unit).record
            expect(first["status"] in ("ok", "degraded"),
                   f"baseline parse usable (status={first['status']})")

            # 1. Worker crash mid-request: the supervisor reaps the
            # dead worker, restarts one under backoff, and the pool's
            # one-shot retry still answers this very request.
            plan.arm("pool.request", "worker-crash")
            crashed = session.parse(unit, fresh=True).record
            expect(crashed["status"] in ("ok", "degraded"),
                   "request survives its worker crashing")
            pool_stats = session.stats()["pool"]
            expect(pool_stats["crashes"] >= 1
                   and pool_stats["restarts"] >= 1,
                   f"supervisor reaped and restarted "
                   f"(crashes={pool_stats['crashes']}, "
                   f"restarts={pool_stats['restarts']})")

            # 2. Parse hang past its deadline: the supervisor SIGKILLs
            # the worker at the deadline and answers status=timeout;
            # the next request parses cleanly.
            plan.arm("pool.request", "worker-hang", seconds=30.0)
            hung = session.parse(unit, fresh=True,
                                 deadline=1.5).record
            expect(hung["status"] == "timeout",
                   f"hung worker killed at the deadline "
                   f"(status={hung['status']})")
            after = session.parse(unit, fresh=True).record
            expect(after["status"] in ("ok", "degraded"),
                   "clean parse right after the hang")

            # 3. Corrupt cache blob: invalidate demotes the memory
            # entry, the disk read hits the truncated blob, treats it
            # as a miss (deleting it), and the token tier still
            # short-circuits the re-parse.
            session.invalidate(unit)
            plan.arm("cache.get", "corrupt-blob")
            corrupt = session.parse(unit).record
            expect(corrupt["status"] in ("ok", "degraded"),
                   "request survives a corrupt cache blob")
            stats = session.stats()
            expect((stats["result_cache"] or {}).get("corrupt", 0) >= 1,
                   "corrupt blob detected, counted, and quarantined")

            # 4. Dropped client socket mid-response: the server-side
            # chaos hook closes the socket under the sender; the
            # client reconnects with backoff and resends.
            plan.arm("conn.send", "drop-conn")
            dropped = session.parse(unit).record
            expect(dropped["status"] in ("ok", "degraded"),
                   "client reconnects through a dropped socket")

            # 5. ENOSPC on the cache write: publishing is best-effort,
            # the parse result still comes back.
            plan.arm("cache.put", "enospc")
            enospc = session.parse(unit, fresh=True).record
            expect(enospc["status"] in ("ok", "degraded"),
                   "parse survives ENOSPC on the cache write")

        # 6. Torn HTTP response body: the frontend sends a full
        # Content-Length but half the bytes, then hard-closes; the
        # HTTP client sees IncompleteRead, reconnects, and resends.
        with connect(server.http.url) as http_session:
            plan.arm("http.send", "torn-body")
            torn = http_session.parse(unit).record
            expect(torn["status"] in ("ok", "degraded"),
                   "HTTP client heals a torn response body")

        # 7. Hard kill (no drain, no shutdown) + restart on the same
        # cache directory: the journal must bring the warm tiers back,
        # observed through the restarted daemon's HTTP frontend.
        server.close()
        expect(server.wait(10.0), "daemon hard-stopped")
        restarted = make_server("serve2.sock").start()
        with connect(restarted.http.url) as session:
            resumed = session.parse(unit).record
            expect(resumed.get("cache") == "hit"
                   and resumed.get("tier") in ("disk", "token"),
                   f"first post-restart request (over HTTP) "
                   f"short-circuits (tier={resumed.get('tier')})")
            stats = session.stats()
            expect((stats["journal"] or {}).get("resumed", 0) > 0,
                   f"journal resumed "
                   f"{(stats['journal'] or {}).get('resumed')} "
                   f"warm entr(y/ies)")
            session.shutdown()
        expect(restarted.wait(10.0), "restarted daemon drained")

        fired = {entry["kind"] for entry in plan.log}
        wanted = {"worker-crash", "worker-hang", "corrupt-blob",
                  "drop-conn", "enospc", "torn-body"}
        expect(fired == wanted,
               f"all six fault kinds fired ({sorted(fired)})")
    except AssertionError as error:
        print("\n".join(checks))
        print(f"chaos-smoke: FAILED — {error}", file=sys.stderr)
        return 1
    finally:
        chaos.uninstall()
        server.close()
        if restarted is not None:
            restarted.close()
    print("\n".join(checks))
    print("chaos-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
