"""Scaling sweep: SuperC latency vs corpus size (Figure 10 support).

Figure 10's claim is that SuperC's latency scales roughly linearly
with compilation-unit size.  This bench sweeps the corpus generator's
scale knob and reports total latency per scale, so the growth curve is
visible directly (an extension of the paper's single-scatter plot).

A second bench drives the same corpus through ``repro.engine``'s
worker pool and reports the serial-vs-parallel speedup — the paper's
7,665-unit kernel run is embarrassingly parallel across compilation
units, and this measures how much of that the batch engine recovers.
"""

import os

from benchmarks.conftest import emit
from repro.corpus import KernelSpec, generate_kernel
from repro.engine import BatchEngine, CorpusJob, EngineConfig
from repro.eval import measure_superc, unit_size_bytes

SCALES = [1, 2, 3]

WORKER_COUNTS = [1, 2, 4]


def test_scaling_linearity(benchmark):
    holder = {}

    def run():
        rows = []
        for scale in SCALES:
            spec = KernelSpec(seed=99, subsystems=1,
                              drivers_per_subsystem=1,
                              figure6_entries=6).scaled(scale)
            corpus = generate_kernel(spec)
            dist = measure_superc(corpus)
            total_bytes = sum(unit_size_bytes(corpus, unit)
                              for unit in corpus.units)
            rows.append((scale, len(corpus.units), total_bytes,
                         dist.total))
        holder["rows"] = rows
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]

    lines = ["", "=" * 58,
             "Scaling: SuperC latency vs corpus size",
             f"{'scale':>6}{'units':>7}{'KB':>9}{'seconds':>10}"
             f"{'ms/KB':>8}"]
    for scale, units, total_bytes, seconds in rows:
        per_kb = 1000.0 * seconds / (total_bytes / 1024)
        lines.append(f"{scale:>6}{units:>7}{total_bytes / 1024:>9.0f}"
                     f"{seconds:>10.2f}{per_kb:>8.2f}")
    lines.append("=" * 58)
    emit(lines)
    benchmark.extra_info["rows"] = rows

    # Rough linearity: per-byte cost at the largest scale within a
    # small factor of the smallest.
    first = rows[0][3] / rows[0][2]
    last = rows[-1][3] / rows[-1][2]
    assert last < 8 * first
    assert first < 8 * last


def test_parallel_speedup(benchmark, tmp_path):
    """Serial vs worker-pool wall time through ``repro.engine``."""
    corpus = generate_kernel(KernelSpec(seed=99, subsystems=4,
                                        drivers_per_subsystem=4,
                                        figure6_entries=6))
    job = CorpusJob.from_corpus(corpus)
    holder = {}

    def run():
        rows = []
        baseline = None
        for workers in WORKER_COUNTS:
            config = EngineConfig(workers=workers,
                                  use_result_cache=False,
                                  cache_dir=str(tmp_path / "cache"))
            report = BatchEngine(config).run(job)
            assert report.all_ok, report.by_status
            if baseline is None:
                baseline = report
            else:
                # Parallelism must not change any outcome.
                assert report.statuses() == baseline.statuses()
                assert report.subparser_rollup() == \
                    baseline.subparser_rollup()
            rows.append((workers, report.wall_seconds,
                         report.cpu_seconds))
        holder["rows"] = rows
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    serial_wall = rows[0][1]

    lines = ["", "=" * 58,
             f"Batch engine speedup ({len(job.units)} units, "
             f"{os.cpu_count()} cpus)",
             f"{'workers':>8}{'wall s':>9}{'cpu s':>9}{'speedup':>9}"]
    for workers, wall, cpu in rows:
        lines.append(f"{workers:>8}{wall:>9.2f}{cpu:>9.2f}"
                     f"{serial_wall / wall:>8.2f}x")
    lines.append("=" * 58)
    emit(lines)
    benchmark.extra_info["rows"] = rows
