"""Tests for the baselines: the formula/DPLL condition algebra and the
gcc-like single-configuration pipeline."""

import itertools

import pytest

from repro.baselines import FormulaManager, GccLike, allyesconfig
from repro.cpp import DictFileSystem, Preprocessor
from repro.superc import SuperC
from tests.support import TEST_BUILTINS


VARS = ["A", "B", "C"]


def build(expr, mgr):
    tag = expr[0]
    if tag == "var":
        return mgr.var(expr[1])
    if tag == "const":
        return mgr.constant(expr[1])
    if tag == "not":
        return ~build(expr[1], mgr)
    left, right = build(expr[1], mgr), build(expr[2], mgr)
    return (left & right) if tag == "and" else (left | right)


def eval_expr(expr, env):
    tag = expr[0]
    if tag == "var":
        return env[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "not":
        return not eval_expr(expr[1], env)
    left, right = eval_expr(expr[1], env), eval_expr(expr[2], env)
    return (left and right) if tag == "and" else (left or right)


class TestFormulaAlgebra:
    def test_constants(self):
        mgr = FormulaManager()
        assert mgr.true.is_true()
        assert mgr.false.is_false()
        assert not mgr.false.is_satisfiable()

    def test_var_satisfiable(self):
        mgr = FormulaManager()
        a = mgr.var("A")
        assert a.is_satisfiable()
        assert not a.is_true()
        assert (a & ~a).is_false()
        assert (a | ~a).is_true()

    def test_de_morgan_semantics(self):
        mgr = FormulaManager()
        a, b = mgr.var("A"), mgr.var("B")
        left = ~(a & b)
        right = ~a | ~b
        assert left.equiv(right).is_true()

    def test_evaluate(self):
        mgr = FormulaManager()
        f = (mgr.var("A") & ~mgr.var("B")) | mgr.var("C")
        assert f.evaluate({"A": True})
        assert not f.evaluate({"A": True, "B": True})
        assert f.evaluate({"C": True})

    def test_conjoin_disjoin(self):
        mgr = FormulaManager()
        parts = [mgr.var(name) for name in VARS]
        assert mgr.conjoin(parts).evaluate(
            {name: True for name in VARS})
        assert not mgr.disjoin(parts).evaluate({})

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_exhaustive_small_formulas(self, depth):
        """Formula satisfiability matches brute-force truth tables."""
        def exprs(d):
            if d == 0:
                return [("var", v) for v in VARS] + \
                    [("const", True), ("const", False)]
            smaller = exprs(d - 1)[:6]
            out = []
            for left in smaller[:4]:
                out.append(("not", left))
                for right in smaller[:3]:
                    out.append(("and", left, right))
                    out.append(("or", left, right))
            return out

        for expr in exprs(depth)[:60]:
            mgr = FormulaManager()
            formula = build(expr, mgr)
            truth = any(
                eval_expr(expr, dict(zip(VARS, bits)))
                for bits in itertools.product([False, True],
                                              repeat=len(VARS)))
            assert formula.is_satisfiable() == truth, expr

    def test_cnf_instrumentation(self):
        mgr = FormulaManager()
        f = (mgr.var("A") | mgr.var("B")) & (mgr.var("C") | ~mgr.var("A"))
        f.is_satisfiable()
        assert mgr.sat_queries >= 1
        assert mgr.cnf_conversions >= 1
        assert mgr.cnf_clauses >= 2

    def test_literal_conjunction_fast_path(self):
        mgr = FormulaManager()
        f = mgr.var("A") & ~mgr.var("B") & mgr.var("C")
        assert f.is_satisfiable()
        assert mgr.cnf_conversions == 0  # fast path, no CNF needed
        g = mgr.var("A") & ~mgr.var("A")
        assert not g.is_satisfiable()
        assert mgr.cnf_conversions == 0

    def test_tseitin_fallback_beyond_budget(self):
        mgr = FormulaManager(clause_budget=50)
        # OR of ANDs: naive distribution needs 2^12 clauses.  The
        # satisfiable cases short-circuit via cached models, so force
        # the solver with an *unsatisfiable* non-literal query.
        f = mgr.false
        for i in range(12):
            f = f | (mgr.var(f"a{i}") & mgr.var("Y"))
        g = f & ~mgr.var("Y")
        assert not g.is_satisfiable()
        assert mgr.tseitin_fallbacks >= 1

    def test_tseitin_preserves_unsatisfiability(self):
        mgr = FormulaManager(clause_budget=4)
        disjunction = mgr.false
        for i in range(4):
            disjunction = disjunction | \
                (mgr.var(f"x{i}") & mgr.var("Y"))
        # (OR of (xi & Y)) & !Y is unsatisfiable.
        f = disjunction & ~mgr.var("Y")
        assert not f.is_satisfiable()

    def test_hash_consing(self):
        mgr = FormulaManager()
        a, b = mgr.var("A"), mgr.var("B")
        assert (a & b) is (a & b)
        assert (a | b) is (a | b)
        assert ~(a & b) is ~(a & b)

    def test_random_formulas_match_brute_force(self):
        """The layered solving strategy (construction-time literals,
        model extension, conjunct decomposition, DPLL) stays exact."""
        import random

        rng = random.Random(7)
        for _ in range(600):
            mgr = FormulaManager()

            def gen(depth):
                r = rng.random()
                if depth <= 0 or r < 0.35:
                    v = mgr.var(rng.choice(VARS))
                    return ~v if rng.random() < 0.5 else v
                if r < 0.65:
                    return gen(depth - 1) & gen(depth - 1)
                if r < 0.9:
                    return gen(depth - 1) | gen(depth - 1)
                return ~gen(depth - 1)

            f = gen(4)
            truth = any(
                f.evaluate(dict(zip(VARS, bits)))
                for bits in itertools.product([False, True],
                                              repeat=len(VARS)))
            assert f.is_satisfiable() == truth, f.to_expr_string()

    def test_decomposition_entangled_residuals(self):
        """Residuals sharing variables must fall back to full DPLL:
        (A|B) & (!A|!B) & (A|!B) & (!A|B) is unsatisfiable."""
        mgr = FormulaManager()
        a, b = mgr.var("A"), mgr.var("B")
        f = (a | b) & (~a | ~b) & (a | ~b) & (~a | b)
        assert not f.is_satisfiable()

    def test_decomposition_disjoint_residuals(self):
        mgr = FormulaManager()
        f = (mgr.var("A") | mgr.var("B")) & \
            (mgr.var("C") | mgr.var("D")) & ~mgr.var("E")
        assert f.is_satisfiable()
        g = f & ~mgr.var("A") & ~mgr.var("B")
        assert not g.is_satisfiable()


class TestFormulaPipeline:
    def test_preprocessor_runs_on_formulas(self):
        """The whole configuration-preserving preprocessor is generic
        over the condition algebra."""
        source = ("#ifdef A\n#define X 1\n#else\n#define X 2\n#endif\n"
                  "int v = X;\n")
        pp = Preprocessor(DictFileSystem({}), builtins=TEST_BUILTINS,
                          manager=FormulaManager())
        unit = pp.preprocess(source, "t.c")
        from repro.cpp import count_conditionals
        assert count_conditionals(unit.tree) == 1

    def test_superc_pipeline_on_formulas(self):
        from repro.cgrammar import classify, make_context_factory, \
            c_tables
        from repro.parser.fmlr import FMLRParser
        source = ("#ifdef CONFIG_A\nint a;\n#endif\nint tail;\n")
        manager = FormulaManager()
        pp = Preprocessor(DictFileSystem({}), builtins=TEST_BUILTINS,
                          manager=manager)
        unit = pp.preprocess(source, "t.c")
        parser = FMLRParser(c_tables(), classify,
                            make_context_factory(manager))
        result = parser.parse(unit.tree, manager,
                              unit.feasible_condition)
        assert result.ok
        assert len(result.accepted) >= 1


class TestGccLike:
    def test_compile_simple(self):
        gcc = GccLike(DictFileSystem({}), builtins=TEST_BUILTINS)
        result = gcc.compile_source("int main(void) { return 0; }\n")
        assert result.ast is not None
        assert result.total_seconds > 0

    def test_single_configuration_selected(self):
        source = ("#ifdef CONFIG_A\nint a;\n#else\nint b;\n#endif\n")
        on = GccLike(DictFileSystem({}), config={"CONFIG_A": "1"},
                     builtins=TEST_BUILTINS).compile_source(source)
        off = GccLike(DictFileSystem({}), builtins=TEST_BUILTINS) \
            .compile_source(source)
        on_texts = [t.text for t in on.tokens]
        off_texts = [t.text for t in off.tokens]
        assert "a" in on_texts and "a" not in off_texts
        assert "b" in off_texts and "b" not in on_texts

    def test_allyesconfig(self):
        config = allyesconfig(["CONFIG_A", "CONFIG_B"])
        assert config == {"CONFIG_A": "1", "CONFIG_B": "1"}

    def test_compile_file(self):
        fs = DictFileSystem({"m.c": "int x;\n"})
        gcc = GccLike(fs, builtins=TEST_BUILTINS)
        assert gcc.compile_file("m.c").ast is not None
        with pytest.raises(FileNotFoundError):
            gcc.compile_file("missing.c")

    def test_typedefs_work(self):
        gcc = GccLike(DictFileSystem({}), builtins=TEST_BUILTINS)
        result = gcc.compile_source(
            "typedef int T; T f(T x) { return (T)x; }\n")
        assert result.ast is not None
