"""Grammar and parse-table introspection.

Debugging aids for grammar work: human-readable item-set dumps,
conflict explanations (which items compete on which lookahead), and a
summary report.  The Bison-replacement equivalent of ``--report=state``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.parser.grammar import Grammar
from repro.parser.lalr import _LR0, Conflict, Tables


class GrammarReport:
    """Summary statistics plus formatted sections."""

    def __init__(self, tables: Tables):
        self.tables = tables
        self.grammar = tables.grammar
        self._automaton: Optional[_LR0] = None

    @property
    def automaton(self) -> _LR0:
        if self._automaton is None:
            self._automaton = _LR0(self.grammar)
        return self._automaton

    # -- summary ----------------------------------------------------------

    def summary(self) -> str:
        grammar = self.grammar
        lines = [
            f"grammar: start symbol {grammar.start!r}",
            f"  productions:  {len(grammar.productions)}",
            f"  nonterminals: {len(grammar.nonterminals)}",
            f"  terminals:    {len(grammar.terminals)}",
            f"  lr(0) states: {self.tables.num_states}",
            f"  conflicts:    {len(self.tables.conflicts)} "
            f"({self._conflict_kinds()})",
            f"  complete nonterminals: {len(grammar.complete)}",
        ]
        return "\n".join(lines)

    def _conflict_kinds(self) -> str:
        kinds: Dict[str, int] = {}
        for conflict in self.tables.conflicts:
            kinds[conflict.kind] = kinds.get(conflict.kind, 0) + 1
        return ", ".join(f"{count} {kind}"
                         for kind, count in sorted(kinds.items())) \
            or "none"

    # -- states -----------------------------------------------------------

    def describe_state(self, state: int) -> str:
        """Item set, actions, and gotos of one state."""
        closure = self.automaton.closures[state]
        productions = self.grammar.productions
        lines = [f"state {state}"]
        for prod_idx, dot in sorted(closure):
            production = productions[prod_idx]
            rhs = list(production.rhs)
            rhs.insert(dot, ".")
            lines.append(f"  {production.lhs} -> {' '.join(rhs)}")
        actions = self.tables.action[state]
        for terminal in sorted(actions):
            action = actions[terminal]
            if action[0] == "s":
                lines.append(f"  on {terminal!r}: shift -> "
                             f"state {action[1]}")
            elif action[0] == "r":
                lines.append(f"  on {terminal!r}: reduce "
                             f"{productions[action[1]]}")
            else:
                lines.append(f"  on {terminal!r}: accept")
        for nonterminal in sorted(self.tables.goto[state]):
            lines.append(f"  goto {nonterminal}: state "
                         f"{self.tables.goto[state][nonterminal]}")
        return "\n".join(lines)

    # -- conflicts ----------------------------------------------------------

    def explain_conflict(self, conflict: Conflict) -> str:
        """The competing items behind one recorded conflict."""
        productions = self.grammar.productions
        closure = self.automaton.closures[conflict.state]
        lines = [f"{conflict.kind} in state {conflict.state} on "
                 f"{conflict.terminal!r}: chose {conflict.chosen}, "
                 f"rejected {conflict.rejected}"]
        involved = set()
        for action in (conflict.chosen, conflict.rejected):
            if action[0] == "r":
                involved.add(action[1])
        for prod_idx, dot in sorted(closure):
            production = productions[prod_idx]
            is_reduce_item = dot == len(production.rhs) and \
                prod_idx in involved
            shifts_terminal = dot < len(production.rhs) and \
                production.rhs[dot] == conflict.terminal
            if is_reduce_item or shifts_terminal:
                rhs = list(production.rhs)
                rhs.insert(dot, ".")
                role = "reduce" if is_reduce_item else "shift"
                lines.append(f"  [{role}] {production.lhs} -> "
                             f"{' '.join(rhs)}")
        return "\n".join(lines)

    def conflict_report(self) -> str:
        if not self.tables.conflicts:
            return "no conflicts"
        return "\n\n".join(self.explain_conflict(conflict)
                           for conflict in self.tables.conflicts)


def report(tables: Tables) -> GrammarReport:
    """Entry point: build a report object for generated tables."""
    return GrammarReport(tables)
