"""Preprocessor error types."""

from __future__ import annotations

from typing import Optional

from repro.lexer.tokens import Token


class PreprocessorError(Exception):
    """A hard preprocessing error (malformed directive, bad paste,
    unterminated invocation, or a ``#error`` outside conditionals).

    Raised only for TRUE-condition failures; failures under a narrower
    presence condition are confined to a
    :class:`repro.errors.Diagnostic` and pruned like ``#error``
    branches (see :mod:`repro.errors`).  ``phase`` tags which pipeline
    stage raised, so confinement can classify the diagnostic.
    """

    def __init__(self, message: str, token: Optional[Token] = None,
                 phase: str = "preprocess"):
        where = ""
        if token is not None:
            where = f"{token.file}:{token.line}:{token.col}: "
        super().__init__(where + message)
        self.token = token
        self.phase = phase


class IncompleteInvocation(Exception):
    """Internal: a function-like invocation ran off the end of a
    conditional branch; the caller must hoist a wider region."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name
