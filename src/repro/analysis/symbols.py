"""Configuration-aware symbol extraction.

A first step toward the paper's future work (§8): configuration-
preserving *semantic* analysis, which "will require incorporating
presence conditions into all functionality, including by maintaining
multiply-defined symbols".  This module extracts file-scope symbols —
functions, variables, typedefs, struct/union/enum tags — each tagged
with the presence condition under which it is declared, from the
all-configuration AST.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.lexer.tokens import Token, TokenKind
from repro.parser.ast import Node, StaticChoice


class SymbolInfo:
    """One declared name with its presence condition and kind."""

    __slots__ = ("name", "kind", "condition", "line")

    def __init__(self, name: str, kind: str, condition: Any,
                 line: Optional[int]):
        self.name = name
        self.kind = kind  # function / variable / typedef / tag
        self.condition = condition
        self.line = line

    def __repr__(self) -> str:
        return (f"SymbolInfo({self.name!r}, {self.kind}, "
                f"{self.condition.to_expr_string()})")


def file_scope_symbols(ast: Any, manager: Any) -> List[SymbolInfo]:
    """All file-scope symbols with presence conditions."""
    symbols: List[SymbolInfo] = []
    for condition, declaration in _external_declarations(ast,
                                                         manager.true):
        symbols.extend(_symbols_of(declaration, condition))
    return symbols


def conditional_symbols(symbols: List[SymbolInfo]) -> List[SymbolInfo]:
    """Symbols that exist only in some configurations."""
    return [symbol for symbol in symbols
            if not symbol.condition.is_true()]


def multiply_declared(symbols: List[SymbolInfo]) \
        -> Dict[str, List[SymbolInfo]]:
    """Names declared more than once (usually in different
    configurations — e.g. one definition per #ifdef branch)."""
    by_name: Dict[str, List[SymbolInfo]] = {}
    for symbol in symbols:
        by_name.setdefault(symbol.name, []).append(symbol)
    return {name: entries for name, entries in by_name.items()
            if len(entries) > 1}


def _external_declarations(ast: Any, condition: Any) \
        -> Iterator[Tuple[Any, Node]]:
    """Yield (condition, declaration-or-definition) at file scope."""
    if isinstance(ast, tuple):
        for item in ast:
            yield from _external_declarations(item, condition)
    elif isinstance(ast, StaticChoice):
        for branch_cond, branch in ast.branches:
            yield from _external_declarations(branch,
                                              condition & branch_cond)
    elif isinstance(ast, Node):
        if ast.name in ("Declaration", "FunctionDefinition"):
            yield condition, ast
        elif ast.name == "TranslationUnit":
            for child in ast.children:
                yield from _external_declarations(child, condition)


def _symbols_of(node: Node, condition: Any) -> List[SymbolInfo]:
    symbols: List[SymbolInfo] = []
    if node.name == "FunctionDefinition":
        name_token = _declarator_identifier(
            node.children[1] if len(node.children) > 1
            else node.children[0])
        if name_token is not None:
            symbols.append(SymbolInfo(name_token.text, "function",
                                      condition, name_token.line))
        return symbols
    # Declaration: children = (specifiers, declarators?, ';').
    children = node.children
    specifiers = children[0] if children else ()
    is_typedef = _mentions_keyword(specifiers, "typedef")
    symbols.extend(_tags_of(specifiers, condition))
    if len(children) >= 2:
        for name_token in _declared_names(children[1]):
            kind = "typedef" if is_typedef else "variable"
            symbols.append(SymbolInfo(name_token.text, kind, condition,
                                      name_token.line))
    return symbols


def _tags_of(value: Any, condition: Any) -> List[SymbolInfo]:
    tags: List[SymbolInfo] = []
    from repro.cgrammar import C_KEYWORDS
    if isinstance(value, Node):
        if value.name in ("StructSpecifier", "StructReference",
                          "EnumSpecifier", "EnumReference"):
            for child in value.children:
                # Skip the struct/union/enum keyword itself (keywords
                # are lexed as identifiers).
                if isinstance(child, Token) and \
                        child.kind is TokenKind.IDENTIFIER and \
                        child.text not in C_KEYWORDS:
                    tags.append(SymbolInfo(child.text, "tag", condition,
                                           child.line))
                    break
        for child in value.children:
            tags.extend(_tags_of(child, condition))
    elif isinstance(value, tuple):
        for item in value:
            tags.extend(_tags_of(item, condition))
    return tags


def _declared_names(value: Any) -> Iterator[Token]:
    if isinstance(value, Token):
        if value.kind is TokenKind.IDENTIFIER:
            yield value
    elif isinstance(value, tuple):
        for item in value:
            yield from _declared_names(item)
    elif isinstance(value, StaticChoice):
        for _cond, branch in value.branches:
            yield from _declared_names(branch)
    elif isinstance(value, Node):
        token = _declarator_identifier(value)
        if token is not None:
            yield token


def _declarator_identifier(value: Any) -> Optional[Token]:
    if isinstance(value, Token):
        return value if value.kind is TokenKind.IDENTIFIER else None
    if not isinstance(value, Node):
        return None
    name = value.name
    children = value.children
    if not children:
        return None
    if name == "PointerDeclarator":
        return _declarator_identifier(children[-1])
    if name in ("ArrayDeclarator", "FunctionDeclarator",
                "InitializedDeclarator", "AsmDeclarator", "BitField"):
        return _declarator_identifier(children[0])
    if name == "AttributedDeclarator":
        return _declarator_identifier(children[-1])
    return None


def _mentions_keyword(value: Any, keyword: str) -> bool:
    if isinstance(value, Token):
        return value.text == keyword
    if isinstance(value, tuple):
        return any(_mentions_keyword(item, keyword) for item in value)
    if isinstance(value, StaticChoice):
        return any(_mentions_keyword(branch, keyword)
                   for _cond, branch in value.branches)
    if isinstance(value, Node):
        return any(_mentions_keyword(child, keyword)
                   for child in value.children)
    return False
