"""Tests for the variability-aware undeclared-identifier analysis."""

import pytest

from repro.analysis.undeclared import find_undeclared
from repro.cpp.conditions import defined_var
from repro.superc import parse_c


def analyze(source, externals=()):
    result = parse_c(source)
    assert result.ok, [str(f) for f in result.failures][:3]
    return result, find_undeclared(result.ast, result.unit.manager,
                                   externals=externals)


def by_name(findings):
    return {f.name: f for f in findings}


class TestBasics:
    def test_clean_unit(self):
        _r, findings = analyze(
            "int x;\nint f(int a) { return x + a; }\n")
        assert findings == []

    def test_undeclared_object(self):
        _r, findings = analyze("int f(void) { return mystery; }\n")
        found = by_name(findings)
        assert "mystery" in found
        assert found["mystery"].kind == "object"
        assert found["mystery"].condition.is_true()

    def test_implicit_function(self):
        _r, findings = analyze("int f(void) { return helper(1); }\n")
        found = by_name(findings)
        assert found["helper"].kind == "implicit-function"

    def test_declared_function_not_reported(self):
        _r, findings = analyze(
            "int helper(int);\nint f(void) { return helper(1); }\n")
        assert findings == []

    def test_externals_suppress(self):
        _r, findings = analyze(
            "int f(void) { return printf; }\n",
            externals=("printf",))
        assert findings == []

    def test_block_scoping(self):
        _r, findings = analyze(
            "int f(void) { { int inner = 1; } return inner; }\n")
        assert "inner" in by_name(findings)

    def test_use_before_declaration(self):
        _r, findings = analyze(
            "int f(void) { int a = b; int b = 2; return a + b; }\n")
        assert "b" in by_name(findings)

    def test_enum_constants_declared(self):
        _r, findings = analyze(
            "enum color { RED, GREEN };\n"
            "int f(void) { return RED + GREEN; }\n")
        assert findings == []

    def test_parameters_declared(self):
        _r, findings = analyze(
            "int add(int left, int right) { return left + right; }\n")
        assert findings == []

    def test_member_names_not_uses(self):
        _r, findings = analyze(
            "struct p { int x; };\n"
            "int f(struct p *q) { return q->x; }\n")
        assert findings == []

    def test_for_loop_declaration(self):
        _r, findings = analyze(
            "int f(void) { int s = 0; "
            "for (int i = 0; i < 4; i++) s += i; return s; }\n")
        assert findings == []


class TestVariability:
    def test_conditional_declaration_unconditional_use(self):
        """The flagship bug class: declared only under CONFIG_A, used
        everywhere."""
        source = ("#ifdef CONFIG_A\nint gadget;\n#endif\n"
                  "int f(void) { return gadget; }\n")
        _r, findings = analyze(source)
        found = by_name(findings)
        assert "gadget" in found
        condition = found["gadget"].condition
        # Undeclared exactly when CONFIG_A is off.
        assert condition.evaluate({}) is True
        assert condition.evaluate(
            {defined_var("CONFIG_A"): True}) is False

    def test_matching_conditions_clean(self):
        source = ("#ifdef CONFIG_A\nint gadget;\n#endif\n"
                  "int f(void) {\n#ifdef CONFIG_A\n  return gadget;\n"
                  "#endif\n  return 0;\n}\n")
        _r, findings = analyze(source)
        assert findings == []

    def test_declarations_in_both_branches_clean(self):
        source = ("#ifdef CONFIG_A\nstatic int impl;\n#else\n"
                  "static int impl;\n#endif\n"
                  "int f(void) { return impl; }\n")
        _r, findings = analyze(source)
        assert findings == []

    def test_partial_overlap(self):
        source = ("#ifdef A\nint v;\n#endif\n"
                  "int f(void) {\n#ifdef B\n  return v;\n#endif\n"
                  "  return 0;\n}\n")
        _r, findings = analyze(source)
        found = by_name(findings)
        assert "v" in found
        condition = found["v"].condition
        # Broken exactly when B && !A.
        assert condition.evaluate({defined_var("B"): True}) is True
        assert condition.evaluate({defined_var("B"): True,
                                   defined_var("A"): True}) is False
        assert condition.evaluate({}) is False

    def test_conditional_function_definition(self):
        source = ("#ifdef FAST\nstatic int path(void) { return 1; }\n"
                  "#endif\n"
                  "int run(void) { return path(); }\n")
        _r, findings = analyze(source)
        found = by_name(findings)
        assert found["path"].kind == "implicit-function"
        assert found["path"].condition.evaluate({}) is True
        assert found["path"].condition.evaluate(
            {defined_var("FAST"): True}) is False

    def test_conditional_use_of_conditional_enum(self):
        source = ("#ifdef A\nenum m { M_ON };\n#endif\n"
                  "int f(void) {\n#ifdef A\n  return M_ON;\n#endif\n"
                  "  return 0;\n}\n")
        _r, findings = analyze(source)
        assert findings == []

    def test_statement_expression_scanned(self):
        source = ("int f(void) { return ({ int t = ghost; t; }); }\n")
        _r, findings = analyze(source)
        assert "ghost" in by_name(findings)
