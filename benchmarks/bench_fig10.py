"""Figure 10: SuperC latency breakdown and the gcc baseline.

Plots (as a printed series) lexing, preprocessing, and parsing time
against compilation-unit size, and reports the gcc-like
single-configuration percentiles for comparison.

Expected shape (paper): total latency scales roughly linearly with
unit size, split mostly between preprocessing and parsing; the
single-configuration baseline is an order of magnitude faster (gcc was
12-32x faster than SuperC) because it preserves no conditionals.
"""

from benchmarks.conftest import emit
from repro.eval import measure_gcc_like, measure_superc


def test_figure10_breakdown(benchmark, kernel_corpus):
    holder = {}

    def run():
        holder["superc"] = measure_superc(kernel_corpus)
        holder["gcc"] = measure_gcc_like(kernel_corpus)
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    superc, gcc = holder["superc"], holder["gcc"]

    lines = ["", "=" * 72,
             "Figure 10: SuperC latency breakdown per compilation unit",
             f"{'Unit':<32}{'KB':>6}{'lex':>8}{'preproc':>9}"
             f"{'parse':>8}{'total':>8}"]
    for sample in sorted(superc.samples, key=lambda s: s.size_bytes):
        lines.append(
            f"{sample.unit:<32}{sample.size_bytes / 1024:>6.1f}"
            f"{sample.lex:>8.3f}{sample.preprocess:>9.3f}"
            f"{sample.parse:>8.3f}{sample.seconds:>8.3f}")
    total_lex = sum(s.lex for s in superc.samples)
    total_pp = sum(s.preprocess for s in superc.samples)
    total_parse = sum(s.parse for s in superc.samples)
    lines.append(f"{'TOTAL':<32}{'':>6}{total_lex:>8.3f}"
                 f"{total_pp:>9.3f}{total_parse:>8.3f}"
                 f"{superc.total:>8.3f}")
    lines.append("")
    lines.append("gcc-like single-configuration baseline (seconds):")
    lines.append(f"  50th={gcc.percentile(0.5):.3f}  "
                 f"90th={gcc.percentile(0.9):.3f}  "
                 f"100th={gcc.maximum:.3f}")
    speedup = superc.total / gcc.total if gcc.total else float("inf")
    lines.append(f"  speedup over SuperC: {speedup:.1f}x "
                 "(paper: 12-32x)")
    lines.append("=" * 72)
    emit(lines)

    benchmark.extra_info["speedup"] = speedup
    # Shape: most SuperC time is preprocessing + parsing; the
    # single-configuration baseline is several times faster.
    assert total_pp + total_parse > total_lex
    assert gcc.total < superc.total
    # Rough linearity: the largest unit should not take wildly more
    # per byte than the smallest (no superlinear blow-up).
    ordered = sorted(superc.samples, key=lambda s: s.size_bytes)
    per_byte = [s.seconds / s.size_bytes for s in ordered]
    assert max(per_byte) < 20 * min(per_byte)
