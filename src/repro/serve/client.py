"""Client for the parse daemon: sockets in, Result protocol out.

:class:`ServeClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.server` over a Unix-domain socket or TCP.  The
synchronous helpers (:meth:`parse`, :meth:`invalidate`, :meth:`stats`,
:meth:`shutdown`) send one request and block for its response;
:meth:`submit` / :meth:`drain` pipeline many requests at once (burst
testing, editors batching a save-storm) and match responses by ``id``.

``parse`` wraps the response record in
:class:`repro.engine.UnitResult`, so a served parse satisfies the same
structural Result protocol (``status/ok/degraded/diagnostics/timing/
profile``) as a local ``repro.parse`` call — callers can switch
between in-process and daemon parsing without changing a line.

**Fault tolerance.**  A daemon restarting under supervision refuses
connections (``ECONNREFUSED``) or tears existing ones
(``ECONNRESET``/EOF) for a moment; :meth:`request` absorbs that by
reconnecting and resending under bounded, deterministic seeded-jitter
exponential backoff.  When the retry budget is spent it returns a
*structured* ``{"status": "unavailable", ...}`` response instead of
raising a raw socket error, so callers (and the CLI) handle a down
daemon the same way they handle a shed or timed-out request.  The
low-level methods (:meth:`connect`, :meth:`submit`, :meth:`wait_for`)
stay single-attempt and raise :class:`ServeError`.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.results import UnitResult

DEFAULT_TIMEOUT = 60.0

# Client-side response status: the daemon could not be reached within
# the retry budget; no work was done (alongside the server's shed).
STATUS_UNAVAILABLE = "unavailable"


class ServeError(ConnectionError):
    """The server connection failed or answered garbage.

    ``retryable`` marks transport-level failures a reconnect can heal
    (refused/reset connections, EOF mid-response); protocol-level
    garbage (an unparseable response line) is not retryable.
    """

    def __init__(self, message: str, retryable: bool = False):
        super().__init__(message)
        self.retryable = retryable


class ServeClient:
    """One connection to a running parse daemon."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None,
                 port: Optional[int] = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 retries: int = 4,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_max: float = 1.0,
                 backoff_jitter: float = 0.5,
                 backoff_seed: int = 0):
        if socket_path is None and port is None:
            raise ValueError("need socket_path or host/port")
        self.socket_path = socket_path
        self.host = host or "127.0.0.1"
        self.port = port
        self.timeout = timeout
        # request() absorbs this many reconnect-and-resend attempts
        # after the first failure before answering "unavailable".
        self.retries = max(0, retries)
        self.backoff_base = max(0.0, backoff_base)
        self.backoff_factor = max(1.0, backoff_factor)
        self.backoff_max = max(0.0, backoff_max)
        self.backoff_jitter = max(0.0, backoff_jitter)
        self.backoff_seed = backoff_seed
        self._sock: Optional[socket.socket] = None
        self._recv_buffer = b""
        self._next_id = 0
        self._pending: Dict[Any, dict] = {}

    # -- connection ----------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ServeError(f"cannot connect to parse server: {exc}",
                             retryable=True) from exc
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _reset_connection(self) -> None:
        """Drop the connection and all half-read state so the next
        attempt starts from a clean socket."""
        self.close()
        self._recv_buffer = b""
        self._pending.clear()

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire ----------------------------------------------------------

    def submit(self, op: str, **fields: Any) -> int:
        """Send one request without waiting; returns its ``id``."""
        self.connect()
        self._next_id += 1
        request = {"id": self._next_id, "op": op}
        request.update({key: value for key, value in fields.items()
                        if value is not None})
        payload = (json.dumps(request) + "\n").encode("utf-8")
        try:
            self._sock.sendall(payload)
        except OSError as exc:
            raise ServeError(f"send failed: {exc}",
                             retryable=True) from exc
        return self._next_id

    def _read_response(self) -> dict:
        while b"\n" not in self._recv_buffer:
            try:
                chunk = self._sock.recv(65536)
            except OSError as exc:
                raise ServeError(f"receive failed: {exc}",
                                 retryable=True) from exc
            if not chunk:
                raise ServeError("server closed the connection",
                                 retryable=True)
            self._recv_buffer += chunk
        line, _sep, self._recv_buffer = \
            self._recv_buffer.partition(b"\n")
        try:
            return json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServeError(f"bad response line: {exc}") from exc

    def wait_for(self, request_id: int) -> dict:
        """Response for ``request_id``; responses arriving out of order
        (sheds overtaking parses) are parked for their own waiters."""
        if request_id in self._pending:
            return self._pending.pop(request_id)
        while True:
            response = self._read_response()
            if response.get("id") == request_id:
                return response
            self._pending[response.get("id")] = response

    def _backoff_delay(self, attempt: int) -> float:
        """Deterministic seeded-jitter delay before retry ``attempt``
        (1-based) — the engine's retry-pacing formula."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_max,
                    self.backoff_base
                    * self.backoff_factor ** max(0, attempt - 1))
        rng = random.Random(f"{self.backoff_seed}:{attempt}")
        return delay * (1.0 + self.backoff_jitter * rng.random())

    def request(self, op: str, **fields: Any) -> dict:
        """Send one request and block for its response.

        Transport failures (daemon restarting: refused, reset, EOF)
        are retried with bounded seeded-jitter backoff; a spent budget
        answers ``status="unavailable"`` instead of raising.  Every op
        in the protocol is idempotent, so a resend after a torn
        connection is safe."""
        attempts = 0
        last: Optional[ServeError] = None
        while attempts <= self.retries:
            attempts += 1
            try:
                return self.wait_for(self.submit(op, **fields))
            except ServeError as exc:
                if not exc.retryable:
                    raise
                last = exc
                self._reset_connection()
                if attempts <= self.retries:
                    delay = self._backoff_delay(attempts)
                    if delay > 0:
                        time.sleep(delay)
        return {"id": None, "op": op, "status": STATUS_UNAVAILABLE,
                "attempts": attempts,
                "error": f"{last} (after {attempts} attempts)"}

    def drain(self, request_ids: List[int]) -> List[dict]:
        """Collect responses for a pipelined burst, in request order."""
        return [self.wait_for(request_id) for request_id in request_ids]

    # -- ops -----------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def parse(self, path: Optional[str] = None,
              text: Optional[str] = None,
              filename: Optional[str] = None,
              deadline: Optional[float] = None,
              fresh: bool = False) -> UnitResult:
        """Parse via the daemon; returns a Result-protocol view whose
        ``.record`` carries the full response (``cache``, ``tier``,
        ``serve`` timings included)."""
        response = self.request("parse", path=path, text=text,
                                filename=filename, deadline=deadline,
                                fresh=fresh or None)
        # Shed/timeout responses carry no record body; keep the
        # UnitResult view total anyway.
        response.setdefault("unit", path or filename or "<input>")
        return UnitResult(response)

    def invalidate(self, path: str,
                   text: Optional[str] = None) -> dict:
        return self.request("invalidate", path=path, text=text)

    def stats(self) -> dict:
        response = self.request("stats")
        return response.get("stats") or {}

    def shutdown(self) -> dict:
        return self.request("shutdown")
