"""Preprocessor error types."""

from __future__ import annotations

from typing import Optional

from repro.lexer.tokens import Token


class PreprocessorError(Exception):
    """A hard preprocessing error (malformed directive, bad paste,
    unterminated invocation, or a ``#error`` outside conditionals)."""

    def __init__(self, message: str, token: Optional[Token] = None):
        where = ""
        if token is not None:
            where = f"{token.file}:{token.line}:{token.col}: "
        super().__init__(where + message)
        self.token = token


class IncompleteInvocation(Exception):
    """Internal: a function-like invocation ran off the end of a
    conditional branch; the caller must hoist a wider region."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name
