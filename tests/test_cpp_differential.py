"""The gold oracle: projection equivalence between the
configuration-preserving preprocessor and the single-configuration
preprocessor (the Python analogue of the paper's gcc -E comparison,
§6.3).

For every source and every total configuration:

    project(config_preserving(src), config) == simple(src, config)

Includes both hand-picked regression sources and a hypothesis-driven
random source generator.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpp import PreprocessorError
from tests.support import (diff_token_streams, project_unit, preprocess,
                           simple_preprocess, token_texts_match)

CONFIG_VARS = ["A", "B", "C"]


def all_configs(variables=CONFIG_VARS, values=("1",)):
    """All subsets of variables, each defined to each value."""
    for present in itertools.product([False, True], repeat=len(variables)):
        for value in values:
            yield {name: value
                   for name, flag in zip(variables, present) if flag}


def check_equivalence(source, files=None, configs=None):
    unit = preprocess(source, files=files)
    for config in configs if configs is not None else all_configs():
        feasible = unit.feasible_condition
        from tests.support import assignment_for
        if not feasible.evaluate(assignment_for(unit, config)):
            # This configuration hits a #error branch: the oracle must
            # agree by raising.
            with pytest.raises(PreprocessorError):
                simple_preprocess(source, defines=config, files=files)
            continue
        expected = simple_preprocess(source, defines=config, files=files)
        actual = project_unit(unit, config)
        assert token_texts_match(actual, expected), (
            f"config={config}\n" + diff_token_streams(actual, expected))


HAND_PICKED = [
    # Plain text, no preprocessor at all.
    "int main(void) { return 0; }",
    # Simple conditional inclusion.
    "#ifdef A\nint a;\n#endif\nint tail;",
    # if/else/elif chains.
    "#if defined(A)\na\n#elif defined(B)\nb\n#else\nc\n#endif",
    # Nested conditionals.
    "#ifdef A\n#ifdef B\nboth\n#else\njust_a\n#endif\n#endif",
    # Multiply-defined object-like macro (Figure 2).
    ("#ifdef A\n#define BITS 64\n#else\n#define BITS 32\n#endif\n"
     "int x = BITS;"),
    # Conditional function-like macro chain (Figures 3-4).
    ("#define __to(x) ((x)+1)\n"
     "#ifdef A\n#define to __to\n#endif\n"
     "to(5);"),
    # Token pasting over a multiply-defined macro (Figure 5).
    ("#ifdef A\n#define BITS 64\n#else\n#define BITS 32\n#endif\n"
     "#define uintB uint(BITS)\n#define uint(x) xuint(x)\n"
     "#define xuint(x) __le ## x\nuintB *p;"),
    # Conditional inside a function-like invocation's arguments.
    ("#define WRAP(x) [x]\nWRAP(\n#ifdef A\n1\n#else\n2\n#endif\n)"),
    # Argument count differs per branch.
    ("#define TWO(x, y) (x|y)\n#define ONE(x) (x)\n"
     "#ifdef A\nTWO(1,\n#else\nONE(\n#endif\n9)"),
    # Conditional #define / #undef interplay.
    ("#define M 0\n#ifdef A\n#undef M\n#define M 1\n#endif\n"
     "#ifdef B\n#undef M\n#endif\nM"),
    # #if on macro values with arithmetic.
    ("#ifdef A\n#define N 8\n#else\n#define N 2\n#endif\n"
     "#if N > 4\nbig\n#else\nsmall\n#endif"),
    # defined() of a macro defined in a branch.
    ("#ifdef A\n#define FEATURE\n#endif\n"
     "#if defined(FEATURE)\nfeature_on\n#endif"),
    # Stringification and pasting with conditional macro values.
    ("#ifdef A\n#define NAME alpha\n#else\n#define NAME beta\n#endif\n"
     "#define STR_(x) #x\n#define STR(x) STR_(x)\nSTR(NAME)"),
    # Redefinition between uses.
    "#define X 1\nX\n#undef X\n#define X 2\nX",
    # Error directive in one branch.
    "#ifdef A\n#error unsupported\n#endif\nok",
    # Variadic macros under conditionals.
    ("#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\n"
     "#ifdef A\nLOG(\"x\", 1)\n#else\nLOG(\"y\", 2, 3)\n#endif"),
    # Empty branches and implicit else.
    "#ifdef A\n#endif\nx\n#ifdef B\n#else\ny\n#endif",
    # Self-referential macro.
    "#define Z Z + 1\nZ",
    # Conditional around an entire function definition.
    ("#ifdef A\nstatic int f(void) { return 1; }\n#endif\n"
     "int g(void) { return 0; }"),
]


@pytest.mark.parametrize("source", HAND_PICKED,
                         ids=range(len(HAND_PICKED)))
def test_hand_picked_equivalence(source):
    check_equivalence(source)


def test_equivalence_with_includes():
    files = {
        "include/config.h": ("#ifndef CONFIG_H\n#define CONFIG_H\n"
                             "#ifdef A\n#define MODE 1\n#else\n"
                             "#define MODE 2\n#endif\n#endif\n"),
        "include/util.h": "#define MAX(a,b) ((a)>(b)?(a):(b))\n",
    }
    source = ("#include <config.h>\n#include <util.h>\n"
              "#include <config.h>\n"
              "int m = MAX(MODE, 0);\n")
    check_equivalence(source, files=files)


def test_equivalence_with_computed_include():
    files = {"include/a.h": "from_a\n", "include/b.h": "from_b\n"}
    source = ("#ifdef A\n#define H <a.h>\n#else\n#define H <b.h>\n#endif\n"
              "#include H\n")
    check_equivalence(source, files=files)


# ---- randomized differential testing -------------------------------------

@st.composite
def random_source(draw):
    """Generate small random preprocessor programs over A/B/C."""
    lines = []
    macro_counter = itertools.count()
    defined_macros = []
    depth = 0
    num_lines = draw(st.integers(min_value=1, max_value=14))
    for _ in range(num_lines):
        choice = draw(st.integers(min_value=0, max_value=7))
        if choice == 0:
            name = f"M{next(macro_counter)}"
            body = draw(st.sampled_from(
                ["1", "2", "x y", "", "A", "M0"]))
            lines.append(f"#define {name} {body}")
            defined_macros.append(name)
        elif choice == 1 and defined_macros:
            target = draw(st.sampled_from(defined_macros))
            lines.append(f"#undef {target}")
        elif choice == 2:
            var = draw(st.sampled_from(CONFIG_VARS))
            form = draw(st.sampled_from(["#ifdef {}", "#ifndef {}",
                                         "#if defined({})"]))
            lines.append(form.format(var))
            depth += 1
        elif choice == 3 and depth > 0:
            lines.append("#else")
            # #else only valid if the frame has no else yet; keep it
            # simple by immediately closing.
            lines.append("#endif")
            depth -= 1
        elif choice == 4 and depth > 0:
            lines.append("#endif")
            depth -= 1
        elif choice == 5 and defined_macros:
            lines.append(draw(st.sampled_from(defined_macros)))
        else:
            lines.append(draw(st.sampled_from(
                ["int x;", "y", "f(1, 2);", "a + b"])))
    lines.extend("#endif" for _ in range(depth))
    return "\n".join(lines) + "\n"


@settings(max_examples=120, deadline=None)
@given(random_source())
def test_random_source_equivalence(source):
    check_equivalence(source)


@settings(max_examples=60, deadline=None)
@given(random_source(), random_source())
def test_random_source_with_header(header, body):
    files = {"include/h.h": header}
    check_equivalence("#include <h.h>\n" + body, files=files)
