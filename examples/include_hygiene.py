#!/usr/bin/env python3
"""Include-graph hygiene report for a (synthetic) kernel tree.

Table 2's developer-view observations — headers as a poor man's module
system, long dependency chains, hot headers preprocessed for nearly
every C file — become actionable with the include graph: find the hot
headers, the longest chains, redundant direct includes, and the total
preprocessing fan-out a non-caching tool pays.

Run:  python examples/include_hygiene.py
"""

from repro.analysis.includes_graph import (build_include_graph,
                                           include_cycles,
                                           longest_chain,
                                           preprocessing_fanout,
                                           redundant_direct_includes,
                                           transitive_inclusion_counts)
from repro.corpus import KernelSpec, generate_kernel


def main() -> None:
    corpus = generate_kernel(KernelSpec(subsystems=3,
                                        drivers_per_subsystem=2))
    graph = build_include_graph(corpus.files)
    c_files = len(corpus.c_files())

    print("--- hot headers (transitively included) ---")
    counts = transitive_inclusion_counts(graph)
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])[:6]
    for header, count in ranked:
        print(f"  {header:<44}{count:>3}/{c_files} C files")

    print("\n--- longest include chain ---")
    for index, node in enumerate(longest_chain(graph)):
        print(f"  {'  ' * index}{node}")

    print("\n--- redundant direct includes ---")
    for source, target, via in redundant_direct_includes(graph)[:8]:
        print(f"  {source}: <{target.split('/')[-1]}> already pulled "
              f"in via {via.split('/')[-1]}")

    cycles = include_cycles(graph)
    print(f"\ninclude cycles: {len(cycles)}")

    fanout = preprocessing_fanout(graph)
    print(f"preprocessing fan-out: {fanout} (header, C-file) pairs — "
          "each is one header preprocessing for a tool without a "
          "configuration-preserving cache")


if __name__ == "__main__":
    main()
