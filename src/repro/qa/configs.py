"""Concrete-configuration sampling for differential checking.

A *concrete configuration* is a ``-D`` style mapping from macro names
to definition bodies; a macro absent from the mapping is undefined.
The configuration-preserving pipeline never enumerates configurations,
so to cross-check it against the single-configuration oracle we must:

1. discover which macro names a unit's conditionals depend on
   (lexically, from the directives, and from the BDD variables the
   preprocessor minted);
2. translate a concrete configuration into a truth assignment for
   every BDD variable (``defined:M``, ``value:M``, opaque
   ``expr:TEXT``) so conditions and ASTs can be projected; and
3. enumerate the concrete space when it is small, or sample it with a
   seeded RNG when it is not — optionally guided by the feasible
   condition's satisfying assignments (:meth:`BDDNode.iter_models`).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.cpp.conditions import DEFINED_PREFIX, EXPR_PREFIX, VALUE_PREFIX
from repro.cpp.expression import (Expr, ExprError, evaluate_int, parse_int,
                                  parse_expression)
from repro.lexer import lex, lex_logical_lines
from repro.lexer.lexer import LexerError
from repro.lexer.tokens import TokenKind

# Directive keywords whose line mentions configuration macros.
_CONDITIONAL_KEYWORDS = ("if", "elif", "ifdef", "ifndef")


def config_value(defines: Dict[str, str], name: str) -> int:
    """The integer a surviving identifier evaluates to under a
    configuration (0 when undefined or non-numeric, per C)."""
    if name not in defines:
        return 0
    body = defines[name].strip()
    if not body:
        return 0
    try:
        return parse_int(body)
    except ExprError:
        return 0


def _expr_names(expr: Expr, names: Set[str]) -> None:
    if expr.kind in ("ident", "defined"):
        names.add(expr.name)
    for operand in expr.operands:
        _expr_names(operand, names)


def assignment_for(unit, defines: Dict[str, str]) -> Dict[str, bool]:
    """Translate a concrete configuration into truth values for every
    BDD variable the unit's conditions mention.

    ``unit`` is anything with a ``manager`` attribute (a
    :class:`~repro.cpp.CompilationUnit` or a parse result wrapper).
    """
    manager = getattr(unit, "manager", unit)
    assignment: Dict[str, bool] = {}
    for var in manager.variable_names:
        if var.startswith(DEFINED_PREFIX):
            name = var[len(DEFINED_PREFIX):]
            assignment[var] = name in defines
        elif var.startswith(VALUE_PREFIX):
            name = var[len(VALUE_PREFIX):]
            assignment[var] = config_value(defines, name) != 0
        elif var.startswith(EXPR_PREFIX):
            text = var[len(EXPR_PREFIX):]
            expr = parse_expression(lex(text, "<expr-var>"))
            try:
                value = evaluate_int(
                    expr,
                    is_defined=lambda n: n in defines,
                    value_of=lambda n: config_value(defines, n))
            except ExprError:
                # The opaque subexpression is unevaluable under this
                # configuration (e.g. `8 % M` with M undefined).  In a
                # directive gcc accepts, short-circuiting made it dead,
                # so its truth value is a don't-care: pick False.
                value = 0
            assignment[var] = value != 0
    return assignment


def variable_base_names(manager) -> List[str]:
    """The concrete macro names behind a manager's BDD variables."""
    names: Set[str] = set()
    for var in manager.variable_names:
        if var.startswith(DEFINED_PREFIX):
            names.add(var[len(DEFINED_PREFIX):])
        elif var.startswith(VALUE_PREFIX):
            names.add(var[len(VALUE_PREFIX):])
        elif var.startswith(EXPR_PREFIX):
            try:
                expr = parse_expression(
                    lex(var[len(EXPR_PREFIX):], "<expr-var>"))
            except (ExprError, LexerError):
                continue
            _expr_names(expr, names)
    return sorted(names)


def lexical_config_variables(text: str,
                             files: Optional[Dict[str, str]] = None,
                             limit: int = 64) -> List[str]:
    """Macro names mentioned by conditional directives, found by a
    lexical scan of the source (and any in-memory include files).

    This works even when the configuration-preserving preprocessor
    rejects the unit outright — exactly the situation a differential
    harness must still be able to explore.
    """
    names: Set[str] = set()
    sources = [text]
    sources.extend((files or {}).values())
    for source in sources:
        try:
            lines = lex_logical_lines(source, "<scan>")
        except LexerError:
            continue
        for line in lines:
            if len(line) < 2 or line[0].kind is not TokenKind.HASH:
                continue
            if line[1].text not in _CONDITIONAL_KEYWORDS:
                continue
            for token in line[2:]:
                if token.kind is TokenKind.IDENTIFIER and \
                        token.text != "defined":
                    names.add(token.text)
        if len(names) >= limit:
            break
    return sorted(names)[:limit]


class ConfigSampler:
    """Enumerates or samples concrete configurations for one unit.

    ``variables`` is the concrete macro universe; each configuration
    chooses, per variable, *undefined* or one of ``values``.  When the
    full product is within ``limit`` the sampler enumerates it;
    otherwise it draws seeded random configurations (deduplicated), so
    runs are reproducible.
    """

    def __init__(self, variables: Sequence[str],
                 values: Sequence[str] = ("1",),
                 seed: int = 0):
        self.variables = list(dict.fromkeys(variables))
        self.values = list(values) or ["1"]
        self.seed = seed

    @property
    def space_size(self) -> int:
        return (len(self.values) + 1) ** len(self.variables)

    def enumerate(self) -> Iterator[Dict[str, str]]:
        """Every concrete configuration, deterministically ordered."""
        choices: List[Tuple[Optional[str], ...]] = [
            (None, *self.values) for _ in self.variables]
        for picks in itertools.product(*choices):
            yield {name: value
                   for name, value in zip(self.variables, picks)
                   if value is not None}

    def sample(self, count: int) -> Iterator[Dict[str, str]]:
        """``count`` distinct seeded-random configurations."""
        rng = random.Random(self.seed)
        seen: Set[Tuple] = set()
        attempts = 0
        produced = 0
        while produced < count and attempts < count * 20:
            attempts += 1
            picks = tuple(rng.choice([None, *self.values])
                          for _ in self.variables)
            if picks in seen:
                continue
            seen.add(picks)
            produced += 1
            yield {name: value
                   for name, value in zip(self.variables, picks)
                   if value is not None}

    def configs(self, limit: int) -> List[Dict[str, str]]:
        """At most ``limit`` configurations: exhaustive when the space
        fits, sampled otherwise.  Always includes the all-undefined
        and the all-defined("1") corners."""
        if self.space_size <= limit:
            return list(self.enumerate())
        corners = [{}, {name: "1" for name in self.variables}]
        picked = list(self.sample(max(0, limit - len(corners))))
        out: List[Dict[str, str]] = []
        seen: Set[Tuple] = set()
        for config in corners + picked:
            key = tuple(sorted(config.items()))
            if key in seen:
                continue
            seen.add(key)
            out.append(config)
        return out[:limit]


def realize_model(model: Dict[str, bool]) -> Optional[Dict[str, str]]:
    """Turn a BDD-variable truth assignment into a concrete
    configuration, or None when the assignment is unrealizable
    (e.g. ``value:M`` true while ``defined:M`` false).

    Only ``defined:``/``value:`` variables constrain the result;
    ``expr:`` variables are rechecked by the caller through
    :func:`assignment_for`.
    """
    config: Dict[str, str] = {}
    for var, value in model.items():
        if var.startswith(VALUE_PREFIX) and value:
            config[var[len(VALUE_PREFIX):]] = "1"
        elif var.startswith(DEFINED_PREFIX) and value:
            config.setdefault(var[len(DEFINED_PREFIX):], "1")
    for var, value in model.items():
        if var.startswith(DEFINED_PREFIX) and not value and \
                var[len(DEFINED_PREFIX):] in config:
            return None
        if var.startswith(VALUE_PREFIX) and not value and \
                config_value(config, var[len(VALUE_PREFIX):]) != 0:
            return None
    return config


def bdd_guided_configs(condition, rng: random.Random,
                       count: int) -> List[Dict[str, str]]:
    """Sample satisfying assignments of a presence condition
    (:meth:`BDDNode.random_model`) and realize the consistent ones as
    concrete configurations — a second sampling mode that concentrates
    on configurations actually reaching a condition's branches."""
    out: List[Dict[str, str]] = []
    seen: Set[Tuple] = set()
    support = condition.support()
    if condition.is_false():
        return out
    for _ in range(count * 4):
        if len(out) >= count:
            break
        model = condition.random_model(rng, support)
        if model is None:
            break
        config = realize_model(model)
        if config is None:
            continue
        key = tuple(sorted(config.items()))
        if key not in seen:
            seen.add(key)
            out.append(config)
    return out
