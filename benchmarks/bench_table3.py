"""Table 3: a tool's view of preprocessor usage.

Runs the instrumented configuration-preserving preprocessor and parser
over every compilation unit and reports each interaction row as the
50th · 90th · 100th percentiles across units, exactly like the paper's
Table 3.

Expected shape: almost all macro definitions are contained in
conditionals (include guards); a majority of invocations are nested;
conditionals appear inside invocations/pasting/stringification/
includes (the hoisted rows are non-zero); computed includes are rare;
ambiguously defined names are (near) zero.
"""

from benchmarks.conftest import emit
from repro.eval import TOOLS_VIEW_ROWS, tools_view


def test_table3_tools_view(benchmark, kernel_corpus, superc):
    holder = {}

    def run():
        holder["table"] = tools_view(superc, kernel_corpus.units)
        return holder["table"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = holder["table"]

    lines = ["", "=" * 68,
             "Table 3: tool's view (50th - 90th - 100th percentiles "
             "across units)",
             f"{'Language construct':<38}{'50th':>9}{'90th':>9}"
             f"{'100th':>9}"]
    for label, _attr in TOOLS_VIEW_ROWS:
        p50, p90, p100 = table[label]
        lines.append(f"{label:<38}{p50:>9.0f}{p90:>9.0f}{p100:>9.0f}")
    lines.append("=" * 68)
    emit(lines)

    # Shape assertions mirroring the paper's observations.
    defs = table["Macro Definitions"]
    contained = table["  Contained in conditionals"]
    assert contained[0] >= 0.8 * defs[0]   # "almost all definitions"
    invocations = table["Macro Invocations"]
    nested = table["  Nested invocations"]
    assert nested[0] >= 0.4 * invocations[0]  # paper: >60%
    assert table["  Hoisted"][2] >= 1          # invocations hoisted
    assert table["Static Conditionals"][0] >= 5
    assert table["  With non-boolean expressions"][2] >= 1
    assert table["  Computed includes"][2] >= 1
    assert table["  Ambiguously defined names"][0] == 0  # paper: zero
    benchmark.extra_info["rows"] = {
        label: table[label] for label, _ in TOOLS_VIEW_ROWS}
