"""Per-configuration differential checking (the repro.qa oracle).

The configuration-preserving pipeline (``repro.superc``) and the
single-configuration baseline (``repro.baselines.gcc_like``) implement
the same language twice, with almost no shared preprocessing code.
This module closes the loop: for a sampled set of concrete
configurations it demands, per configuration, that

* both pipelines agree on *whether* the unit preprocesses at all
  (``error-agreement``),
* the configuration-preserving token tree, projected onto the
  configuration, matches the oracle's token stream token-for-token
  (``tokens``),
* both parsers agree on parseability (``parse-agreement``) and on the
  structure of the AST after :class:`StaticChoice` resolution
  (``ast``), and
* — independently of either pipeline — every string/character literal
  in the raw source is properly terminated whenever the shared lexer
  accepts it (``invariant``; the lexer is the one component both
  pipelines share, so its bugs are invisible to differencing and need
  their own validator).

A unit known to be valid-by-construction (the fuzz generator's output)
can additionally be checked with ``expect_parseable=True``: if *both*
pipelines reject it the harness still reports a finding
(``unparseable``) instead of treating the agreement as a pass — this is
what catches bugs mirrored into both implementations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.bdd import BDDManager
from repro.cgrammar import c_tables, classify, make_context_factory
from repro.cpp import (DictFileSystem, PreprocessorError,
                       SimplePreprocessor)
from repro.cpp.expression import ExprError
from repro.lexer import lex
from repro.lexer.lexer import LexerError
from repro.parser.lr import LRParser, ParseError
from repro.qa.configs import (ConfigSampler, assignment_for,
                              bdd_guided_configs, lexical_config_variables,
                              variable_base_names)
from repro.qa.projector import (ast_signature, diff_tokens, project_ast,
                                project_tokens, tokens_match)
from repro.superc import SuperC

DEFAULT_BUILTINS = {"__STDC__": "1"}


class Disagreement:
    """One configuration on which the two pipelines differ."""

    def __init__(self, kind: str, config: Dict[str, str], detail: str,
                 filename: str = "<input>"):
        self.kind = kind
        self.config = dict(config)
        self.detail = detail
        self.filename = filename

    def to_record(self) -> Dict[str, object]:
        return {"kind": self.kind, "config": self.config,
                "detail": self.detail, "file": self.filename}

    def __repr__(self) -> str:
        config = " ".join(f"-D{k}={v}" for k, v in
                          sorted(self.config.items())) or "<empty>"
        return f"Disagreement({self.kind}, {config}: {self.detail})"


class CheckOutcome:
    """Result of differentially checking one unit."""

    def __init__(self, filename: str, configs_checked: int,
                 disagreements: List[Disagreement],
                 superc_ok: bool, superc_error: Optional[str],
                 superc_status: Optional[str] = None):
        self.filename = filename
        self.configs_checked = configs_checked
        self.disagreements = disagreements
        self.superc_ok = superc_ok
        self.superc_error = superc_error
        # The config-preserving pipeline's own verdict ("ok",
        # "degraded", "parse-failed"), or None when it raised.
        self.superc_status = superc_status

    @property
    def ok(self) -> bool:
        return not self.disagreements


def unterminated_literal(text: str) -> Optional[str]:
    """Independent literal-termination validator.

    A character-level scan (sharing no code with the lexer) that
    reports the first string/character literal left open at end of
    line or end of file.  Returns a description or None.
    """
    # Splice line continuations the way translation phase 2 does.
    text = text.replace("\\\r\n", "").replace("\\\n", "")
    i = 0
    length = len(text)
    line = 1
    while i < length:
        char = text[i]
        if char == "\n":
            line += 1
            i += 1
            continue
        if text.startswith("//", i):
            stop = text.find("\n", i)
            i = length if stop < 0 else stop
            continue
        if text.startswith("/*", i):
            stop = text.find("*/", i + 2)
            if stop < 0:
                return None  # unterminated comment: not our invariant
            line += text.count("\n", i, stop + 2)
            i = stop + 2
            continue
        if char in "'\"":
            quote = char
            j = i + 1
            closed = False
            while j < length and text[j] != "\n":
                if text[j] == "\\":
                    j += 2  # escape consumes the next char, even EOF
                    continue
                if text[j] == quote:
                    closed = True
                    break
                j += 1
            if not closed:
                what = "character" if quote == "'" else "string"
                return (f"line {line}: {what} literal opened at "
                        f"offset {i} never closes")
            i = j + 1
            continue
        i += 1
    return None


def check_lexer_invariant(text: str,
                          filename: str = "<input>") -> Optional[str]:
    """The shared lexer must reject exactly the literals the
    independent scan rejects.  Returns a violation description."""
    open_literal = unterminated_literal(text)
    try:
        lex(text, filename)
        lexed_ok = True
        lex_error = None
    except LexerError as error:
        lexed_ok = False
        lex_error = str(error)
    if lexed_ok and open_literal is not None:
        return ("lexer accepted source with an unterminated literal: "
                + open_literal)
    if not lexed_ok and open_literal is None and \
            "constant" in (lex_error or ""):
        return f"lexer rejected terminated literals: {lex_error}"
    return None


class DifferentialChecker:
    """Cross-checks both pipelines on sampled configurations.

    Construction is expensive (LALR table build) — reuse one checker
    across many units; per-unit state lives in :meth:`check_source`.
    """

    def __init__(self, files: Optional[Dict[str, str]] = None,
                 include_paths: Sequence[str] = ("include",),
                 builtins: Optional[Dict[str, str]] = None,
                 parse: bool = True, max_configs: int = 16,
                 tables=None):
        self.files = dict(files or {})
        self.include_paths = list(include_paths)
        self.builtins = dict(DEFAULT_BUILTINS if builtins is None
                             else builtins)
        self.parse = parse
        self.max_configs = max_configs
        self.tables = tables if tables is not None else c_tables()
        self.superc = SuperC(DictFileSystem(self.files),
                             include_paths=self.include_paths,
                             builtins=self.builtins, tables=self.tables)

    # -- single-configuration oracle ----------------------------------

    def _oracle_tokens(self, text: str, filename: str,
                       config: Dict[str, str]):
        pp = SimplePreprocessor(DictFileSystem(self.files),
                                include_paths=self.include_paths,
                                config=config, builtins=self.builtins)
        return pp.preprocess(text, filename)

    def _oracle_parse(self, tokens):
        manager = BDDManager()
        parser = LRParser(self.tables, classify,
                          context_factory=make_context_factory(manager),
                          condition=manager.true)
        return parser.parse(tokens)

    def _plain_parse(self, tokens, manager):
        parser = LRParser(self.tables, classify,
                          context_factory=make_context_factory(manager),
                          condition=manager.true)
        return parser.parse(tokens)

    # -- configuration choice -----------------------------------------

    def _configs_for(self, text: str, result, seed: int,
                     configs: Optional[Sequence[Dict[str, str]]]):
        if configs is not None:
            return [dict(c) for c in configs]
        if result is not None:
            variables = variable_base_names(result.unit.manager)
        else:
            variables = lexical_config_variables(text, self.files)
        variables = [name for name in variables
                     if name not in self.builtins]
        sampler = ConfigSampler(variables, seed=seed)
        chosen = sampler.configs(self.max_configs)
        if result is not None and sampler.space_size > self.max_configs:
            # Top up with BDD-guided samples so rarely-true presence
            # conditions still get exercised.
            rng = random.Random(seed + 1)
            extra = bdd_guided_configs(result.unit.feasible_condition,
                                       rng, max(2, self.max_configs // 4))
            seen = {tuple(sorted(c.items())) for c in chosen}
            for config in extra:
                key = tuple(sorted(config.items()))
                if key not in seen:
                    seen.add(key)
                    chosen.append(config)
        return chosen

    # -- the check ----------------------------------------------------

    def check_source(self, text: str, filename: str = "fuzz.c",
                     seed: int = 0,
                     configs: Optional[Sequence[Dict[str, str]]] = None,
                     expect_parseable: bool = False) -> CheckOutcome:
        disagreements: List[Disagreement] = []

        violation = check_lexer_invariant(text, filename)
        if violation is not None:
            disagreements.append(
                Disagreement("invariant", {}, violation, filename))

        result = None
        superc_error: Optional[str] = None
        try:
            result = self.superc.parse_source(text, filename)
        except (LexerError, PreprocessorError, ExprError,
                RecursionError) as error:
            superc_error = f"{type(error).__name__}: {error}"

        chosen = self._configs_for(text, result, seed, configs)
        any_parsed = False
        for config in chosen:
            found = self._check_config(text, filename, result,
                                       superc_error, config)
            if found is None:
                any_parsed = True
            else:
                disagreements.extend(found)

        if expect_parseable and not any_parsed and chosen:
            detail = ("unit is valid by construction but no sampled "
                      "configuration preprocessed and parsed cleanly")
            if superc_error:
                detail += f" (config-preserving: {superc_error})"
            disagreements.append(
                Disagreement("unparseable", chosen[0], detail, filename))

        # Every pipeline result implements the repro.api Result
        # protocol, so status is an attribute, not a maybe.
        return CheckOutcome(filename, len(chosen), disagreements,
                            result is not None and result.ok,
                            superc_error,
                            result.status if result is not None
                            else None)

    def _check_config(self, text, filename, result, superc_error,
                      config) -> Optional[List[Disagreement]]:
        """Check one configuration.

        Returns None when the configuration preprocessed and parsed
        cleanly in both pipelines (used for ``expect_parseable``), or
        a (possibly empty) list of disagreements otherwise.
        """
        oracle_error: Optional[str] = None
        oracle_tokens = None
        try:
            oracle_tokens = self._oracle_tokens(text, filename, config)
        except (LexerError, PreprocessorError, ExprError,
                RecursionError) as error:
            oracle_error = f"{type(error).__name__}: {error}"

        if result is None:
            # The config-preserving pipeline failed outright, i.e. in
            # every configuration; the oracle must fail everywhere too.
            if oracle_error is None:
                return [Disagreement(
                    "error-agreement", config,
                    "config-preserving preprocessor rejected the unit "
                    f"({superc_error}) but the single-configuration "
                    "oracle accepted this configuration", filename)]
            return []

        assignment = assignment_for(result.unit, config)
        feasible = result.unit.feasible_condition.evaluate(assignment)
        if not feasible:
            # A conditional #error (or guarded hard error) covers this
            # configuration: the oracle must reject it.
            if oracle_error is None:
                matching = [c.to_expr_string()
                            for c, _m in result.unit.error_conditions
                            if c.evaluate(assignment)]
                conditions = ", ".join(
                    matching or [c.to_expr_string() for c, _m in
                                 result.unit.error_conditions]) or "?"
                return [Disagreement(
                    "error-agreement", config,
                    "config-preserving pipeline marks this "
                    f"configuration infeasible (error under {conditions})"
                    " but the oracle accepted it", filename)]
            return []
        if oracle_error is not None:
            return [Disagreement(
                "error-agreement", config,
                "single-configuration oracle rejected a configuration "
                f"the config-preserving pipeline accepts: {oracle_error}",
                filename)]

        projected = project_tokens(result.unit, config)
        if not tokens_match(projected, oracle_tokens):
            return [Disagreement(
                "tokens", config,
                diff_tokens(projected, oracle_tokens), filename)]

        if not self.parse:
            return None

        degraded = [diag for diag in result.parse.diagnostics
                    if diag.condition.evaluate(assignment)]
        if degraded:
            # The parser degraded this configuration away (kill-switch
            # shedding or a resource-budget trip).  The projected
            # tokens above are still authoritative, but there is no
            # parse claim left to cross-check — agreement by absence,
            # though not a clean parse.
            return []

        accepted = [cond for cond, _v in result.parse.accepted
                    if cond.evaluate(assignment)]
        failed = [f for f in result.parse.failures
                  if f.condition.evaluate(assignment)]
        try:
            oracle_ast = self._oracle_parse(oracle_tokens)
        except ParseError as error:
            if accepted and not failed:
                return [Disagreement(
                    "parse-agreement", config,
                    "FMLR accepted this configuration but the plain LR "
                    f"parser rejected it: {error}", filename)]
            # Both reject: agreement, but not a clean parse.
            return []
        if failed or not accepted:
            first = failed[0] if failed else None
            detail = ("plain LR parser accepted this configuration but "
                      "FMLR recorded "
                      + (f"a failure at {first.token!r}" if first
                         else "no accepting subparser"))
            return [Disagreement("parse-agreement", config, detail,
                                 filename)]

        projected_ast = project_ast(result, config)
        if ast_signature(projected_ast) != ast_signature(oracle_ast):
            return [Disagreement(
                "ast", config,
                "projected StaticChoice AST differs structurally from "
                "the plain single-configuration parse", filename)]
        return None
